"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Dependency-free (numpy only) and cheap enough to leave on in serving
hot paths: a counter increment is one dict hit plus an integer add, a
histogram observation is one ``np.searchsorted`` into a small edge
array.  The registry is *process-local* by design -- worker processes
each own one and ship :meth:`MetricsRegistry.snapshot` dictionaries
back to the pool parent over the existing result pipes, where
:meth:`MetricsRegistry.merge` (or the pure
:func:`merge_snapshots`) folds them together.  Merging is associative
and commutative, so snapshots can be combined in any order and any
grouping -- the property the cross-process aggregation relies on.

The whole subsystem sits behind one guard: ``REPRO_OBS=0`` in the
environment disables stamping entirely (instrumented call sites check
:func:`enabled` -- a module-global bool read -- before touching the
registry or allocating trace IDs).  The default is enabled.

Thread-safety: metric creation takes a lock; the per-sample update
paths rely on the GIL (an interleaved ``+=`` may drop a tick under
heavy thread contention, which is acceptable for telemetry -- the
serving pool updates each metric from a single thread anyway).
"""

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "enabled",
    "set_enabled",
    "get_registry",
    "reset_registry",
    "merge_snapshots",
]

OBS_ENV = "REPRO_OBS"

_enabled = os.environ.get(OBS_ENV, "1").strip().lower() not in ("0", "false", "off")


def enabled() -> bool:
    """True when telemetry stamping is on (``REPRO_OBS`` != 0)."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Flip the telemetry guard; returns the previous value.

    Also mirrors the flag into ``os.environ[REPRO_OBS]`` so worker
    processes forked/spawned after the call agree with the parent.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    os.environ[OBS_ENV] = "1" if flag else "0"
    return previous


#: default histogram edges for second-scale latencies: geometric from
#: 50us to ~100s.  Values below the first edge land in bucket 0,
#: values above the last edge land in the overflow bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    float(v) for v in (5e-5 * (4.0 ** np.arange(11)))
)


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with numpy-backed bucket counts.

    ``edges`` are the upper bounds of the first ``len(edges)`` buckets;
    one overflow bucket catches everything above the last edge.  NaN
    observations are counted separately (``nan_count``) and excluded
    from ``sum``/``count``/quantiles; ``inf`` lands in the overflow
    bucket with ``sum`` left untouched so the mean stays finite.
    """

    __slots__ = ("name", "labels", "edges", "counts", "sum", "count", "nan_count")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.edges = np.asarray(sorted(float(b) for b in buckets), dtype=np.float64)
        if self.edges.size == 0:
            raise ValueError("histogram needs at least one bucket edge")
        self.counts = np.zeros(self.edges.size + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0
        self.nan_count = 0

    def observe(self, value: float) -> None:
        if value != value:  # NaN
            self.nan_count += 1
            return
        self.counts[int(np.searchsorted(self.edges, value, side="left"))] += 1
        self.count += 1
        if value != np.inf and value != -np.inf:
            self.sum += value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate (None when empty).

        Linear interpolation inside the containing bucket; the
        overflow bucket reports the last finite edge (a floor, which
        is the conservative direction for latency alerting).
        """
        if not self.count:
            return None
        rank = q * self.count
        cumulative = np.cumsum(self.counts)
        idx = int(np.searchsorted(cumulative, rank, side="left"))
        if idx >= self.edges.size:  # overflow bucket
            return float(self.edges[-1])
        lo = 0.0 if idx == 0 else float(self.edges[idx - 1])
        hi = float(self.edges[idx])
        before = 0 if idx == 0 else int(cumulative[idx - 1])
        inside = int(self.counts[idx])
        if inside == 0:
            return hi
        frac = min(max((rank - before) / inside, 0.0), 1.0)
        return lo + (hi - lo) * frac


def _labels_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named metrics, each identified by (name, sorted label pairs).

    Metric names are dotted lowercase with a unit suffix
    (``serve.pool.dispatch_total``, ``runtime.forward_seconds``) --
    see CONTRIBUTING.md for the naming convention.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}

    def _get(self, name: str, labels: Dict[str, str], factory):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = factory(name, key[1])
                    self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(
            name, labels, lambda n, pairs: Histogram(n, pairs, buckets)
        )

    def find(self, name: str, **labels: str) -> Optional[object]:
        """The metric at (name, labels), or None -- never creates one.

        Read paths (``pool.stats()`` percentiles) use this so asking
        for a metric that was never stamped doesn't materialise an
        empty one.
        """
        return self._metrics.get((name, _labels_key(labels)))

    def metrics(self) -> List[object]:
        with self._lock:
            return list(self._metrics.values())

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- cross-process aggregation ------------------------------------

    def snapshot(self) -> dict:
        """Picklable/JSON-able full state: ``{key: metric-dict}``.

        Keys are ``name|k=v|k2=v2`` strings so snapshots survive JSON
        round-trips (tuples would not).
        """
        out = {}
        for metric in self.metrics():
            key = _snapshot_key(metric.name, metric.labels)
            if isinstance(metric, Counter):
                out[key] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[key] = {"type": "gauge", "value": metric.value}
            else:
                out[key] = {
                    "type": "histogram",
                    "edges": [float(e) for e in metric.edges],
                    "counts": [int(c) for c in metric.counts],
                    "sum": metric.sum,
                    "count": metric.count,
                    "nan_count": metric.nan_count,
                }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry's live metrics."""
        for key, entry in snapshot.items():
            name, labels = _parse_snapshot_key(key)
            kind = entry["type"]
            if kind == "counter":
                self.counter(name, **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set(entry["value"])
            else:
                hist = self.histogram(name, buckets=entry["edges"], **labels)
                if list(hist.edges) != [float(e) for e in entry["edges"]]:
                    raise ValueError(
                        f"histogram {key!r}: bucket edges differ between "
                        "processes; merge would misbin"
                    )
                hist.counts += np.asarray(entry["counts"], dtype=np.int64)
                hist.sum += entry["sum"]
                hist.count += entry["count"]
                hist.nan_count += entry["nan_count"]


def _snapshot_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    return "|".join([name] + [f"{k}={v}" for k, v in labels])


def _parse_snapshot_key(key: str) -> Tuple[str, Dict[str, str]]:
    parts = key.split("|")
    labels = dict(part.split("=", 1) for part in parts[1:])
    return parts[0], labels


def merge_snapshots(*snapshots: dict) -> dict:
    """Pure, associative, commutative merge of snapshot dicts."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (worker-side instrumentation target)."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Install a fresh process-global registry (forked workers call this
    so metrics inherited from the parent's address space don't double
    count) and return it."""
    global _registry
    _registry = MetricsRegistry()
    return _registry
