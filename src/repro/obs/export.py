"""Exporters: Prometheus text exposition and JSON-able snapshots."""

import re
from typing import Optional

from .registry import Counter, Gauge, MetricsRegistry

__all__ = ["render_prometheus", "snapshot_summary"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_labels(pairs, extra: Optional[dict] = None) -> str:
    items = list(pairs) + sorted((extra or {}).items())
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text-format exposition of every metric in ``registry``.

    Counters render with their ``_total`` name as-is (the naming
    convention already suffixes them), histograms expand to the usual
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
    """
    lines = []
    seen_types = set()
    for metric in sorted(registry.metrics(), key=lambda m: (m.name, m.labels)):
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            if name not in seen_types:
                lines.append(f"# TYPE {name} counter")
                seen_types.add(name)
            lines.append(f"{name}{_prom_labels(metric.labels)} {metric.value}")
        elif isinstance(metric, Gauge):
            if name not in seen_types:
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            lines.append(f"{name}{_prom_labels(metric.labels)} {metric.value}")
        else:  # Histogram
            if name not in seen_types:
                lines.append(f"# TYPE {name} histogram")
                seen_types.add(name)
            cumulative = 0
            for edge, count in zip(metric.edges, metric.counts[:-1]):
                cumulative += int(count)
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(metric.labels, {'le': repr(float(edge))})} "
                    f"{cumulative}"
                )
            cumulative += int(metric.counts[-1])
            lines.append(
                f"{name}_bucket{_prom_labels(metric.labels, {'le': '+Inf'})} "
                f"{cumulative}"
            )
            lines.append(f"{name}_sum{_prom_labels(metric.labels)} {metric.sum}")
            lines.append(f"{name}_count{_prom_labels(metric.labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_summary(snapshot: dict) -> dict:
    """Human-oriented digest of a registry snapshot.

    Counters/gauges pass through; histograms collapse to
    ``{count, mean, p50, p90, p99}`` -- the shape ``pool.metrics()``
    embeds so callers don't re-derive quantiles from bucket arrays.
    """
    registry = MetricsRegistry()
    registry.merge(snapshot)
    out = {}
    for metric in registry.metrics():
        key = metric.name
        if metric.labels:
            key += "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
        if isinstance(metric, (Counter, Gauge)):
            out[key] = metric.value
        else:
            out[key] = {
                "count": metric.count,
                "mean": metric.mean,
                "p50": metric.quantile(0.50),
                "p90": metric.quantile(0.90),
                "p99": metric.quantile(0.99),
            }
    return out
