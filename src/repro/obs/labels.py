"""Shared label vocabulary for kernels, regions, and profile rows.

Three subsystems attribute time or work to "what executed":

* the fused plan's node ``kind_label`` (``linear``, ``attn-blocked``,
  ``ln-1pass``, ...),
* :meth:`FrozenModel.profile`'s module tree walk, and
* the qgemm cost meter's executed-kernel labels (``gather``,
  ``pair``, ``pair-stat``, ``popcount``, ...).

This module is the one place the vocabulary lives, so a region named
``qgemm-pair-stat`` in a trace, a profile row, and a
``qgemm.kernel_calls_total{kernel=pair-stat}`` counter all refer to the
same executed code path.
"""

import re
from typing import Optional

__all__ = [
    "QGEMM_KERNELS",
    "PLAN_KINDS",
    "MODEL_LABEL",
    "is_label_safe",
    "qgemm_kernel_label",
    "module_kind",
]

#: label key attributing serving metrics to one tenant of a
#: multi-model pool (``serve.job_latency_seconds{model=...}``).  Pools
#: stamp every per-tenant series with this key; dashboards and the
#: bench's per-tenant summaries select on it.
MODEL_LABEL = "model"

#: registry snapshot keys encode labels as ``name|k=v|k2=v2``, so a label
#: *value* containing the delimiters (or whitespace) would corrupt the
#: merge format.  Tenant names become label values -- ModelRegistry
#: rejects any name this pattern refuses.
_LABEL_SAFE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:/-]*$")


def is_label_safe(value: str) -> bool:
    """True if ``value`` can be used verbatim as a metric label value."""
    return bool(_LABEL_SAFE.match(value))

#: executed-kernel families the qgemm backend compiles (the cost
#: meter's ``LayerCost.kernel`` values).
QGEMM_KERNELS = ("gather", "bincount", "pair", "pair-int", "pair-stat", "popcount")

#: fused-plan node kinds (``PlanNode.kind_label`` values) -- listed so
#: new node kinds are added to the shared vocabulary deliberately.
PLAN_KINDS = (
    "linear", "conv2d", "attention", "attn-blocked", "layer-norm",
    "ln-1pass", "relu", "elementwise", "shared-quant", "seq",
    "basic-block", "inception", "preln-block", "postln-block",
    "tokens", "embed", "opaque", "func", "op",
)

#: frozen module class -> canonical kind, aligned with PLAN_KINDS so a
#: float-interpreter profile and a fused-plan profile aggregate under
#: the same ``by_kind`` keys.
_MODULE_KINDS = {
    "FrozenLinear": "linear",
    "FrozenConv2d": "conv2d",
    "FrozenBatchNorm2d": "batch-norm",
    "FrozenLayerNorm": "layer-norm",
    "FrozenLambda": "func",
    "FrozenReLU": "relu",
    "FrozenGELU": "gelu",
    "FrozenPool2d": "pool",
    "FrozenEmbedding": "embed",
    "FrozenSequential": "seq",
    "FrozenBasicBlock": "basic-block",
    "FrozenInceptionModule": "inception",
    "FrozenAttention": "attention",
    "FrozenPreLNBlock": "preln-block",
    "FrozenPostLNBlock": "postln-block",
}


def qgemm_kernel_label(kernel: str) -> str:
    """Canonical region/profile label for an executed qgemm kernel."""
    return f"qgemm-{kernel}"


def _kebab(class_name: str) -> str:
    name = class_name[len("Frozen"):] if class_name.startswith("Frozen") else class_name
    return re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "-", name).lower()


def module_kind(module) -> str:
    """Canonical kind for a frozen module, honouring installed executors.

    A layer whose forward is replaced by a backend executor reports the
    executor's kernel family (``qgemm-pair-stat``) -- the same label the
    cost meter records -- so "which kernel actually fired" reads the
    same in profiles, traces, and counters.
    """
    executor = getattr(module, "_exec", None)
    kernel: Optional[str] = getattr(executor, "kernel_label", None)
    if kernel:
        return str(kernel)
    class_name = type(module).__name__
    return _MODULE_KINDS.get(class_name, _kebab(class_name))
