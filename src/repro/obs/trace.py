"""Request-scoped tracing: spans, trace IDs, chrome://tracing export.

A *trace ID* is stamped into a request/job header when it enters the
system (micro-batch enqueue or ``map_predict`` submit) and rides the
job tuple through dispatcher -> worker -> collector.  Each hop records
*events* -- completed time spans with microsecond wall-clock
placement -- into a process-local bounded :class:`TraceBuffer`.
Together the events for one trace ID form the per-request timeline:
queue wait, batch assembly, worker compute (split per fused region /
qgemm kernel family), result transit.

Events use the Chrome Trace Event Format's complete-event shape
(``ph: "X"``), one JSON object per line when exported with
:func:`write_jsonl`::

    {"ph": "X", "name": "compute", "cat": "serve", "ts": <us epoch>,
     "dur": <us>, "pid": 0, "tid": 3, "args": {"trace_id": "7f21-4", ...}}

``chrome://tracing`` / Perfetto load a JSON *array* of such events;
:func:`jsonl_to_chrome` wraps a JSONL dump accordingly (``jq -s .``
does the same).
"""

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Iterable, List, Optional

from .registry import enabled

__all__ = [
    "Span",
    "TraceBuffer",
    "new_trace_id",
    "get_trace_buffer",
    "reset_trace_buffer",
    "write_jsonl",
    "jsonl_to_chrome",
]

_id_counter = itertools.count(1)


def new_trace_id() -> Optional[str]:
    """Process-unique trace ID (``<pid hex>-<seq>``); None when disabled."""
    if not enabled():
        return None
    return f"{os.getpid():x}-{next(_id_counter)}"


class TraceBuffer:
    """Bounded ring of trace events (oldest dropped first)."""

    def __init__(self, maxlen: int = 20000):
        self._events: deque = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def add(
        self,
        name: str,
        start_wall: float,
        duration_s: float,
        *,
        cat: str = "repro",
        tid: int = 0,
        trace_id: Optional[str] = None,
        **args,
    ) -> None:
        """Record a completed span placed at ``start_wall`` (epoch seconds)."""
        event = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": round(start_wall * 1e6, 1),
            "dur": round(max(duration_s, 0.0) * 1e6, 1),
            "pid": os.getpid(),
            "tid": tid,
            "args": {"trace_id": trace_id, **args} if trace_id or args else {},
        }
        with self._lock:
            self._events.append(event)

    def events(self, trace_id: Optional[str] = None) -> List[dict]:
        with self._lock:
            events = list(self._events)
        if trace_id is None:
            return events
        return [e for e in events if e.get("args", {}).get("trace_id") == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class Span:
    """Context manager timing a block into a :class:`TraceBuffer`.

    No-op (no clock reads, no buffer writes) when telemetry is
    disabled.  The measured duration is also available as
    ``span.seconds`` after exit, so call sites can feed the same
    measurement into a histogram without a second clock read.
    """

    __slots__ = ("name", "cat", "tid", "trace_id", "args", "buffer", "seconds",
                 "_start_wall", "_start_perf")

    def __init__(
        self,
        name: str,
        *,
        buffer: Optional[TraceBuffer] = None,
        cat: str = "repro",
        tid: int = 0,
        trace_id: Optional[str] = None,
        **args,
    ):
        self.name = name
        self.cat = cat
        self.tid = tid
        self.trace_id = trace_id
        self.args = args
        self.buffer = buffer
        self.seconds: Optional[float] = None
        self._start_wall = 0.0
        self._start_perf = 0.0

    def __enter__(self) -> "Span":
        if enabled():
            self._start_wall = time.time()
            self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not enabled() or not self._start_perf:
            return
        self.seconds = time.perf_counter() - self._start_perf
        buffer = self.buffer if self.buffer is not None else get_trace_buffer()
        buffer.add(
            self.name,
            self._start_wall,
            self.seconds,
            cat=self.cat,
            tid=self.tid,
            trace_id=self.trace_id,
            **self.args,
        )


def write_jsonl(path, events: Iterable[dict]) -> int:
    """Dump trace events one JSON object per line; returns event count."""
    n = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")
            n += 1
    return n


def jsonl_to_chrome(jsonl_path, out_path) -> int:
    """Wrap a JSONL trace dump into the JSON array chrome://tracing loads."""
    events = []
    with open(jsonl_path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    with open(out_path, "w") as handle:
        json.dump({"traceEvents": events}, handle)
    return len(events)


_buffer = TraceBuffer()


def get_trace_buffer() -> TraceBuffer:
    """The process-global trace buffer."""
    return _buffer


def reset_trace_buffer() -> TraceBuffer:
    """Install a fresh process-global trace buffer (forked workers)."""
    global _buffer
    _buffer = TraceBuffer()
    return _buffer
