"""Unified telemetry: metrics registry, request tracing, exporters.

Dependency-free observability for every layer of the stack -- the
serving pool, the frozen runtime / fused plan, and the code-domain
qgemm engine all stamp into this one subsystem.  ``REPRO_OBS=0``
disables stamping entirely (see :func:`enabled`).

* :class:`MetricsRegistry` -- process-local counters, gauges and
  fixed-bucket histograms with ``snapshot()``/``merge()`` for
  cross-process aggregation (workers ship snapshots to the pool parent
  over the existing result pipes).
* :class:`Span` / :func:`new_trace_id` / :class:`TraceBuffer` --
  request-scoped tracing; events export to chrome://tracing via
  :func:`write_jsonl` / :func:`jsonl_to_chrome`.
* :func:`render_prometheus` / :func:`snapshot_summary` -- exporters.
* :mod:`repro.obs.labels` -- the shared kernel/region label
  vocabulary (``qgemm-pair-stat`` and friends).
"""

from repro.obs import labels
from repro.obs.export import render_prometheus, snapshot_summary
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    get_registry,
    merge_snapshots,
    reset_registry,
    set_enabled,
)
from repro.obs.trace import (
    Span,
    TraceBuffer,
    get_trace_buffer,
    jsonl_to_chrome,
    new_trace_id,
    reset_trace_buffer,
    write_jsonl,
)

__all__ = [
    "labels",
    "render_prometheus",
    "snapshot_summary",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "get_registry",
    "merge_snapshots",
    "reset_registry",
    "set_enabled",
    "Span",
    "TraceBuffer",
    "get_trace_buffer",
    "jsonl_to_chrome",
    "new_trace_id",
    "reset_trace_buffer",
    "write_jsonl",
]
