"""Model zoo: scaled-down, architecture-faithful stand-ins.

The paper evaluates VGG-16, ResNet-18/50, Inception-V3, ViT and
BERT-Base.  Training those from scratch on ImageNet/GLUE is out of
scope for a laptop-scale numpy substrate, so each family is represented
by a small model preserving the structural features that shape tensor
distributions:

* ``vgg``       -- plain conv->relu->pool stacks (uniform-ish first
  activation, Gaussian-like weights),
* ``resnet``    -- residual basic blocks with batch norm,
* ``inception`` -- parallel 1x1/3x3/5x5/pool branches concatenated,
* ``vit``       -- patch embedding + pre-LN Transformer encoder,
* ``bert``      -- token embedding + Transformer encoder (long-tailed
  activation tensors with outliers, the regime where PoT wins).

All models consume the synthetic datasets from :mod:`repro.data` and
emit logits ``(N, num_classes)``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import (
    PostLNEncoderBlock,
    TransformerEncoderBlock,
    sinusoidal_positions,
)
from repro.nn.autograd import Tensor, concatenate
from repro.nn.layers import (
    BatchNorm2d,
    LayerNorm,
    Conv2d,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    set_global_seed,
)
from repro.nn.module import Module, Parameter, Sequential

#: Image input geometry shared by the CNN/ViT zoo.
IMAGE_SHAPE = (3, 16, 16)
#: Token task geometry shared by the BERT zoo.
SEQ_LEN = 16
VOCAB_SIZE = 64


class VGGStyle(Module):
    """Two VGG conv blocks plus an MLP classifier."""

    family = "vgg"

    def __init__(self, num_classes: int = 10, width: int = 16) -> None:
        super().__init__()
        c = width
        self.features = Sequential(
            Conv2d(3, c, 3, padding=1), ReLU(),
            Conv2d(c, c, 3, padding=1), ReLU(),
            MaxPool2d(2),
            Conv2d(c, 2 * c, 3, padding=1), ReLU(),
            Conv2d(2 * c, 2 * c, 3, padding=1), ReLU(),
            MaxPool2d(2),
        )
        self.classifier = Sequential(
            Flatten(),
            Linear(2 * c * 4 * 4, 4 * c), ReLU(),
            Linear(4 * c, num_classes),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


class BasicBlock(Module):
    """ResNet basic block: conv-bn-relu-conv-bn + skip."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1, stride=stride, bias=False)
            self.bn_shortcut = BatchNorm2d(out_channels)
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        if self.shortcut is not None:
            residual = self.bn_shortcut(self.shortcut(x))
        else:
            residual = x
        return (out + residual).relu()


class ResNetStyle(Module):
    """Stem + three residual stages, global average pooled."""

    family = "resnet"

    def __init__(self, num_classes: int = 10, width: int = 16, blocks_per_stage: int = 1) -> None:
        super().__init__()
        self.stem = Conv2d(3, width, 3, padding=1, bias=False)
        self.bn_stem = BatchNorm2d(width)
        stages: List[Module] = []
        channels = [width, 2 * width, 4 * width]
        in_ch = width
        for stage_idx, out_ch in enumerate(channels):
            for block_idx in range(blocks_per_stage):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                stages.append(BasicBlock(in_ch, out_ch, stride))
                in_ch = out_ch
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels[-1], num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn_stem(self.stem(x)).relu()
        out = self.stages(out)
        return self.fc(self.pool(out))


def _conv_bn(in_channels: int, out_channels: int, kernel, padding=0) -> Sequential:
    """Conv-BN-ReLU unit; Inception-V3 uses batch norm after every conv."""
    return Sequential(
        Conv2d(in_channels, out_channels, kernel, padding=padding, bias=False),
        BatchNorm2d(out_channels),
        ReLU(),
    )


class InceptionModule(Module):
    """Four parallel branches concatenated on the channel axis."""

    def __init__(self, in_channels: int, branch_channels: int) -> None:
        super().__init__()
        b = branch_channels
        self.branch1 = _conv_bn(in_channels, b, 1)
        self.branch3 = Sequential(
            _conv_bn(in_channels, b, 1),
            _conv_bn(b, b, 3, padding=1),
        )
        self.branch5 = Sequential(
            _conv_bn(in_channels, b, 1),
            _conv_bn(b, b, 3, padding=1),
            _conv_bn(b, b, 3, padding=1),
        )
        self.branch_pool = _conv_bn(in_channels, b, 1)

    def forward(self, x: Tensor) -> Tensor:
        pooled = F.avg_pool2d(x, kernel=3, stride=1) if min(x.shape[2:]) >= 3 else x
        if pooled.shape[2] != x.shape[2]:
            # keep spatial size: re-pad by using the raw input for the pool branch
            pooled = x
        branches = [
            self.branch1(x),
            self.branch3(x),
            self.branch5(x),
            self.branch_pool(pooled),
        ]
        return concatenate(branches, axis=1)


class InceptionStyle(Module):
    """Stem conv + two inception modules + classifier."""

    family = "inception"

    def __init__(self, num_classes: int = 10, width: int = 8) -> None:
        super().__init__()
        self.stem = Sequential(_conv_bn(3, 2 * width, 3, padding=1), MaxPool2d(2))
        self.block1 = InceptionModule(2 * width, width)
        self.block2 = InceptionModule(4 * width, width)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(4 * width, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.block1(out)
        out = self.block2(out)
        return self.fc(self.pool(out))


class ViTStyle(Module):
    """Patch embedding + Transformer encoder + mean-pool classifier."""

    family = "vit"

    def __init__(
        self,
        num_classes: int = 10,
        dim: int = 48,
        depth: int = 2,
        num_heads: int = 4,
        patch: int = 4,
    ) -> None:
        super().__init__()
        channels, height, _ = IMAGE_SHAPE
        self.patch = patch
        self.patch_embed = Conv2d(channels, dim, patch, stride=patch)
        n_patches = (height // patch) ** 2
        self.pos_embed = Parameter(0.02 * np.random.default_rng(7).normal(size=(1, n_patches, dim)))
        self.blocks = Sequential(
            *[TransformerEncoderBlock(dim, num_heads) for _ in range(depth)]
        )
        self.norm = LayerNorm(dim)  # ViT's final pre-head LayerNorm
        self.head = Linear(dim, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        patches = self.patch_embed(x)  # (N, D, H', W')
        n, d = patches.shape[0], patches.shape[1]
        tokens = patches.reshape(n, d, -1).transpose(0, 2, 1)  # (N, S, D)
        tokens = tokens + self.pos_embed
        tokens = self.norm(self.blocks(tokens))
        return self.head(tokens.mean(axis=1))


class BERTStyle(Module):
    """Token + positional embedding, post-LN Transformer, CLS classifier.

    Uses post-LN blocks as in the original BERT.  ``rare_token_scale``
    inflates the initial embedding norm of rare (Zipf-tail) tokens,
    simulating the rare-token embedding-outlier phenomenon of real BERT
    checkpoints; training leaves rarely-seen embeddings near this init.
    """

    family = "bert"

    def __init__(
        self,
        num_classes: int = 3,
        dim: int = 48,
        depth: int = 2,
        num_heads: int = 4,
        vocab_size: int = VOCAB_SIZE,
        seq_len: int = SEQ_LEN,
        rare_token_scale: float = 12.0,
        rare_token_start: int = 20,
    ) -> None:
        super().__init__()
        self.embed = Embedding(vocab_size, dim)
        if rare_token_scale != 1.0:
            self.embed.weight.data[rare_token_start:] *= rare_token_scale
        self.pos = Parameter(sinusoidal_positions(seq_len, dim)[None])
        self.blocks = Sequential(
            *[PostLNEncoderBlock(dim, num_heads) for _ in range(depth)]
        )
        self.pooler = Linear(dim, dim)
        self.head = Linear(dim, num_classes)

    def forward(self, tokens: np.ndarray) -> Tensor:
        x = self.embed(tokens) + self.pos
        x = self.blocks(x)
        pooled = self.pooler(x[:, 0, :]).tanh()
        return self.head(pooled)


#: Workload name -> builder, input kind, classes and dataset knobs.
#: Mirrors the paper's eight evaluation workloads (Tbl. IV + three GLUE
#: tasks).  ``gain_sigma`` is per-workload: plain conv stacks and BN
#: ResNets tolerate (and are stressed by) wide dynamic-range inputs,
#: while the narrow Inception/ViT stand-ins need a gentler setting to
#: converge on the numpy substrate.
MODEL_BUILDERS: Dict[str, dict] = {
    "vgg16": {"factory": VGGStyle, "input": "image", "classes": 10, "gain_sigma": 1.3},
    "resnet18": {"factory": ResNetStyle, "input": "image", "classes": 10, "gain_sigma": 1.3},
    "resnet50": {
        "factory": lambda num_classes=10: ResNetStyle(num_classes, blocks_per_stage=2),
        "input": "image",
        "classes": 10,
        "gain_sigma": 1.3,
    },
    "inceptionv3": {"factory": InceptionStyle, "input": "image", "classes": 10, "gain_sigma": 0.6},
    "vit": {"factory": ViTStyle, "input": "image", "classes": 10, "gain_sigma": 0.6},
    "bert-mnli": {
        "factory": lambda num_classes=3: BERTStyle(num_classes),
        "input": "tokens",
        "classes": 3,
    },
    "bert-cola": {
        "factory": lambda num_classes=2: BERTStyle(num_classes),
        "input": "tokens",
        "classes": 2,
    },
    "bert-sst2": {
        "factory": lambda num_classes=2: BERTStyle(num_classes),
        "input": "tokens",
        "classes": 2,
    },
}

WORKLOADS = list(MODEL_BUILDERS)


def build_model(name: str, seed: int = 0) -> Module:
    """Build a fresh model for a named workload with deterministic init."""
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown workload {name!r}; choose from {WORKLOADS}")
    set_global_seed(seed)
    spec = MODEL_BUILDERS[name]
    return spec["factory"](num_classes=spec["classes"])
