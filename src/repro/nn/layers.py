"""Standard layers used by the model zoo.

Quantizable layers (:class:`Linear`, :class:`Conv2d`) carry two hook
slots, ``weight_fake_quant`` and ``input_fake_quant``, which the ANT
framework populates (see :mod:`repro.quant.qat`).  When set, the layer
computes with fake-quantized weights and inputs, exactly like the
paper's quantized inference graph in Fig. 4: low-bit weight x low-bit
input, high-precision accumulate and output.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.autograd import Tensor, dropout, embedding_lookup
from repro.nn.module import Module, Parameter

#: Signature of a fake-quant hook: Tensor -> Tensor (graph-preserving).
FakeQuantHook = Callable[[Tensor], Tensor]

_GLOBAL_RNG = np.random.default_rng(0)

#: dropout masks draw from their own stream so reseeding them (e.g. for
#: order-independent fine-tuning runs) cannot perturb later model builds
_DROPOUT_RNG = np.random.default_rng(0)


def set_global_seed(seed: int) -> None:
    """Reset the initialisation RNG (used for reproducible model builds)."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)


def set_dropout_seed(seed: int) -> None:
    """Reset the dropout-mask RNG, independent of the initialisation RNG."""
    global _DROPOUT_RNG
    _DROPOUT_RNG = np.random.default_rng(seed)


def _kaiming(shape, fan_in: int) -> np.ndarray:
    std = math.sqrt(2.0 / fan_in)
    return _GLOBAL_RNG.normal(0.0, std, size=shape)


class QuantizableMixin:
    """Hook slots shared by Linear and Conv2d."""

    weight_fake_quant: Optional[FakeQuantHook]
    input_fake_quant: Optional[FakeQuantHook]

    def _init_quant_hooks(self) -> None:
        object.__setattr__(self, "weight_fake_quant", None)
        object.__setattr__(self, "input_fake_quant", None)

    def _apply_hooks(self, x: Tensor, weight: Tensor):
        if self.input_fake_quant is not None:
            x = self.input_fake_quant(x)
        if self.weight_fake_quant is not None:
            weight = self.weight_fake_quant(weight)
        return x, weight


class Linear(Module, QuantizableMixin):
    """Fully-connected layer, weight layout ``(out_features, in_features)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming((out_features, in_features), in_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._init_quant_hooks()

    def forward(self, x: Tensor) -> Tensor:
        x, weight = self._apply_hooks(x, self.weight)
        return F.linear(x, weight, self.bias)


class Conv2d(Module, QuantizableMixin):
    """2-D convolution, NCHW, weight ``(C_out, C_in, KH, KW)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        fan_in = in_channels * kh * kw
        self.weight = Parameter(_kaiming((out_channels, in_channels, kh, kw), fan_in))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._init_quant_hooks()

    def forward(self, x: Tensor) -> Tensor:
        x, weight = self._apply_hooks(x, self.weight)
        return F.conv2d(x, weight, self.bias, stride=self.stride, padding=self.padding)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class MaxPool2d(Module):
    def __init__(self, kernel_size, stride=None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size, stride=None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, yielding ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class Dropout(Module):
    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self.training, _DROPOUT_RNG)


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)


class BatchNorm2d(Module):
    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(channels))
        self.bias = Parameter(np.zeros(channels))
        object.__setattr__(
            self,
            "_buffers",
            {
                "running_mean": np.zeros(channels),
                "running_var": np.ones(channels),
            },
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.weight,
            self.bias,
            self._buffers["running_mean"],
            self._buffers["running_var"],
            self.training,
            self.momentum,
            self.eps,
        )


class Embedding(Module):
    """Token embedding table ``(vocab, dim)``."""

    def __init__(self, vocab_size: int, dim: int) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(_GLOBAL_RNG.normal(0.0, 0.02, size=(vocab_size, dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)
