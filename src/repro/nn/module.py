"""Module system: parameter registration, traversal, train/eval state."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.autograd import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with automatic parameter and submodule registration."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters plus persistent buffers."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for mod_name, module in self.named_modules():
            for buf_name, buf in getattr(module, "_buffers", {}).items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                state[key] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data[...] = state[name]
        for mod_name, module in self.named_modules():
            for buf_name, buf in getattr(module, "_buffers", {}).items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                if key in state:
                    buf[...] = state[key]

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"m{index}", module)
            self._items.append(module)

    def append(self, module: Module) -> "Sequential":
        index = len(self._items)
        setattr(self, f"m{index}", module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x
