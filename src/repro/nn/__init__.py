"""Minimal-but-complete neural network substrate over numpy.

The paper evaluates ANT on CNNs (VGG16, ResNet-18/50, Inception-V3) and
Transformers (ViT, BERT-Base) implemented in PyTorch.  This package is
the substitution substrate: a reverse-mode autograd engine
(:mod:`repro.nn.autograd`) plus the layer types those architectures need
(:mod:`repro.nn.layers`, :mod:`repro.nn.attention`), scaled-down
architecture-faithful model builders (:mod:`repro.nn.models`) and
optimizers (:mod:`repro.nn.optim`).

Everything runs in float64 numpy, which is what the quantization
experiments need: the paper itself simulates all quantized formats in
full-precision arithmetic (Sec. VII-A).
"""

from repro.nn.autograd import Tensor, no_grad
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.attention import MultiHeadSelfAttention, TransformerEncoderBlock
from repro.nn.optim import SGD, Adam
from repro.nn import functional
from repro.nn import models

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Embedding",
    "ReLU",
    "GELU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "MultiHeadSelfAttention",
    "TransformerEncoderBlock",
    "SGD",
    "Adam",
    "functional",
    "models",
]
