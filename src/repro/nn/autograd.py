"""Reverse-mode automatic differentiation over numpy arrays.

A small tape-based engine in the micrograd style, but fully vectorised:
each op records a closure that accumulates gradients into its parents.
Only what the model zoo needs is implemented, with fused primitives
(conv2d, pooling, softmax-cross-entropy, layernorm) where composing
element-wise ops would be prohibitively slow in numpy.

Gradients propagate in float64.  Broadcasting is supported everywhere
through :func:`_unbroadcast`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from size one.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and grad_enabled()
        self._backward: Optional[Callable[[], None]] = None
        self._parents = _parents if self.requires_grad else ()
        self.name = name

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        self._accumulate(grad)

        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        if id(parent) in seen_on_stack:
                            continue
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    visited.add(id(current))
                    topo.append(current)
                    stack.pop()
                    seen_on_stack.discard(id(current))

        visit(self)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[["Tensor"], Callable[[], None]],
    ) -> "Tensor":
        parents = tuple(parents)
        requires = grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
        if requires:
            out._backward = backward(out)
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad)
                if other.requires_grad:
                    other._accumulate(out.grad)

            return backward

        return Tensor._make(self.data + other.data, (self, other), make)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(-out.grad)

            return backward

        return Tensor._make(-self.data, (self,), make)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * other.data)
                if other.requires_grad:
                    other._accumulate(out.grad * self.data)

            return backward

        return Tensor._make(self.data * other.data, (self, other), make)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad / other.data)
                if other.requires_grad:
                    other._accumulate(-out.grad * self.data / (other.data ** 2))

            return backward

        return Tensor._make(self.data / other.data, (self, other), make)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            return backward

        return Tensor._make(self.data ** exponent, (self,), make)

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def make(out: Tensor):
            def backward():
                grad = out.grad
                if self.requires_grad:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.data.shape)
                    )
                if other.requires_grad:
                    other._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.data.shape)
                    )

            return backward

        return Tensor._make(self.data @ other.data, (self, other), make)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(self.data.shape))

            return backward

        return Tensor._make(self.data.reshape(shape), (self,), make)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inverse))

            return backward

        return Tensor._make(self.data.transpose(axes), (self,), make)

    def __getitem__(self, key) -> "Tensor":
        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, key, out.grad)
                    self._accumulate(grad)

            return backward

        return Tensor._make(self.data[key], (self,), make)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    grad = out.grad
                    if axis is not None and not keepdims:
                        grad = np.expand_dims(grad, axis)
                    self._accumulate(np.broadcast_to(grad, self.data.shape))

            return backward

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), make)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    expanded = out.grad
                    maxes = data
                    if axis is not None and not keepdims:
                        expanded = np.expand_dims(expanded, axis)
                        maxes = np.expand_dims(maxes, axis)
                    mask = (self.data == maxes).astype(np.float64)
                    mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
                    self._accumulate(mask * expanded)

            return backward

        return Tensor._make(data, (self,), make)

    # ------------------------------------------------------------------
    # Element-wise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return backward

        return Tensor._make(self.data * mask, (self,), make)

    def gelu(self) -> "Tensor":
        """Tanh-approximation GELU, matching BERT/ViT implementations."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        # x*x*x, not x**3: np.power's pow-loop is ~200x slower than two
        # multiplies and this runs on every FFN activation.
        inner = c * (x + 0.044715 * (x * x * x))
        tanh = np.tanh(inner)
        data = 0.5 * x * (1.0 + tanh)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    sech2 = 1.0 - tanh * tanh
                    d_inner = c * (1.0 + 3 * 0.044715 * (x * x))
                    grad = 0.5 * (1.0 + tanh) + 0.5 * x * sech2 * d_inner
                    self._accumulate(out.grad * grad)

            return backward

        return Tensor._make(data, (self,), make)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - data ** 2))

            return backward

        return Tensor._make(data, (self,), make)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * data)

            return backward

        return Tensor._make(data, (self,), make)

    def log(self) -> "Tensor":
        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)

            return backward

        return Tensor._make(np.log(self.data), (self,), make)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{label})"


# ----------------------------------------------------------------------
# Free functions on tensors
# ----------------------------------------------------------------------
def concatenate(tensors: List[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis`` with gradient routing back to parts."""
    datas = [t.data for t in tensors]
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def make(out: Tensor):
        def backward():
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * out.grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(out.grad[tuple(index)])

        return backward

    return Tensor._make(np.concatenate(datas, axis=axis), tensors, make)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax with a fused backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=axis, keepdims=True)

    def make(out: Tensor):
        def backward():
            if x.requires_grad:
                dot = (out.grad * probs).sum(axis=axis, keepdims=True)
                x._accumulate(probs * (out.grad - dot))

        return backward

    return Tensor._make(probs, (x,), make)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits ``(N, C)`` and integer targets."""
    targets = np.asarray(targets, dtype=np.int64)
    n = logits.data.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    loss_val = -log_probs[np.arange(n), targets].mean()

    def make(out: Tensor):
        def backward():
            if logits.requires_grad:
                probs = np.exp(log_probs)
                grad = probs
                grad[np.arange(n), targets] -= 1.0
                logits._accumulate(out.grad * grad / n)

        return backward

    return Tensor._make(np.asarray(loss_val), (logits,), make)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table``; backward scatter-adds into the table."""
    indices = np.asarray(indices, dtype=np.int64)

    def make(out: Tensor):
        def backward():
            if table.requires_grad:
                grad = np.zeros_like(table.data)
                np.add.at(grad, indices.reshape(-1), out.grad.reshape(-1, table.data.shape[1]))
                table._accumulate(grad)

        return backward

    return Tensor._make(table.data[indices], (table,), make)


def dropout(
    x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None
) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.data.shape) >= p) / (1.0 - p)

    def make(out: Tensor):
        def backward():
            if x.requires_grad:
                x._accumulate(out.grad * mask)

        return backward

    return Tensor._make(x.data * mask, (x,), make)
