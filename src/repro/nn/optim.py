"""Optimizers for training and quantization-aware fine-tuning."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
