"""Multi-head self-attention and Transformer encoder blocks.

Pre-LayerNorm encoder blocks as used by ViT; BERT-style models in the
zoo reuse the same block (the difference from post-LN BERT does not
affect the tensor distribution families that drive ANT's type
selection: attention activations remain long-tailed, FFN weights remain
Gaussian-like).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.autograd import Tensor, softmax
from repro.nn.layers import Dropout, GELU, LayerNorm, Linear
from repro.nn.module import Module


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention."""

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.0) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim)
        self.k_proj = Linear(dim, dim)
        self.v_proj = Linear(dim, dim)
        self.out_proj = Linear(dim, dim)
        self.drop = Dropout(dropout)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, D) -> (B, H, S, Dh)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        attn = softmax(scores, axis=-1)
        attn = self.drop(attn)
        context = attn @ v  # (B, H, S, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out_proj(context)


class TransformerEncoderBlock(Module):
    """Pre-LN block: x + MHSA(LN(x)); x + FFN(LN(x))."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        hidden = int(dim * mlp_ratio)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, dropout)
        self.norm2 = LayerNorm(dim)
        self.fc1 = Linear(dim, hidden)
        self.act = GELU()
        self.fc2 = Linear(hidden, dim)
        self.drop = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        h = self.fc2(self.drop(self.act(self.fc1(self.norm2(x)))))
        return x + h


class PostLNEncoderBlock(Module):
    """Post-LN block as in the original BERT: LN(x + MHSA(x)); LN(x + FFN(x))."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        hidden = int(dim * mlp_ratio)
        self.attn = MultiHeadSelfAttention(dim, num_heads, dropout)
        self.norm1 = LayerNorm(dim)
        self.fc1 = Linear(dim, hidden)
        self.act = GELU()
        self.fc2 = Linear(hidden, dim)
        self.norm2 = LayerNorm(dim)
        self.drop = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm1(x + self.attn(x))
        h = self.fc2(self.drop(self.act(self.fc1(x))))
        return self.norm2(x + h)


def sinusoidal_positions(seq_len: int, dim: int) -> np.ndarray:
    """Fixed sinusoidal positional encodings (Vaswani et al. 2017)."""
    positions = np.arange(seq_len)[:, None]
    freqs = np.exp(-np.log(10000.0) * (np.arange(0, dim, 2) / dim))
    angles = positions * freqs[None, :]
    enc = np.zeros((seq_len, dim))
    enc[:, 0::2] = np.sin(angles)
    enc[:, 1::2] = np.cos(angles[:, : dim // 2 + dim % 2])[:, : enc[:, 1::2].shape[1]]
    return enc
