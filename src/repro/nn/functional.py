"""Fused structured ops: convolution, pooling, layer/batch norm.

Convolution uses im2col so both forward and backward are single GEMMs,
which keeps the numpy substrate fast enough to train the model zoo.
All tensors follow the NCHW layout used by the paper's PyTorch code.
"""

from __future__ import annotations

import functools
from typing import Optional, Tuple

import numpy as np

from repro.nn.autograd import Tensor


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col_indices(
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping padded input pixels to im2col columns.

    Cached on (channels, spatial shape, kernel, stride, padding): every
    forward of a given conv layer reuses identical index tuples, and
    recomputing them cost more than the gather they feed on small
    models.  The batch dimension of ``x_shape`` does not participate in
    the indices, so it is excluded from the key.
    """
    _, channels, height, width = x_shape
    return _im2col_indices_cached(
        channels, height, width, tuple(kernel), tuple(stride), tuple(padding)
    )


@functools.lru_cache(maxsize=256)
def _im2col_indices_cached(
    channels: int,
    height: int,
    width: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output collapsed: input {height}x{width}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}"
        )

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    for arr in (k, i, j):
        arr.setflags(write=False)
    return k, i, j, out_h, out_w


def _open_grid_indices(shape: Tuple[int, ...]) -> Tuple[np.ndarray, ...]:
    """Broadcast-ready index grids (pooling backward scatter targets).

    Equivalent to ``np.indices(shape)`` as fancy-index operands, but
    each axis is a tiny reshaped ``arange`` that numpy broadcasts
    during indexing, instead of four materialized full-size grids.
    """
    ndim = len(shape)
    grids = []
    for axis, size in enumerate(shape):
        view = [1] * ndim
        view[axis] = size
        grids.append(np.arange(size).reshape(view))
    return tuple(grids)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution, NCHW, weight layout ``(C_out, C_in, KH, KW)``."""
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, _, _ = x.data.shape
    c_out, c_in_w, kh, kw = weight.data.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")

    ph, pw = padding
    padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    k, i, j, out_h, out_w = _im2col_indices(x.data.shape, (kh, kw), stride, padding)
    # cols: (C_in*KH*KW, N*out_h*out_w)
    cols = padded[:, k, i, j].transpose(1, 2, 0).reshape(c_in * kh * kw, -1)
    w_mat = weight.data.reshape(c_out, -1)
    out = (w_mat @ cols).reshape(c_out, out_h * out_w, n).transpose(2, 0, 1)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) + ((bias,) if bias is not None else ())

    def make(result: Tensor):
        def backward():
            grad = result.grad  # (N, C_out, out_h, out_w)
            grad_mat = grad.transpose(1, 2, 3, 0).reshape(c_out, -1)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))
            if weight.requires_grad:
                # Recompute cols ordered consistently with grad_mat.
                cols_t = padded[:, k, i, j].transpose(1, 2, 0).reshape(c_in * kh * kw, -1)
                # grad_mat columns are ordered (out_h*out_w, N) flattened as
                # (spatial, batch); cols_t columns are (spatial, batch) too.
                weight._accumulate((grad_mat @ cols_t.T).reshape(weight.data.shape))
            if x.requires_grad:
                dcols = w_mat.T @ grad_mat  # (C_in*KH*KW, out_h*out_w*N)
                dcols = dcols.reshape(c_in * kh * kw, out_h * out_w, n).transpose(2, 0, 1)
                dpadded = np.zeros_like(padded)
                np.add.at(dpadded, (slice(None), k, i, j), dcols)
                if ph or pw:
                    dx = dpadded[:, :, ph: ph + x.data.shape[2], pw: pw + x.data.shape[3]]
                else:
                    dx = dpadded
                x._accumulate(dx)

        return backward

    return Tensor._make(out, parents, make)


def max_pool2d(x: Tensor, kernel=2, stride=None) -> Tensor:
    """Max pooling (NCHW).  ``stride`` defaults to the kernel size."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    n, c, h, w = x.data.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    # Build windows with stride tricks, then reduce.
    strides = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(strides[0], strides[1], strides[2] * sh, strides[3] * sw, strides[2], strides[3]),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kh * kw)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def make(result: Tensor):
        def backward():
            if x.requires_grad:
                grad = np.zeros_like(x.data)
                ki, kj = np.unravel_index(arg, (kh, kw))
                n_idx, c_idx, oh_idx, ow_idx = _open_grid_indices(arg.shape)
                rows = oh_idx * sh + ki
                cols = ow_idx * sw + kj
                np.add.at(grad, (n_idx, c_idx, rows, cols), result.grad)
                x._accumulate(grad)

        return backward

    return Tensor._make(out, (x,), make)


def avg_pool2d(x: Tensor, kernel=2, stride=None) -> Tensor:
    """Average pooling (NCHW)."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    n, c, h, w = x.data.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    strides = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(strides[0], strides[1], strides[2] * sh, strides[3] * sw, strides[2], strides[3]),
        writeable=False,
    )
    out = windows.mean(axis=(-1, -2))
    denom = float(kh * kw)

    def make(result: Tensor):
        def backward():
            if x.requires_grad:
                grad = np.zeros_like(x.data)
                spread = result.grad / denom
                for di in range(kh):
                    for dj in range(kw):
                        grad[:, :, di: di + out_h * sh: sh, dj: dj + out_w * sw: sw] += spread
                x._accumulate(grad)

        return backward

    return Tensor._make(out, (x,), make)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension with affine params."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean) * inv_std
    out = x_hat * weight.data + bias.data
    dim = x.data.shape[-1]

    def make(result: Tensor):
        def backward():
            grad = result.grad
            if bias.requires_grad:
                bias._accumulate(grad.reshape(-1, dim).sum(axis=0))
            if weight.requires_grad:
                weight._accumulate((grad * x_hat).reshape(-1, dim).sum(axis=0))
            if x.requires_grad:
                g = grad * weight.data
                term1 = g
                term2 = g.mean(axis=-1, keepdims=True)
                term3 = x_hat * (g * x_hat).mean(axis=-1, keepdims=True)
                x._accumulate(inv_std * (term1 - term2 - term3))

        return backward

    return Tensor._make(out, (x, weight, bias), make)


def batch_norm2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over (N, H, W) per channel (NCHW layout).

    Running statistics are updated in place during training, as in
    PyTorch.
    """
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    shape = (1, -1, 1, 1)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out = x_hat * weight.data.reshape(shape) + bias.data.reshape(shape)
    count = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]

    def make(result: Tensor):
        def backward():
            grad = result.grad
            if bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))
            if weight.requires_grad:
                weight._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
            if x.requires_grad:
                g = grad * weight.data.reshape(shape)
                if training:
                    sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
                    sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                    dx = (
                        inv_std.reshape(shape)
                        * (g - sum_g / count - x_hat * sum_gx / count)
                    )
                else:
                    dx = g * inv_std.reshape(shape)
                x._accumulate(dx)

        return backward

    return Tensor._make(out, (x, weight, bias), make)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out
