"""Micro-batching request queue for the parallel serving engine.

Single-sample requests are the unit of arrival (a user hitting the
service), but single-sample forwards waste the batched kernels, so the
queue coalesces pending requests into micro-batches before dispatch:
a batch closes when it reaches ``max_batch`` samples or when
``max_wait_ms`` has elapsed since its first request arrived, whichever
comes first.  ``max_batch`` bounds per-request latency under load;
``max_wait_ms`` bounds it when traffic is sparse.

The queue is a plain thread-safe coalescing buffer with no opinion on
who executes the batch -- :class:`repro.serve.pool.ServingPool` runs a
dispatcher thread that drains it into worker processes, and the unit
tests drain it inline.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from typing import List, Optional

import numpy as np

from repro.obs import new_trace_id


def resolve_future(
    future: Future, value=None, error: Optional[BaseException] = None
) -> None:
    """Fulfil a future, tolerating client-side cancellation.

    A caller may ``cancel()`` a pending future at any time; an
    unguarded ``set_result`` then raises ``InvalidStateError`` inside
    whatever serving thread is resolving it -- killing that thread and
    hanging every other request -- for one abandoned future.
    """
    if future.cancelled():
        return
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)
    except InvalidStateError:
        pass  # cancelled/resolved in the race window; the value is moot


class Request:
    """One pending sample plus the future its logits resolve.

    ``trace_id`` is stamped at enqueue (``None`` with ``REPRO_OBS=0``)
    and rides the request through batch assembly into the job header,
    so a request's queue wait, its micro-batch's compute, and the
    result transit all correlate in the trace (see :mod:`repro.obs`).
    """

    __slots__ = ("payload", "future", "arrived", "trace_id")

    def __init__(self, payload: np.ndarray) -> None:
        self.payload = payload
        self.future: Future = Future()
        self.arrived = time.monotonic()
        self.trace_id = new_trace_id()


class MicroBatchQueue:
    """Coalesce single-sample requests into dispatchable micro-batches.

    Parameters
    ----------
    max_batch:
        Largest batch handed out by :meth:`next_batch`; a full buffer
        dispatches immediately.
    max_wait_ms:
        Longest time a request may sit waiting for co-travellers once
        it is the head of a forming batch.  ``0`` dispatches whatever
        is buffered without waiting.
    """

    def __init__(self, max_batch: int = 64, max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._pending: deque = deque()
        self._closed = False
        # coalescing statistics (under _lock)
        self._n_requests = 0
        self._n_batches = 0
        self._fill_sum = 0

    # ------------------------------------------------------------------
    def submit(self, sample: np.ndarray) -> Future:
        """Enqueue one sample; resolves to its logits row."""
        request = Request(sample)
        with self._nonempty:
            if self._closed:
                raise RuntimeError("queue is closed")
            self._pending.append(request)
            self._n_requests += 1
            self._nonempty.notify_all()
        return request.future

    def next_batch(self, timeout: Optional[float] = None) -> Optional[List[Request]]:
        """Block for the next micro-batch of requests.

        Returns ``None`` once the queue is closed and drained; an empty
        list when ``timeout`` (seconds) expires with nothing pending --
        so a dispatcher loop can poll its own shutdown flag.
        """
        with self._nonempty:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._pending:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return []
                self._nonempty.wait(remaining)
            # hold the batch open for co-travellers; the window runs
            # from the head request's *arrival* (it may have waited
            # already while the dispatcher served the previous batch),
            # so max_wait_ms bounds actual queueing latency
            window_ends = self._pending[0].arrived + self.max_wait_ms / 1000.0
            while len(self._pending) < self.max_batch and not self._closed:
                remaining = window_ends - time.monotonic()
                if remaining <= 0:
                    break
                self._nonempty.wait(remaining)
            batch = [
                self._pending.popleft()
                for _ in range(min(self.max_batch, len(self._pending)))
            ]
            self._n_batches += 1
            self._fill_sum += len(batch)
            return batch

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting requests and wake every waiter.

        Already-buffered requests stay drainable via
        :meth:`next_batch`; new submissions raise.
        """
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    def cancel_pending(self) -> int:
        """Fail all buffered requests (used on pool shutdown)."""
        with self._nonempty:
            dropped = 0
            while self._pending:
                request = self._pending.popleft()
                resolve_future(
                    request.future,
                    error=RuntimeError("serving pool shut down before dispatch"),
                )
                dropped += 1
            return dropped

    @property
    def depth(self) -> int:
        """Requests currently buffered (cheap; used by pool stats)."""
        with self._lock:
            return len(self._pending)

    @property
    def stats(self) -> dict:
        """Coalescing counters: requests, batches, and mean fill."""
        with self._lock:
            return {
                "requests": self._n_requests,
                "batches": self._n_batches,
                "mean_fill": (
                    self._fill_sum / self._n_batches if self._n_batches else 0.0
                ),
            }
