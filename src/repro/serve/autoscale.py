"""Autoscaling policy for the elastic serving pool.

:class:`PoolAutoscaler` closes the loop between
:meth:`ServingPool.stats` and the pool's
:meth:`~repro.serve.pool.ServingPool.add_worker` /
:meth:`~repro.serve.pool.ServingPool.retire_worker` primitives:

* **scale up** when the predicted queue latency -- outstanding jobs
  times the EWMA per-job service time, divided by the current worker
  count -- exceeds ``latency_budget_s`` (and the pool is below
  ``max_workers``), or when the *observed* job-latency p99 from the
  pool's telemetry histograms exceeds the budget (sparse traffic can
  blow the tail while the backlog stays tiny);
* **scale up per tenant** on a multi-model pool: the pool-level
  signals average over the fleet, so a sparse-but-latency-sensitive
  tenant can blow its own p99 while the pool looks healthy.  The
  ``per_model`` entries of the stats snapshot (tenant ``queue_depth``,
  backlog/inflight split, per-tenant EWMA and observed p99) get the
  same two triggers, tenant by tenant -- a tenant with work waiting
  whose observed p99 or predicted latency exceeds the budget scales
  the pool up (``tenant-p99`` / ``tenant-predicted-latency`` reasons);
* **scale down** only after the pool has been *completely idle* (no
  backlog, nothing in flight, nothing waiting in any tenant's
  coalescing queue) for ``idle_window_s`` (and the pool is above
  ``min_workers``).

Oscillation damping is structural, not tuned: scale-ups are paced by
``cooldown_s``, scale-downs additionally require a full uninterrupted
idle window (any arriving work resets the clock, and so does each
retirement), and the up/down conditions do not mirror each other --
load below the budget is *not* a reason to shrink.  A square-wave load
whose idle gaps are shorter than ``idle_window_s`` therefore grows to
its steady worker count once and never thrashes (asserted in
``tests/test_serve_elastic.py``).

The policy core, :meth:`PoolAutoscaler.decide`, is a pure function of
a stats snapshot and a caller-supplied clock, so tests drive synthetic
load shapes through it without processes or sleeps.  :meth:`step`
applies one decision to the live pool; :meth:`start` runs ``step`` on
a background thread every ``interval_s``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from repro import obs
from repro.serve.pool import ServingPool


class PoolAutoscaler:
    """Grow/shrink a :class:`ServingPool` from its stats snapshots.

    Parameters
    ----------
    pool:
        The started pool to scale.
    min_workers / max_workers:
        Inclusive bounds on workers accepting traffic.  The pool is
        nudged back inside the bounds even while a cooldown is
        pending (e.g. a crash below ``min_workers``).
    latency_budget_s:
        Target ceiling for predicted queue latency: ``(backlog +
        inflight) * ewma_service_s / workers``.  Above it, scale up.
    idle_window_s:
        Uninterrupted fully-idle seconds required before one worker is
        retired.  Any outstanding work -- and each retirement -- resets
        the window.
    cooldown_s:
        Minimum seconds between any two scaling actions.
    interval_s:
        Poll period of the background thread (:meth:`start`).
    """

    def __init__(
        self,
        pool: ServingPool,
        min_workers: int = 1,
        max_workers: int = 4,
        latency_budget_s: float = 1.0,
        idle_window_s: float = 10.0,
        cooldown_s: float = 3.0,
        interval_s: float = 0.5,
    ) -> None:
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if max_workers < min_workers:
            raise ValueError(
                f"max_workers ({max_workers}) must be >= min_workers "
                f"({min_workers})"
            )
        if latency_budget_s <= 0:
            raise ValueError("latency_budget_s must be positive")
        self.pool = pool
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.latency_budget_s = float(latency_budget_s)
        self.idle_window_s = float(idle_window_s)
        self.cooldown_s = float(cooldown_s)
        self.interval_s = float(interval_s)
        self.n_scale_ups = 0
        self.n_scale_downs = 0
        #: recent scaling decisions, newest last: dicts carrying the
        #: time, the delta, the reason, and the stats inputs the policy
        #: saw -- enough to replay/explain any decision after the fact.
        self.events: deque = deque(maxlen=1000)
        self._idle_since: Optional[float] = None
        self._last_scale: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @classmethod
    def from_config(cls, pool: ServingPool, config) -> "PoolAutoscaler":
        """Build an autoscaler from an
        :class:`~repro.serve.registry.AutoscaleConfig` (what the
        :func:`repro.serve.serve` facade uses)."""
        return cls(
            pool,
            min_workers=config.min_workers,
            max_workers=config.max_workers,
            latency_budget_s=config.latency_budget_s,
            idle_window_s=config.idle_window_s,
            cooldown_s=config.cooldown_s,
            interval_s=config.interval_s,
        )

    # ------------------------------------------------------------------
    # the policy core (pure: stats snapshot + clock in, decision out)
    # ------------------------------------------------------------------
    def decide(self, stats: dict, now: float) -> int:
        """One scaling decision for ``stats`` at time ``now``.

        Returns ``+1`` (add a worker), ``-1`` (retire one), or ``0``.
        Only the autoscaler's own timers mutate; the pool is untouched,
        so synthetic load shapes can be replayed through this method
        (see the square-wave damping test).
        """
        workers = stats["workers"]
        outstanding = stats["backlog"] + stats["inflight"]
        ewma = stats["ewma_service_s"]
        p99 = stats.get("latency_p99_s")
        # requests coalescing in tenant micro-batch queues are work the
        # job-level backlog cannot see yet; they block idleness and
        # feed the per-tenant triggers below (absent on the synthetic
        # snapshots the pure-policy tests replay -- .get keeps those
        # valid)
        queued_requests = stats.get("queue_depth", 0)
        per_model = stats.get("per_model") or {}
        inputs = {
            "workers": workers,
            "backlog": stats["backlog"],
            "inflight": stats["inflight"],
            "ewma_service_s": ewma,
            "latency_p99_s": p99,
        }
        if outstanding > 0 or queued_requests > 0:
            self._idle_since = None
        elif self._idle_since is None:
            self._idle_since = now
        # bounds enforcement ignores the cooldown: a pool outside its
        # bounds (worker crash, reconfigured limits) is nudged back in
        if workers < self.min_workers:
            return self._record(now, +1, workers, "below-min", inputs)
        if workers > self.max_workers:
            return self._record(now, -1, workers, "above-max", inputs)
        if (
            self._last_scale is not None
            and now - self._last_scale < self.cooldown_s
        ):
            return 0
        if outstanding > 0 and workers < self.max_workers:
            if ewma:
                predicted_latency = outstanding * ewma / max(1, workers)
                if predicted_latency > self.latency_budget_s:
                    return self._record(
                        now, +1, workers, "predicted-latency", inputs
                    )
            # tail trigger: sparse-but-latency-sensitive traffic can
            # keep the backlog tiny (predicted latency fine) while
            # observed p99 -- queue wait included -- blows the budget
            if p99 is not None and p99 > self.latency_budget_s:
                return self._record(now, +1, workers, "p99-latency", inputs)
        if workers < self.max_workers:
            # per-tenant triggers: the pool-level averages above can
            # mask one tenant's pain on a multi-model pool.  Only a
            # tenant with work actually waiting may scale the pool --
            # a stale p99 from finished traffic must not grow an idle
            # fleet.
            batch = max(1, stats.get("batch_size", 1))
            for name, tenant in per_model.items():
                depth = tenant.get("queue_depth", 0)
                tenant_jobs = tenant.get("backlog", 0) + tenant.get("inflight", 0)
                if depth <= 0 and tenant_jobs <= 0:
                    continue
                tenant_inputs = {
                    **inputs,
                    "tenant": name,
                    "tenant_queue_depth": depth,
                    "tenant_jobs": tenant_jobs,
                    "tenant_latency_p99_s": tenant.get("latency_p99_s"),
                    "tenant_ewma_service_s": tenant.get("ewma_service_s"),
                }
                tenant_p99 = tenant.get("latency_p99_s")
                if tenant_p99 is not None and tenant_p99 > self.latency_budget_s:
                    return self._record(
                        now, +1, workers, "tenant-p99", tenant_inputs
                    )
                tenant_ewma = tenant.get("ewma_service_s")
                if tenant_ewma:
                    # queued single-sample requests become at least
                    # ceil(depth / batch) jobs once coalesced
                    pending_jobs = tenant_jobs + -(-depth // batch)
                    predicted = pending_jobs * tenant_ewma / max(1, workers)
                    if predicted > self.latency_budget_s:
                        return self._record(
                            now, +1, workers,
                            "tenant-predicted-latency", tenant_inputs,
                        )
        if (
            outstanding == 0
            and queued_requests == 0
            and workers > self.min_workers
            and self._idle_since is not None
            and now - self._idle_since >= self.idle_window_s
        ):
            # each retirement needs a fresh full idle window: shrinking
            # is deliberately slower than growing
            self._idle_since = now
            return self._record(now, -1, workers, "idle-window", inputs)
        return 0

    def _record(
        self, now: float, delta: int, workers: int, reason: str, inputs: dict
    ) -> int:
        self._last_scale = now
        if delta > 0:
            self.n_scale_ups += 1
        else:
            self.n_scale_downs += 1
        self.events.append(
            {
                "t": now,
                "delta": delta,
                "workers": workers,
                "reason": reason,
                "inputs": inputs,
            }
        )
        if self.pool is not None and obs.enabled():
            self.pool.metrics_registry.counter(
                "autoscale.decisions_total",
                direction="up" if delta > 0 else "down",
                reason=reason,
            ).inc()
        return delta

    # ------------------------------------------------------------------
    # applying decisions to the live pool
    # ------------------------------------------------------------------
    def step(self, now: Optional[float] = None) -> int:
        """Take one stats snapshot, decide, and apply the decision."""
        now = time.monotonic() if now is None else now
        delta = self.decide(self.pool.stats(), now)
        if delta > 0:
            self.pool.add_worker()
        elif delta < 0:
            self.pool.retire_worker()
        return delta

    def start(self) -> "PoolAutoscaler":
        """Run :meth:`step` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("autoscaler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="serve-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background thread (the pool is left as-is)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.step()
            except RuntimeError:
                if not self.pool.is_serving:
                    return  # pool closed/broken under us: scaling is over
                # transient race (e.g. a concurrent retire_worker won
                # the last-worker guard between our stats snapshot and
                # the apply): skip this tick, keep autoscaling
                continue

    def __enter__(self) -> "PoolAutoscaler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def stats(self) -> dict:
        """Counters for monitoring/benchmarks."""
        return {
            "scale_ups": self.n_scale_ups,
            "scale_downs": self.n_scale_downs,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "latency_budget_s": self.latency_budget_s,
            "idle_window_s": self.idle_window_s,
            "cooldown_s": self.cooldown_s,
        }
