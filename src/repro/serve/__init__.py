"""Parallel serving engine over the frozen quantized runtime.

The frozen engine (:mod:`repro.runtime`) is single-threaded per
process by design; this package is the traffic-facing layer on top of
it:

* :class:`ServingPool` -- N worker processes, each decoding the same
  packed ``.npz`` checkpoint once, pulling jobs from a shared queue;
* :class:`MicroBatchQueue` -- coalesces single-sample requests into
  micro-batches (``max_batch`` / ``max_wait_ms``) before dispatch;
* :class:`ServingClient` -- synchronous per-request facade;
* ``ServingPool.map_predict`` -- bulk arrays sharded across workers in
  batch-aligned chunks.

Every dispatched forward runs at a fixed, zero-padded batch shape, so
pooled results are bit-identical to single-process
``FrozenModel.predict(x, batch_size, pad_batches=True)`` regardless of
how requests were coalesced or sharded.
"""

from repro.serve.pool import ServingClient, ServingPool
from repro.serve.queue import MicroBatchQueue, Request

__all__ = ["MicroBatchQueue", "Request", "ServingClient", "ServingPool"]
