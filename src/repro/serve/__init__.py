"""Elastic parallel serving engine over the frozen quantized runtime.

The frozen engine (:mod:`repro.runtime`) is single-threaded per
process by design; this package is the traffic-facing layer on top of
it:

* :class:`ServingPool` -- N worker processes, each decoding the same
  packed ``.npz`` checkpoint once, fed from per-worker private queues;
  grows/shrinks at runtime via ``add_worker()`` / ``retire_worker()``;
* :class:`PoolAutoscaler` -- policy loop scaling the pool on backlog
  length x EWMA service time, bounded by min/max workers;
* :class:`MicroBatchQueue` -- coalesces single-sample requests into
  micro-batches (``max_batch`` / ``max_wait_ms``) before dispatch;
* :class:`ServingClient` -- synchronous per-request facade;
* :class:`AsyncServingClient` -- asyncio facade (``await predict``,
  ``async for`` result streaming);
* ``ServingPool.map_predict`` -- bulk arrays sharded across workers in
  batch-aligned chunks; ``ServingPool.map_predict_stream`` -- the
  iterator-in/iterator-out variant with bounded parent memory.

Every dispatched forward runs at a fixed, zero-padded batch shape, so
pooled results are bit-identical to single-process
``FrozenModel.predict(x, batch_size, pad_batches=True)`` regardless of
how requests were coalesced, sharded, or re-routed by scaling events.
"""

from repro.serve.aio import AsyncServingClient
from repro.serve.autoscale import PoolAutoscaler
from repro.serve.pool import ServingClient, ServingPool
from repro.serve.queue import MicroBatchQueue, Request

__all__ = [
    "AsyncServingClient",
    "MicroBatchQueue",
    "PoolAutoscaler",
    "Request",
    "ServingClient",
    "ServingPool",
]
