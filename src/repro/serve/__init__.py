"""Elastic multi-tenant serving engine over the frozen quantized runtime.

The frozen engine (:mod:`repro.runtime`) is single-threaded per
process by design; this package is the traffic-facing layer on top of
it:

* :class:`ModelRegistry` / :class:`ModelSpec` -- a named fleet of
  frozen models (checkpoint + dtype + backend + weight-only per
  tenant), validated eagerly in the parent;
* :class:`ServingPool` -- N worker processes serving the whole fleet
  from per-worker byte-budgeted LRU caches of decoded models, fed
  from per-worker private queues; grows/shrinks at runtime via
  ``add_worker()`` / ``retire_worker()``.  Constructed as
  ``ServingPool(registry, PoolConfig(...))`` (the legacy
  single-checkpoint constructor survives one deprecation cycle);
* :class:`PoolAutoscaler` -- policy loop scaling the pool on pool-wide
  *and per-tenant* backlog/latency signals, bounded by min/max
  workers;
* :class:`MicroBatchQueue` -- coalesces single-sample requests into
  micro-batches (``max_batch`` / ``max_wait_ms``) before dispatch;
  one queue per tenant, so tenants never co-batch;
* :class:`ServingClient` / :class:`AsyncServingClient` -- synchronous
  and asyncio per-request facades, both routing ``model=`` through the
  pool's shared resolver; :meth:`ServingPool.model` returns a
  tenant-scoped :class:`ModelHandle`;
* ``ServingPool.map_predict`` -- bulk arrays sharded across workers in
  batch-aligned chunks; ``ServingPool.map_predict_stream`` -- the
  iterator-in/iterator-out variant with bounded parent memory;
* :func:`serve` -- one-call assembly: registry + started pool +
  autoscaler from a single :class:`ServeConfig`.

Every dispatched forward runs at a fixed, zero-padded batch shape, so
each tenant's pooled results are bit-identical to single-process
``FrozenModel.predict(x, batch_size, pad_batches=True)`` regardless of
how requests were coalesced, sharded, interleaved across tenants, or
re-routed by scaling, eviction, and respawn events.
"""

from repro.serve.aio import AsyncServingClient
from repro.serve.autoscale import PoolAutoscaler
from repro.serve.facade import ServeHandle, serve
from repro.serve.pool import ModelHandle, ServingClient, ServingPool
from repro.serve.queue import MicroBatchQueue, Request
from repro.serve.registry import (
    DEFAULT_MODEL,
    AutoscaleConfig,
    ModelRegistry,
    ModelSpec,
    PoolConfig,
    ServeConfig,
)

__all__ = [
    "AsyncServingClient",
    "AutoscaleConfig",
    "DEFAULT_MODEL",
    "MicroBatchQueue",
    "ModelHandle",
    "ModelRegistry",
    "ModelSpec",
    "PoolAutoscaler",
    "PoolConfig",
    "Request",
    "ServeConfig",
    "ServeHandle",
    "ServingClient",
    "ServingPool",
    "serve",
]
