"""Multi-process serving pool over packed frozen checkpoints.

The frozen engine is deliberately single-threaded per process (pooled
scratch buffers), so parallel serving shards *processes*, not threads:
:class:`ServingPool` forks N workers that each ``FrozenModel.load()``
the same packed ``.npz`` checkpoint -- the low-bit payload is decoded
once per worker, and the packed bytes themselves are shared through the
filesystem page cache, so N workers never hold N float64 copies of the
checkpoint on disk or in the page cache.

Three serving paths ride on the pool:

* :meth:`ServingPool.submit` / :meth:`ServingPool.predict` -- one job,
  one worker, synchronous facade;
* :meth:`ServingPool.map_predict` -- a bulk array sharded into
  batch-aligned chunks that all workers pull from a shared queue;
* :class:`ServingClient` -- single-sample requests coalesced by a
  :class:`~repro.serve.queue.MicroBatchQueue` into micro-batches
  before dispatch.

**Determinism.**  Every worker forward runs at a fixed batch shape
(``FrozenModel.predict(..., pad_batches=True)``): short batches are
zero-padded to exactly ``batch_size`` rows.  BLAS kernel selection
depends on the GEMM row count, so a fixed row count makes each
sample's logits a pure function of that sample alone -- which is what
makes pool results bit-identical to a single-process
``frozen.predict(x, batch_size, pad_batches=True)`` no matter how
requests were coalesced, sharded, or interleaved (property-tested in
``tests/test_serve.py``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
import traceback
from concurrent.futures import Future
from typing import List, Optional

import numpy as np

from repro.serve.queue import MicroBatchQueue
from repro.serve.queue import resolve_future as _resolve

#: dispatcher/collector poll period; bounds shutdown latency, not speed.
_POLL_S = 0.05


def _worker_main(
    worker_id: int,
    checkpoint_path: str,
    dtype_name: str,
    batch_size: int,
    weight_only: bool,
    task_queue,
    result_queue,
) -> None:
    """Worker process body: load the checkpoint once, then serve jobs.

    Each job is ``(job_id, samples)``; the reply is
    ``(job_id, logits)`` or ``(job_id, _RemoteError)``.  A ``None``
    task is the shutdown pill.
    """
    from repro.runtime import FrozenModel

    try:
        model = FrozenModel.load(checkpoint_path, weight_only=weight_only)
        model.astype(np.dtype(dtype_name))
        result_queue.put(("ready", worker_id, os.getpid()))
    except BaseException as exc:  # noqa: BLE001 - must reach the parent
        result_queue.put(("ready", worker_id, _RemoteError.wrap(exc)))
        return
    while True:
        task = task_queue.get()
        if task is None:
            return
        job_id, samples = task
        try:
            logits = model.predict(
                samples, batch_size=batch_size, pad_batches=True
            )
            result_queue.put(("done", job_id, logits))
        except BaseException as exc:  # noqa: BLE001 - report, keep serving
            result_queue.put(("done", job_id, _RemoteError.wrap(exc)))


class _RemoteError:
    """A picklable carrier for an exception raised inside a worker."""

    def __init__(self, message: str) -> None:
        self.message = message

    @classmethod
    def wrap(cls, exc: BaseException) -> "_RemoteError":
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return cls(f"{type(exc).__name__}: {exc}\n--- worker traceback ---\n{detail}")

    def raise_(self) -> None:
        raise RuntimeError(f"serving worker failed: {self.message}")


class ServingPool:
    """A pool of worker processes serving one frozen checkpoint.

    Parameters
    ----------
    checkpoint_path:
        Packed ``.npz`` checkpoint written by ``FrozenModel.save``.
        Loaded independently by every worker (decode-once per worker).
    n_workers:
        Worker process count.  Throughput scales with cores; on a
        single-core host the pool preserves single-process throughput
        while adding request coalescing and isolation.
    dtype:
        Serving dtype per worker (``"float32"`` fast path by default).
    batch_size:
        The fixed forward shape.  Also the micro-batch coalescing cap:
        every dispatched forward is padded to exactly this many rows.
    max_wait_ms:
        Micro-batch window (see :class:`MicroBatchQueue`).
    weight_only:
        Serve packed low-bit weights with float activations (skips all
        activation fake-quant, see ``FrozenModel.load``).
    start_method:
        ``multiprocessing`` start method; default ``fork`` where
        available (cheapest on Linux), else the platform default.
        Pass ``"spawn"``/``"forkserver"`` from heavily threaded
        parents -- forking while other threads hold locks can deadlock
        the child below Python (``start_timeout`` bounds the damage).
    start_timeout:
        Seconds :meth:`start` may wait for all workers to finish
        decoding the checkpoint before aborting them and raising;
        ``None`` waits forever.
    """

    def __init__(
        self,
        checkpoint_path,
        n_workers: int = 2,
        dtype: str = "float32",
        batch_size: int = 64,
        max_wait_ms: float = 2.0,
        weight_only: bool = False,
        start_method: Optional[str] = None,
        start_timeout: Optional[float] = 120.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.checkpoint_path = str(checkpoint_path)
        self.n_workers = int(n_workers)
        self.dtype = str(dtype)
        self.batch_size = int(batch_size)
        self.weight_only = bool(weight_only)
        self.start_timeout = start_timeout
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._ctx = mp.get_context(start_method)
        self.micro_queue = MicroBatchQueue(
            max_batch=self.batch_size, max_wait_ms=max_wait_ms
        )
        self._workers: List[mp.Process] = []
        self._tasks = None
        self._results = None
        self._jobs = {}
        self._jobs_lock = threading.Lock()
        self._next_job_id = 0
        self._started = False
        self._closing = False
        self._broken = False
        self._collector: Optional[threading.Thread] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._n_jobs = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingPool":
        """Fork the workers and wait until each has loaded the model."""
        if self._started:
            raise RuntimeError("pool already started")
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    i,
                    self.checkpoint_path,
                    self.dtype,
                    self.batch_size,
                    self.weight_only,
                    self._tasks,
                    self._results,
                ),
                daemon=True,
                name=f"serve-worker-{i}",
            )
            for i in range(self.n_workers)
        ]
        for worker in self._workers:
            worker.start()
        # all workers must decode the checkpoint before traffic flows,
        # so a broken checkpoint fails fast here, not on first predict
        try:
            deadline = (
                None
                if self.start_timeout is None
                else time.monotonic() + self.start_timeout
            )
            ready = 0
            while ready < self.n_workers:
                try:
                    kind, _worker_id, info = self._results.get(timeout=_POLL_S * 4)
                except Exception:  # queue.Empty
                    # a worker killed below Python (OOM, segfault) never
                    # posts "ready"; waiting without a liveness check
                    # would hang start() forever
                    dead = [w.name for w in self._workers if not w.is_alive()]
                    if dead:
                        raise RuntimeError(
                            f"serving worker(s) died during startup: {dead}"
                        )
                    if deadline is not None and time.monotonic() > deadline:
                        # covers hangs the liveness check cannot see,
                        # e.g. a child deadlocked at fork on a lock some
                        # parent thread held (still is_alive)
                        raise RuntimeError(
                            f"serving workers not ready within "
                            f"{self.start_timeout}s"
                        )
                    continue
                assert kind == "ready"
                if isinstance(info, _RemoteError):
                    info.raise_()
                ready += 1
        except BaseException:
            # a failed start must release everything it created --
            # retrying callers would otherwise accumulate worker
            # processes and queue pipe fds/feeder threads
            self._abort_workers()
            self._tasks.cancel_join_thread()
            self._results.cancel_join_thread()
            self._tasks.close()
            self._results.close()
            self._tasks = self._results = None
            self._workers = []
            raise
        self._started = True
        self._collector = threading.Thread(
            target=self._collect_loop, name="serve-collector", daemon=True
        )
        self._collector.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def close(self) -> None:
        """Drain, stop the workers, and fail any undispatched request."""
        if not self._started:
            return
        with self._jobs_lock:
            if self._closing:
                return
            self._closing = True
        self.micro_queue.close()
        if self._dispatcher is not None:
            self._dispatcher.join()
        self.micro_queue.cancel_pending()
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=30)
        self._abort_workers()  # terminate stragglers, if any
        if self._collector is not None:
            self._collector.join()
        with self._jobs_lock:
            for future in self._jobs.values():
                _resolve(future, error=RuntimeError("serving pool closed mid-job"))
            self._jobs.clear()
        # a dead worker can leave unread task payloads in the pipe;
        # without cancel_join_thread the queue's feeder thread would
        # block interpreter exit waiting for a reader that is gone
        self._tasks.cancel_join_thread()
        self._results.cancel_join_thread()
        self._tasks.close()
        self._results.close()

    def _abort_workers(self) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)

    def __enter__(self) -> "ServingPool":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # background threads
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        """Route worker replies to their job futures.

        Also the watchdog for workers killed below Python (OOM,
        segfault): a dead worker takes its claimed task with it, and
        the shared queue gives no job->worker mapping, so every
        outstanding future is failed rather than left hanging forever.
        The pool is then broken -- new submissions raise -- matching
        start()'s fail-fast policy (worker respawn is future work).
        """
        while True:
            try:
                reply = self._results.get(timeout=_POLL_S)
            except Exception:  # queue.Empty
                if self._closing and not self._alive_workers():
                    # final drain: a worker may have replied and exited
                    # between the timeout and the aliveness check
                    self._drain_replies()
                    return
                if not self._closing:
                    dead = [w.name for w in self._workers if not w.is_alive()]
                    if dead:
                        self._drain_replies()  # keep completed results
                        self._broken = True
                        with self._jobs_lock:
                            stranded = list(self._jobs.values())
                            self._jobs.clear()
                        for future in stranded:
                            _resolve(future, error=RuntimeError(
                                f"serving worker(s) died: {dead}"
                            ))
                continue
            self._route_reply(reply)

    def _drain_replies(self) -> None:
        while True:
            try:
                self._route_reply(self._results.get_nowait())
            except Exception:  # queue.Empty
                return

    def _route_reply(self, reply) -> None:
        kind, job_id, payload = reply
        if kind != "done":
            return
        with self._jobs_lock:
            future = self._jobs.pop(job_id, None)
        if future is None:
            return
        if isinstance(payload, _RemoteError):
            _resolve(future, error=RuntimeError(
                f"serving worker failed: {payload.message}"
            ))
        else:
            _resolve(future, value=payload)

    def _alive_workers(self) -> bool:
        return any(worker.is_alive() for worker in self._workers)

    def _dispatch_loop(self) -> None:
        """Drain the micro-batch queue into worker jobs.

        Dispatch failures (heterogeneous request shapes breaking the
        stack, or a close() racing a drained batch past
        ``_submit_array``) fail that batch's futures and keep the
        dispatcher alive -- a dead dispatcher would hang every later
        client instead.
        """
        while True:
            batch = self.micro_queue.next_batch(timeout=_POLL_S)
            if batch is None:
                return  # queue closed and drained
            if not batch:
                continue
            try:
                samples = np.stack([request.payload for request in batch])
                job = self._submit_array(samples)
            except BaseException as exc:  # noqa: BLE001 - fail the batch, not the thread
                for request in batch:
                    _resolve(request.future, error=RuntimeError(
                        f"micro-batch dispatch failed: {exc}"
                    ))
                continue
            job.add_done_callback(self._scatter_to(batch))

    @staticmethod
    def _scatter_to(batch):
        def _scatter(job: Future) -> None:
            error = job.exception()
            for row, request in enumerate(batch):
                if error is not None:
                    _resolve(request.future, error=error)
                else:
                    _resolve(request.future, value=job.result()[row])

        return _scatter

    # ------------------------------------------------------------------
    # serving API
    # ------------------------------------------------------------------
    def _require_serving(self) -> None:
        if not self._started:
            raise RuntimeError(
                "pool not started; call start() or use as a context manager"
            )

    def _submit_array(self, samples: np.ndarray) -> Future:
        self._require_serving()
        future: Future = Future()
        with self._jobs_lock:
            # checked under the lock so a submit racing close() either
            # raises here or registers early enough for close()'s
            # fail-remaining-jobs sweep to see it -- never in between,
            # where its future could hang forever
            if self._closing:
                raise RuntimeError("pool is closed")
            if self._broken:
                raise RuntimeError(
                    "pool is broken (a worker died); create a new pool"
                )
            job_id = self._next_job_id
            self._next_job_id += 1
            self._jobs[job_id] = future
            self._n_jobs += 1
        self._tasks.put((job_id, samples))
        return future

    def submit(self, samples: np.ndarray) -> Future:
        """Asynchronously predict a batch of samples on one worker."""
        samples = np.asarray(samples)
        if samples.shape[0] == 0:
            raise ValueError("submit() needs at least one sample")
        return self._submit_array(samples)

    def predict(self, samples: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous :meth:`submit`."""
        return self.submit(samples).result(timeout=timeout)

    def map_predict(
        self,
        samples: np.ndarray,
        shard_size: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Predict a large array by sharding it across all workers.

        Shards are contiguous runs of whole serving batches (the shard
        size is rounded up to a ``batch_size`` multiple), handed to a
        shared queue the workers pull from -- a slow worker simply
        takes fewer shards.  Results concatenate in input order and are
        bit-identical to the single-process
        ``predict(samples, batch_size, pad_batches=True)``.
        """
        samples = np.asarray(samples)
        n = samples.shape[0]
        if n == 0:
            raise ValueError("map_predict() needs at least one sample")
        if shard_size is None:
            # spread across workers, a few shards each for balancing
            per_worker = max(1, -(-n // (self.n_workers * 2)))
            shard_size = per_worker
        # align shards to whole serving batches so every worker forward
        # sees the exact shapes the single-process reference would
        shard_size = max(
            self.batch_size,
            -(-shard_size // self.batch_size) * self.batch_size,
        )
        futures = [
            self.submit(samples[start: start + shard_size])
            for start in range(0, n, shard_size)
        ]
        return np.concatenate(
            [future.result(timeout=timeout) for future in futures], axis=0
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Pool counters plus micro-batch coalescing statistics."""
        queue_stats = self.micro_queue.stats
        return {
            "workers": self.n_workers,
            "batch_size": self.batch_size,
            "dtype": self.dtype,
            "weight_only": self.weight_only,
            "jobs": self._n_jobs,
            **{f"queue_{k}": v for k, v in queue_stats.items()},
        }


class ServingClient:
    """Synchronous per-request facade over a :class:`ServingPool`.

    ``predict`` enqueues each sample into the pool's micro-batching
    queue, so concurrent clients coalesce into shared forwards; results
    come back per-request.
    """

    def __init__(self, pool: ServingPool) -> None:
        self.pool = pool

    def predict_one(self, sample: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Logits for one sample (a single request on the queue)."""
        self.pool._require_serving()  # no dispatcher -> requests would hang
        return self.pool.micro_queue.submit(np.asarray(sample)).result(timeout)

    def predict(self, samples: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Logits for an array of samples, one request per sample."""
        self.pool._require_serving()  # no dispatcher -> requests would hang
        samples = np.asarray(samples)
        if samples.shape[0] == 0:
            raise ValueError("predict() needs at least one sample")
        futures = [
            self.pool.micro_queue.submit(samples[i])
            for i in range(samples.shape[0])
        ]
        return np.stack([future.result(timeout) for future in futures])
