"""Multi-process, multi-tenant serving pool over packed frozen checkpoints.

The frozen engine is deliberately single-threaded per process (pooled
scratch buffers), so parallel serving shards *processes*, not threads:
:class:`ServingPool` forks N workers that serve a **fleet** of frozen
models -- a :class:`~repro.serve.registry.ModelRegistry` of named
:class:`~repro.serve.registry.ModelSpec`\\ s (checkpoint + dtype +
backend + weight-only, per tenant).  Each worker keeps a byte-budgeted
LRU cache of decoded models: a checkpoint is decoded once per
residency and served from memory until the packed-bytes budget evicts
it for a hotter tenant (the packed payloads are 2.8-85 KiB across the
zoo, so one pool plausibly holds thousands of tenants).  The packed
bytes themselves are shared through the filesystem page cache, so N
workers never hold N float64 copies of a checkpoint on disk.

Four serving paths ride on the pool, each accepting a ``model=``
tenant handle (optional on single-model / defaulted pools):

* :meth:`ServingPool.submit` / :meth:`ServingPool.predict` -- one job,
  one worker, synchronous facade;
* :meth:`ServingPool.map_predict` -- a bulk array sharded into
  batch-aligned chunks that drain across workers;
* :meth:`ServingPool.map_predict_stream` -- iterator in, iterator out:
  shards are fed as workers drain and results yield in order with
  bounded parent memory (at most ``workers x prefetch`` shards
  resident), so datasets larger than RAM serve without parent-side
  blowup;
* :class:`ServingClient` -- single-sample requests coalesced by a
  per-model :class:`~repro.serve.queue.MicroBatchQueue` into
  micro-batches before dispatch
  (:class:`~repro.serve.aio.AsyncServingClient` is the asyncio facade
  over the same machinery).

:meth:`ServingPool.model` returns a :class:`ModelHandle` bound to one
tenant (``pool.model("vgg16").predict(x)``); every entry point routes
through one shared :meth:`ServingPool.resolve_model` helper, so the
sync, async, bulk, and streaming paths cannot disagree about which
tenant a request targets.

**Multi-tenant isolation.**  Every registered model owns a private
micro-batch queue and dispatcher, so tenants never co-batch: a
micro-batch is one tenant's requests only, and the fixed-shape
determinism argument below applies per tenant.  The job header carries
the tenant name from dispatch through worker to collect, and per-model
queue depth / latency feed the autoscaler
(:meth:`stats`'s ``per_model`` key).

**Channel layout.**  Every worker owns a *private* task queue and a
*private* result queue; the parent keeps a backlog and feeds each
worker at most ``prefetch`` jobs at a time (the next job is assigned
when a result returns, so a slow worker simply receives fewer jobs --
the same pull-based balancing a shared queue gives).  Private channels
are what makes worker death recoverable at all: a worker SIGKILLed
while blocked in a *shared* ``Queue.get`` dies holding the queue's
reader lock, which no replacement process can ever acquire.  With
per-worker channels a corpse can only poison its own queues, which are
discarded with it.  The bounded in-flight discipline also gives the
parent an exact job -> worker map, so a death requeues exactly the
in-flight jobs.

**Elasticity.**  Worker slots move through a four-state machine --
``starting`` (forked, still decoding the checkpoint) -> ``active``
(serving) -> ``retiring`` (draining its in-flight jobs, receives no
new ones) -> ``retired`` (pilled, queues closed).  :meth:`add_worker`
appends a fresh slot (spawn a queue pair + fork, the same machinery
respawn uses); :meth:`retire_worker` drains and closes one -- a job is
never lost or duplicated by a scaling event (property-tested under
churn in ``tests/test_serve_elastic.py``).
:class:`~repro.serve.autoscale.PoolAutoscaler` drives both from the
:meth:`stats` snapshot.

**Resilience.**  Workers killed below Python (OOM, segfault) are
detected by the collector watchdog; with ``respawn_workers`` (default)
each is replaced by a fresh fork of the same spec table on fresh
queues, and its in-flight jobs are requeued **once** before failing --
see :meth:`ServingPool._handle_dead_workers`.  Requeued jobs keep
their tenant routing and trace IDs: a respawned worker reloads
whatever models its replacement traffic needs, lazily, through the
same LRU path.  ``max_respawns`` bounds crash-looping.  A *retiring*
worker that dies only requeues its jobs; it is never respawned and
spends no budget.

**Determinism.**  Every worker forward runs at a fixed batch shape
(``FrozenModel.predict(..., pad_batches=True)``): short batches are
zero-padded to exactly ``batch_size`` rows.  BLAS kernel selection
depends on the GEMM row count, so a fixed row count makes each
sample's logits a pure function of that sample alone -- which is what
makes every tenant's pooled results bit-identical to a single-process
``spec.load().predict(x, batch_size, pad_batches=True)`` no matter how
requests were coalesced, sharded, interleaved across tenants,
re-routed by add/retire/respawn events, or how often the LRU evicted
and re-decoded the model in between (property-tested in
``tests/test_serve.py``, ``tests/test_serve_elastic.py``, and
``tests/test_serve_zoo.py``).  Workers serve with any execution
backend (``backend="qgemm"`` runs the code-domain LUT engine,
:mod:`repro.qgemm`); the determinism argument is backend-independent.

**Observability.**  Unless ``REPRO_OBS=0``, the pool stamps the
:mod:`repro.obs` telemetry layer: every job carries a trace ID from
enqueue through dispatch -> worker -> collect, workers time each
forward (split per fused region / executed kernel family) and ship
their metrics-registry snapshots back on the reply tuples, and the
parent assembles per-request timelines (queue wait, batch assembly,
compute, transit) in :attr:`trace_buffer`.  Per-tenant series carry a
``model=`` label (``serve.job_latency_seconds{model=...}``, the
``serve.model_cache_*`` LRU meters); the unlabeled pool-wide series
keep their PR 9 meanings.  :meth:`metrics` returns the merged
parent+worker registry as a JSON-able digest, :meth:`metrics_text` as
Prometheus text, :meth:`trace_events` the chrome://tracing events
(export with :func:`repro.obs.write_jsonl`).  See the README
"Observability" section for the metric names.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
import traceback
import warnings
from multiprocessing import connection as mp_connection
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro import obs
from repro.runtime.engine import iter_chunks
from repro.serve.queue import MicroBatchQueue
from repro.serve.queue import resolve_future as _resolve
from repro.serve.registry import (
    DEFAULT_MODEL,
    ModelRegistry,
    ModelSpec,
    PoolConfig,
)

#: dispatcher/collector poll period; bounds shutdown latency, not speed.
_POLL_S = 0.05

#: EWMA smoothing factor for per-worker/pool service-time estimates.
_EWMA_ALPHA = 0.3

#: micro-batch fill histogram buckets (samples per dispatched batch).
_FILL_BUCKETS = tuple(float(2 ** i) for i in range(11))

#: worker slot lifecycle states (see the module docstring).
_STARTING, _ACTIVE, _RETIRING, _RETIRED = (
    "starting", "active", "retiring", "retired"
)


class _ModelCache:
    """Per-worker LRU of decoded :class:`FrozenModel`\\ s.

    Decode-once semantics hold per *residency*: a tenant's checkpoint
    is decoded when first touched (or re-touched after eviction) and
    then serves from memory.  The budget counts the **packed on-disk
    bytes** of resident checkpoints -- the low-bit payload is the
    stable, dtype-independent measure of a tenant's footprint, and it
    is known without instrumenting the decoded object graph.  Eviction
    is strict LRU and never evicts the entry being admitted, so a
    single spec larger than the whole budget still serves (the cache
    degrades to hold-one, not to failure).

    With telemetry on, loads/hits/evictions count per tenant
    (``serve.model_cache_{loads,hits,evictions}_total{model=...}``),
    decode time lands in ``serve.model_load_seconds{model=...}``, and
    the ``serve.model_cache_resident[_bytes]`` gauges track occupancy
    -- all shipped to the parent on the reply-tuple snapshots like
    every other worker metric.
    """

    def __init__(
        self,
        specs: Dict[str, ModelSpec],
        budget_bytes: Optional[int],
        registry,
    ) -> None:
        self._specs = specs
        self._budget = budget_bytes
        self._registry = registry
        #: name -> (model, packed_bytes, region_timing), LRU order.
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()
        self._resident_bytes = 0

    def get(self, name: str):
        """The decoded model (+ region timer) for ``name``, loading
        and evicting as needed.  Raises ``KeyError`` for a tenant not
        in this worker's spec table."""
        entry = self._entries.get(name)
        if entry is not None:
            self._entries.move_to_end(name)
            if self._registry is not None:
                self._registry.counter(
                    "serve.model_cache_hits_total", model=name
                ).inc()
            return entry[0], entry[2]
        spec = self._specs.get(name)
        if spec is None:
            raise KeyError(
                f"model {name!r} is not registered with this worker; "
                f"registered: {sorted(self._specs)}"
            )
        t0 = time.perf_counter() if self._registry is not None else 0.0
        model = spec.load()
        packed = os.path.getsize(spec.checkpoint_path)
        timing = (
            model.start_region_timing() if self._registry is not None else None
        )
        self._entries[name] = (model, packed, timing)
        self._resident_bytes += packed
        if self._registry is not None:
            self._registry.counter(
                "serve.model_cache_loads_total", model=name
            ).inc()
            self._registry.histogram(
                "serve.model_load_seconds", model=name
            ).observe(time.perf_counter() - t0)
        self._evict()
        if self._registry is not None:
            self._registry.gauge("serve.model_cache_resident").set(
                float(len(self._entries))
            )
            self._registry.gauge("serve.model_cache_resident_bytes").set(
                float(self._resident_bytes)
            )
        return model, timing

    def _evict(self) -> None:
        if self._budget is None:
            return
        # the just-admitted entry sits at the MRU end, so with >1
        # resident the LRU victim is never the model about to serve
        while self._resident_bytes > self._budget and len(self._entries) > 1:
            victim, (_model, packed, _timing) = next(iter(self._entries.items()))
            del self._entries[victim]
            self._resident_bytes -= packed
            if self._registry is not None:
                self._registry.counter(
                    "serve.model_cache_evictions_total", model=victim
                ).inc()


def _worker_main(
    worker_id: int,
    specs: Dict[str, ModelSpec],
    preload: str,
    batch_size: int,
    cache_budget_bytes: Optional[int],
    task_queue,
    result_queue,
) -> None:
    """Worker process body: serve jobs against an LRU of loaded models.

    Each job is ``(job_id, model, samples[, trace_id])``; the reply is
    ``("done", worker_id, job_id, logits-or-_RemoteError[, obs])``.  A
    ``None`` task is the shutdown pill.  The ``preload`` model is
    decoded *before* posting ready, preserving the single-model
    fail-fast start contract (a broken default checkpoint breaks
    ``start()``, not the first request); every other tenant decodes
    lazily on first touch, and a broken tenant checkpoint fails that
    tenant's jobs without taking the worker down.  With telemetry
    enabled the trailing ``obs`` dict carries the forward's wall
    seconds, its tenant, its per-region split, and the worker's full
    metrics-registry snapshot -- shipping the registry on the existing
    result pipe is what lets the parent merge cross-process metrics
    without any side channel.
    """
    registry = obs.reset_registry() if obs.enabled() else None
    cache = _ModelCache(specs, cache_budget_bytes, registry)
    try:
        cache.get(preload)
        result_queue.put(("ready", worker_id, os.getpid()))
    except BaseException as exc:  # noqa: BLE001 - must reach the parent
        result_queue.put(("ready", worker_id, _RemoteError.wrap(exc)))
        return
    forward_hist = (
        None if registry is None else registry.histogram("runtime.forward_seconds")
    )
    while True:
        task = task_queue.get()
        if task is None:
            return
        job_id, model_name, samples = task[0], task[1], task[2]
        try:
            model, timing = cache.get(model_name)
            if registry is None:
                logits = model.predict(
                    samples, batch_size=batch_size, pad_batches=True
                )
                result_queue.put(("done", worker_id, job_id, logits))
                continue
            t0 = time.perf_counter()
            logits = model.predict(
                samples, batch_size=batch_size, pad_batches=True
            )
            compute_s = time.perf_counter() - t0
            forward_hist.observe(compute_s)
            registry.histogram(
                "runtime.forward_seconds", model=model_name
            ).observe(compute_s)
            regions = timing.read() if timing is not None else []
            for op in regions:
                registry.histogram(
                    "runtime.region_seconds", kind=op["kind"]
                ).observe(op["seconds"])
            result_queue.put(("done", worker_id, job_id, logits, {
                "compute_s": compute_s,
                "model": model_name,
                "regions": [
                    (op["label"], op["kind"], op["seconds"]) for op in regions
                ],
                "metrics": registry.snapshot(),
            }))
        except BaseException as exc:  # noqa: BLE001 - report, keep serving
            result_queue.put(("done", worker_id, job_id, _RemoteError.wrap(exc)))


class _RemoteError:
    """A picklable carrier for an exception raised inside a worker."""

    def __init__(self, message: str) -> None:
        self.message = message

    @classmethod
    def wrap(cls, exc: BaseException) -> "_RemoteError":
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return cls(f"{type(exc).__name__}: {exc}\n--- worker traceback ---\n{detail}")

    def raise_(self) -> None:
        raise RuntimeError(f"serving worker failed: {self.message}")


class _ServiceStat:
    """Per-slot (or per-tenant) service-time tracker.

    The EWMA is scheduler state (``stats()``/autoscaler input, kept
    even with telemetry off); with telemetry on each sample also lands
    in a ``serve.service_seconds`` registry histogram, which is where
    percentiles and Prometheus exposition come from.
    """

    __slots__ = ("ewma", "hist")

    def __init__(self, hist=None) -> None:
        self.ewma: Optional[float] = None
        self.hist = hist

    def note(self, seconds: float) -> None:
        self.ewma = (
            seconds
            if self.ewma is None
            else (1.0 - _EWMA_ALPHA) * self.ewma + _EWMA_ALPHA * seconds
        )
        if self.hist is not None:
            self.hist.observe(seconds)


_DEPRECATION_MSG = (
    "ServingPool(checkpoint_path, ...) is deprecated; build a "
    "ModelRegistry + PoolConfig (or call repro.serve.serve()) instead: "
    "ServingPool(ModelRegistry({'default': ModelSpec(path, ...)}), "
    "PoolConfig(...)).  The legacy form keeps working for one "
    "deprecation cycle (see CONTRIBUTING.md)."
)

#: legacy per-model kwargs that moved from ServingPool.__init__ onto
#: ModelSpec; the shim splits them out of the PoolConfig fields.
_LEGACY_SPEC_KWARGS = ("dtype", "weight_only", "backend")


class ServingPool:
    """An elastic pool of worker processes serving a fleet of models.

    Parameters
    ----------
    source:
        A :class:`~repro.serve.registry.ModelRegistry` naming the
        fleet.  (A checkpoint path is also accepted for one deprecation
        cycle: the legacy ``ServingPool(path, n_workers=..., dtype=...)``
        form builds a one-model registry named ``"default"`` and emits
        a ``DeprecationWarning``.)
    config:
        A :class:`~repro.serve.registry.PoolConfig`; defaults apply
        when omitted.  All per-model knobs (dtype, backend,
        weight_only) live on each model's
        :class:`~repro.serve.registry.ModelSpec` instead.

    The registry is frozen by construction: workers fork with a
    snapshot of the spec table, so the routing table and the fleet can
    never disagree.  ``batch_size`` is both the fixed forward shape
    (every dispatched forward is zero-padded to exactly this many rows)
    and the per-tenant micro-batch coalescing cap; ``prefetch`` is the
    jobs kept in flight per worker; ``cache_budget_bytes`` bounds each
    worker's decoded-model LRU by packed checkpoint bytes (``None`` =
    every touched model stays resident).  See
    :class:`~repro.serve.registry.PoolConfig` for the full field
    reference and the module docstring for lifecycle, resilience, and
    determinism semantics.
    """

    def __init__(
        self,
        source: Union[ModelRegistry, str, "os.PathLike[str]"],
        config: Optional[PoolConfig] = None,
        **legacy_kwargs,
    ) -> None:
        if isinstance(source, ModelRegistry):
            if legacy_kwargs:
                raise TypeError(
                    "registry-based pools are configured via PoolConfig; "
                    f"unexpected keyword(s): {sorted(legacy_kwargs)}"
                )
            if config is None:
                config = PoolConfig()
            elif not isinstance(config, PoolConfig):
                raise TypeError(
                    f"config must be a PoolConfig, got {type(config).__name__}"
                )
            if len(source) == 0:
                raise ValueError("registry has no models")
            registry = source
        else:
            # the deprecated single-checkpoint constructor: same call
            # sites, same semantics, one DeprecationWarning
            warnings.warn(_DEPRECATION_MSG, DeprecationWarning, stacklevel=2)
            if config is not None:
                # legacy signature's second positional was n_workers
                legacy_kwargs.setdefault("n_workers", config)
            spec = ModelSpec(
                checkpoint_path=source,
                **{
                    key: legacy_kwargs.pop(key)
                    for key in _LEGACY_SPEC_KWARGS
                    if key in legacy_kwargs
                },
            )
            registry = ModelRegistry({DEFAULT_MODEL: spec})
            config = PoolConfig(**legacy_kwargs)
        self.registry = registry.freeze()
        self.config = config
        #: picklable spec-table snapshot every worker forks with.
        self._specs: Dict[str, ModelSpec] = registry.specs()
        self._model_names: List[str] = list(registry.names())
        self._default_model: Optional[str] = registry.default_model
        #: model decoded before a worker posts ready (fail-fast start).
        self._preload: str = self._default_model or self._model_names[0]
        self.n_workers = config.n_workers
        self.batch_size = config.batch_size
        self.prefetch = config.prefetch
        self.respawn_workers = config.respawn_workers
        self.max_respawns = (
            2 * self.n_workers
            if config.max_respawns is None
            else config.max_respawns
        )
        self.start_timeout = config.start_timeout
        self.cache_budget_bytes = config.cache_budget_bytes
        self._n_respawns = 0
        self._n_retired = 0
        start_method = config.start_method
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._ctx = mp.get_context(start_method)
        #: one coalescing queue per tenant: tenants never co-batch.
        self._micro_queues: Dict[str, MicroBatchQueue] = {
            name: MicroBatchQueue(
                max_batch=self.batch_size, max_wait_ms=config.max_wait_ms
            )
            for name in self._model_names
        }
        self._workers: List[mp.Process] = []
        self._task_queues: List = []
        self._result_queues: List = []
        #: per-slot lifecycle state (see module docstring); under _jobs_lock.
        self._slot_state: List[str] = []
        #: job_id -> (future, model, samples, retries_left, meta);
        #: under _jobs_lock.
        self._jobs = {}
        #: undispatched (job_id, model, samples), oldest first; under
        #: _jobs_lock.
        self._backlog: deque = deque()
        #: worker slot -> deque of in-flight job_ids; under _jobs_lock.
        self._inflight: List[deque] = []
        #: job_id -> monotonic dispatch time (service-time source);
        #: under _jobs_lock.
        self._dispatch_t: Dict[int, float] = {}
        #: parent-side telemetry: counters/histograms + trace events.
        #: Worker-process registries merge in via :meth:`metrics`.
        self.metrics_registry = obs.MetricsRegistry()
        self.trace_buffer = obs.TraceBuffer()
        #: per-slot service-time trackers (EWMA + registry histogram);
        #: under _jobs_lock.
        self._service: List[_ServiceStat] = []
        #: pool-wide service-time tracker; under _jobs_lock.
        self._service_pool = self._service_stat()
        #: per-tenant service-time trackers (autoscaler input);
        #: under _jobs_lock.
        self._service_model: Dict[str, _ServiceStat] = {
            name: self._service_stat(model=name) for name in self._model_names
        }
        #: latest registry snapshot per live worker slot; under _jobs_lock.
        self._worker_metrics: Dict[int, dict] = {}
        #: folded snapshots of dead/retired worker incarnations.
        self._worker_metrics_base: dict = {}
        #: spawned-worker readiness deadlines (slot -> monotonic deadline).
        self._await_ready = {}
        self._jobs_lock = threading.Lock()
        self._next_job_id = 0
        self._started = False
        self._closing = False
        self._broken = False
        #: most recent worker-side failure detail (load error traceback,
        #: respawn fork failure); folded into break reasons so an
        #: operator sees the root cause, not just "budget exhausted".
        self._last_worker_error: Optional[str] = None
        self._collector: Optional[threading.Thread] = None
        self._dispatchers: List[threading.Thread] = []
        self._n_jobs = 0

    def _service_stat(
        self, worker_id: Optional[int] = None, model: Optional[str] = None
    ) -> _ServiceStat:
        """An EWMA tracker, histogram-backed when telemetry is on."""
        if not obs.enabled():
            return _ServiceStat()
        labels = {}
        if worker_id is not None:
            labels["worker"] = str(worker_id)
        if model is not None:
            labels["model"] = model
        return _ServiceStat(
            self.metrics_registry.histogram("serve.service_seconds", **labels)
        )

    # ------------------------------------------------------------------
    # tenant resolution (the one shared helper every entry point uses)
    # ------------------------------------------------------------------
    def resolve_model(self, model: Optional[Union[str, "ModelHandle"]] = None) -> str:
        """Resolve a ``model=`` argument to a registered tenant name.

        ``None`` resolves to the registry's default (the explicit
        default, or the sole registered model) -- so single-model pools
        behave exactly as before when the argument is omitted.  A
        :class:`ModelHandle` resolves to its bound name.  Every serving
        entry point (``submit``/``predict``/``map_predict``/streams,
        both client facades, ``pool.model()``) funnels through here, so
        the sync and async surfaces cannot diverge on routing.
        """
        if isinstance(model, ModelHandle):
            model = model.name
        if model is None:
            if self._default_model is None:
                raise ValueError(
                    f"pool serves {len(self._model_names)} models with no "
                    f"default; pass model= (one of {self._model_names})"
                )
            return self._default_model
        if model not in self._specs:
            raise KeyError(
                f"model {model!r} is not registered; "
                f"registered: {self._model_names}"
            )
        return model

    def model(self, name: Optional[str] = None) -> "ModelHandle":
        """A :class:`ModelHandle` scoped to one tenant
        (``pool.model("vgg16").predict(x)``); ``None`` binds the
        default model."""
        return ModelHandle(self, name)

    @property
    def micro_queue(self) -> MicroBatchQueue:
        """The default tenant's coalescing queue (legacy surface; a
        multi-model pool without a default has no single queue --
        use ``pool.model(name)`` or the client facades)."""
        return self._micro_queues[self.resolve_model(None)]

    def _spec_of(self, model: Optional[str] = None) -> ModelSpec:
        return self._specs[self.resolve_model(model)]

    # legacy single-model attributes, now views over the default spec --
    # existing call sites (stats consumers, tests) read them unchanged
    @property
    def checkpoint_path(self) -> str:
        return self._spec_of().checkpoint_path

    @property
    def dtype(self) -> str:
        return self._spec_of().dtype

    @property
    def weight_only(self) -> bool:
        return self._spec_of().weight_only

    @property
    def backend(self) -> str:
        return self._spec_of().backend

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingPool":
        """Fork the workers and wait until each has loaded the preload
        model (the default tenant; other tenants decode lazily)."""
        if self._started:
            raise RuntimeError("pool already started")
        self._task_queues = [self._ctx.Queue() for _ in range(self.n_workers)]
        self._result_queues = [self._ctx.Queue() for _ in range(self.n_workers)]
        self._inflight = [deque() for _ in range(self.n_workers)]
        self._slot_state = [_STARTING] * self.n_workers
        self._service = [self._service_stat(i) for i in range(self.n_workers)]
        self._workers = [self._spawn(i) for i in range(self.n_workers)]
        for worker in self._workers:
            worker.start()
        # all workers must decode the preload model before traffic
        # flows, so a broken default checkpoint fails fast here, not on
        # first predict
        try:
            deadline = (
                None
                if self.start_timeout is None
                else time.monotonic() + self.start_timeout
            )
            pending = set(range(self.n_workers))
            while pending:
                got_any = False
                for i in list(pending):
                    try:
                        kind, _worker_id, info = self._result_queues[i].get_nowait()
                    except Exception:  # queue.Empty
                        continue
                    got_any = True
                    assert kind == "ready"
                    if isinstance(info, _RemoteError):
                        info.raise_()
                    pending.discard(i)
                if got_any:
                    continue
                # a worker killed below Python (OOM, segfault) never
                # posts "ready"; waiting without a liveness check
                # would hang start() forever
                dead = [w.name for w in self._workers if not w.is_alive()]
                if dead:
                    raise RuntimeError(
                        f"serving worker(s) died during startup: {dead}"
                    )
                if deadline is not None and time.monotonic() > deadline:
                    # covers hangs the liveness check cannot see,
                    # e.g. a child deadlocked at fork on a lock some
                    # parent thread held (still is_alive)
                    raise RuntimeError(
                        f"serving workers not ready within "
                        f"{self.start_timeout}s"
                    )
                time.sleep(_POLL_S)
        except BaseException:
            # a failed start must release everything it created --
            # retrying callers would otherwise accumulate worker
            # processes and queue pipe fds/feeder threads
            self._abort_workers()
            self._discard_queues(self._task_queues + self._result_queues)
            self._task_queues = []
            self._result_queues = []
            self._workers = []
            self._slot_state = []
            self._inflight = []
            self._service = []
            raise
        self._slot_state = [_ACTIVE] * self.n_workers
        self._started = True
        self._collector = threading.Thread(
            target=self._collect_loop, name="serve-collector", daemon=True
        )
        self._collector.start()
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(name, queue),
                name=f"serve-dispatch-{name}",
                daemon=True,
            )
            for name, queue in self._micro_queues.items()
        ]
        for dispatcher in self._dispatchers:
            dispatcher.start()
        return self

    def close(self) -> None:
        """Drain, stop the workers, and fail any undispatched request."""
        if not self._started:
            return
        with self._jobs_lock:
            if self._closing:
                return
            self._closing = True
        for queue in self._micro_queues.values():
            queue.close()
        for dispatcher in self._dispatchers:
            dispatcher.join()
        for queue in self._micro_queues.values():
            queue.cancel_pending()
        for task_queue in self._task_queues:
            if task_queue is not None:
                try:
                    task_queue.put(None)
                except (ValueError, OSError):
                    pass  # a retirement finalized and closed it mid-sweep
        for worker in self._workers:
            worker.join(timeout=30)
        self._abort_workers()  # terminate stragglers, if any
        if self._collector is not None:
            self._collector.join()
        with self._jobs_lock:
            self._backlog.clear()
            for job in self._jobs.values():
                _resolve(job[0], error=RuntimeError("serving pool closed mid-job"))
            self._jobs.clear()
        self._discard_queues(
            [q for q in self._task_queues + self._result_queues if q is not None]
        )

    @staticmethod
    def _discard_queues(queues) -> None:
        # a dead worker can leave unread task payloads in a pipe;
        # without cancel_join_thread the queue's feeder thread would
        # block interpreter exit waiting for a reader that is gone
        for q in queues:
            q.cancel_join_thread()
            q.close()

    def _spawn(self, worker_id: int) -> mp.Process:
        """Create (not start) one worker bound to its private queues."""
        return self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._specs,
                self._preload,
                self.batch_size,
                self.cache_budget_bytes,
                self._task_queues[worker_id],
                self._result_queues[worker_id],
            ),
            daemon=True,
            name=f"serve-worker-{worker_id}",
        )

    def _abort_workers(self) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)

    def __enter__(self) -> "ServingPool":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # elasticity: grow / shrink
    # ------------------------------------------------------------------
    @property
    def is_serving(self) -> bool:
        """True while the pool accepts traffic (started, not closing,
        not broken).  The autoscaler uses this to tell a terminal pool
        state from a transient scaling race."""
        return self._started and not self._closing and not self._broken

    def active_workers(self) -> int:
        """Workers currently accepting traffic (``starting`` included:
        a loading worker will serve the moment it posts ready)."""
        with self._jobs_lock:
            return sum(
                state in (_STARTING, _ACTIVE) for state in self._slot_state
            )

    def add_worker(self) -> int:
        """Grow the pool by one worker; returns the new slot id.

        The new worker gets a fresh private queue pair and forks from
        the same spec table (the exact machinery crash-respawn uses).
        It starts in the ``starting`` state -- no jobs are dispatched to
        it until it posts ready, so a slow checkpoint decode never
        strands traffic that another worker could serve -- and it is
        subject to the same ``start_timeout`` readiness deadline as
        :meth:`start` (a hung fork is terminated and swept like a dead
        worker).
        """
        self._require_serving()
        with self._jobs_lock:
            if self._closing:
                raise RuntimeError("pool is closed")
            if self._broken:
                raise RuntimeError(
                    "pool is broken (a worker died); create a new pool"
                )
            worker_id = len(self._workers)
            # append order matters: the collector thread reads these
            # lists lock-free indexed off _result_queues/_workers, so
            # every structure it indexes *into* must be extended before
            # the list it enumerates grows
            self._inflight.append(deque())
            self._service.append(self._service_stat(worker_id))
            self._slot_state.append(_STARTING)
            self._task_queues.append(self._ctx.Queue())
            self._result_queues.append(self._ctx.Queue())
            worker = self._spawn(worker_id)
            worker.start()  # started before publishing: the lock-free
            # dead-worker sweep reads is_alive(), and an appended but
            # not-yet-started process would read as a corpse and burn a
            # spurious respawn on a healthy slot
            self._workers.append(worker)
            if self.start_timeout is not None:
                self._await_ready[worker_id] = (
                    time.monotonic() + self.start_timeout
                )
        return worker_id

    def retire_worker(self, worker_id: Optional[int] = None) -> int:
        """Shrink the pool by one worker; returns the retired slot id.

        The slot stops receiving new jobs immediately.  If it has jobs
        in flight they drain first (retirement completes when its last
        result routes); an idle slot is pilled at once.  Either way no
        job is ever lost or duplicated by retirement -- and should the
        retiring worker die mid-drain, its in-flight jobs are requeued
        to the survivors exactly like a crash (without spending respawn
        budget).

        ``worker_id`` picks the victim slot explicitly; by default an
        idle worker is preferred (newest first), else the least-loaded
        one.  The last remaining worker cannot be retired.
        """
        self._require_serving()
        finalize = False
        with self._jobs_lock:
            if self._closing:
                raise RuntimeError("pool is closed")
            candidates = [
                i
                for i, state in enumerate(self._slot_state)
                if state in (_STARTING, _ACTIVE)
            ]
            if len(candidates) <= 1:
                raise RuntimeError("cannot retire the last worker")
            if worker_id is None:
                idle = [i for i in candidates if not self._inflight[i]]
                if idle:
                    worker_id = idle[-1]
                else:
                    worker_id = min(
                        candidates, key=lambda i: (len(self._inflight[i]), -i)
                    )
            elif worker_id not in candidates:
                raise ValueError(
                    f"slot {worker_id} is not an active worker"
                )
            self._slot_state[worker_id] = _RETIRING
            finalize = not self._inflight[worker_id]
        if finalize:
            self._finalize_retire(worker_id)
        return worker_id

    def _finalize_retire(self, worker_id: int) -> None:
        """Pill a drained retiring worker and reap its queue pair.

        Idempotent: the retiring -> retired transition happens exactly
        once under the lock.  May run from the collector (last in-flight
        result routed), from :meth:`retire_worker` (idle victim), or
        from the dead-worker sweep; the join is short -- a drained
        worker is blocked in ``task_queue.get`` and exits on the pill.
        A worker still decoding the checkpoint (retired while
        ``starting``) exits once it reads the pill after loading; its
        queues are then reaped by :meth:`close`.
        """
        with self._jobs_lock:
            if self._slot_state[worker_id] != _RETIRING:
                return
            self._slot_state[worker_id] = _RETIRED
            self._n_retired += 1
            if obs.enabled():
                self.metrics_registry.counter("serve.retired_total").inc()
            folded = self._worker_metrics.pop(worker_id, None)
            if folded is not None:
                self._worker_metrics_base = obs.merge_snapshots(
                    self._worker_metrics_base, folded
                )
            self._await_ready.pop(worker_id, None)
            task_queue = self._task_queues[worker_id]
        if task_queue is not None:
            try:
                task_queue.put(None)
            except (ValueError, OSError):
                pass  # close() discarded it first; the worker is going away
        worker = self._workers[worker_id]
        worker.join(timeout=2)
        if not worker.is_alive():
            with self._jobs_lock:
                stale = [
                    self._task_queues[worker_id],
                    self._result_queues[worker_id],
                ]
                self._task_queues[worker_id] = None
                self._result_queues[worker_id] = None
            self._discard_queues([q for q in stale if q is not None])

    # ------------------------------------------------------------------
    # parent-side scheduling
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Feed every active worker up to ``prefetch`` backlog jobs,
        round-robin oldest-first (balancing stays pull-based, and the
        parent always knows exactly which jobs die with which worker).
        Jobs whose futures were cancelled before dispatch are dropped
        here -- cancelled work never reaches a worker."""
        with self._jobs_lock:
            if self._closing or self._broken:
                return
            while self._backlog:
                assigned = False
                for i in range(len(self._workers)):
                    if not self._backlog:
                        break
                    if self._slot_state[i] != _ACTIVE:
                        continue
                    if len(self._inflight[i]) >= self.prefetch:
                        continue
                    job_id, model, samples = self._backlog.popleft()
                    job = self._jobs.get(job_id)
                    if job is None or job[0].cancelled():
                        # an AsyncServingClient await cancelled before
                        # dispatch: drop the job instead of computing a
                        # result nobody can receive
                        self._jobs.pop(job_id, None)
                        if obs.enabled():
                            self.metrics_registry.counter(
                                "serve.cancelled_drops_total"
                            ).inc()
                        assigned = True
                        continue
                    self._inflight[i].append(job_id)
                    now = time.monotonic()
                    self._dispatch_t[job_id] = now
                    meta = job[4]
                    if meta is not None:
                        wait = now - meta[1]
                        self.metrics_registry.counter(
                            "serve.dispatch_total"
                        ).inc()
                        self.metrics_registry.histogram(
                            "serve.queue_wait_seconds"
                        ).observe(wait)
                        self.trace_buffer.add(
                            "queue-wait", meta[2], wait,
                            cat="serve", trace_id=meta[0],
                            job=job_id, worker=i, model=model,
                        )
                    self._task_queues[i].put(
                        (job_id, model, samples, None if meta is None else meta[0])
                    )
                    assigned = True
                if not assigned:
                    return

    # ------------------------------------------------------------------
    # background threads
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        """Route worker replies to their job futures.

        Also the watchdog for workers killed below Python (OOM,
        segfault): see :meth:`_handle_dead_workers`.
        """
        while True:
            if not self._drain_replies():
                if self._closing and not self._alive_workers():
                    # final drain: a worker may have replied and exited
                    # between the drain and the aliveness check
                    self._drain_replies()
                    return
                if not self._closing:
                    # a spawned worker past its readiness deadline is
                    # treated as dead (terminate first, so the sweep
                    # below sees it and spends another respawn/retry)
                    now = time.monotonic()
                    for i in list(self._await_ready):
                        if now > self._await_ready.get(i, now):
                            self._await_ready.pop(i, None)
                            if self._workers[i].is_alive():
                                self._workers[i].terminate()
                                self._workers[i].join(timeout=5)
                    dead = [
                        i
                        for i, w in enumerate(self._workers)
                        if self._slot_state[i] != _RETIRED and not w.is_alive()
                    ]
                    if dead:
                        self._drain_replies()  # keep completed results
                        self._handle_dead_workers(dead)
                # block on every live result pipe at once: a reply wakes
                # the collector immediately (the bounded-in-flight
                # scheduler dispatches the next job from _route_reply,
                # so reply latency is dispatch latency), _POLL_S only
                # bounds the dead-worker/shutdown checks.  Retired
                # slots are excluded: their closed write ends would
                # read as permanently ready and spin the loop.
                readers = [
                    q._reader
                    for i, q in enumerate(self._result_queues)
                    if q is not None and self._slot_state[i] != _RETIRED
                ]
                try:
                    if readers:
                        mp_connection.wait(readers, timeout=_POLL_S)
                    else:
                        time.sleep(_POLL_S)
                except OSError:
                    time.sleep(_POLL_S)  # a pipe died mid-wait; rescan

    def _handle_dead_workers(self, dead: List[int]) -> None:
        """Recover (or break) after worker deaths.

        A dead *retiring* worker just completes its retirement: its
        in-flight jobs are requeued (each once) and its slot closes --
        no respawn, no budget spent.  For the rest, with respawn
        enabled and budget left, each dead worker is replaced by a
        fresh fork on **fresh queues** (its old queues may hold locks
        the corpse died with), and its in-flight jobs -- the parent
        knows them exactly, tenant routing and trace IDs included --
        are requeued at the head of the backlog, once each: a
        retries-exhausted job fails its future instead.  Otherwise the
        pool is broken: every outstanding job fails, matching start()'s
        fail-fast policy.
        """
        names = [self._workers[i].name for i in dead]
        respawn_exc: Optional[str] = None
        with self._jobs_lock:
            if self._closing:
                # close() owns shutdown: it set _closing under this
                # lock, so either it sees our finished respawn (and
                # pills the fresh queues) or we bail here and it fails
                # the outstanding jobs -- never a replaced queue whose
                # pill went to the discarded one
                return
            retiring = [i for i in dead if self._slot_state[i] == _RETIRING]
            crashed = [i for i in dead if self._slot_state[i] != _RETIRING]
            can_respawn = (
                self.respawn_workers
                and self._n_respawns + len(crashed) <= self.max_respawns
            )
            for i in dead:
                # a dead incarnation ships no more snapshots; fold its
                # last one into the base so its counts survive the swap
                folded = self._worker_metrics.pop(i, None)
                if folded is not None:
                    self._worker_metrics_base = obs.merge_snapshots(
                        self._worker_metrics_base, folded
                    )
                # a graceful retirement death can still requeue (other
                # workers survive by the retire-last-worker guard)
                recoverable = can_respawn or i in retiring
                for job_id in list(self._inflight[i]):
                    self._dispatch_t.pop(job_id, None)
                    if job_id not in self._jobs:
                        continue
                    future, model, samples, retries, meta = self._jobs[job_id]
                    if recoverable and retries > 0:
                        self._jobs[job_id] = (
                            future, model, samples, retries - 1, meta
                        )
                        self._backlog.appendleft((job_id, model, samples))
                        if meta is not None:
                            self.metrics_registry.counter(
                                "serve.requeues_total"
                            ).inc()
                            self.trace_buffer.add(
                                "requeue", time.time(), 0.0,
                                cat="serve", trace_id=meta[0],
                                job=job_id, worker=i, model=model,
                            )
                    else:
                        del self._jobs[job_id]
                        _resolve(future, error=RuntimeError(
                            f"serving worker(s) died running this job: {names}"
                            + (" (retry exhausted)" if recoverable else "")
                        ))
                self._inflight[i].clear()
            for i in retiring:
                self._slot_state[i] = _RETIRED
                self._n_retired += 1
                if obs.enabled():
                    self.metrics_registry.counter("serve.retired_total").inc()
                self._await_ready.pop(i, None)
                stale = [self._task_queues[i], self._result_queues[i]]
                self._task_queues[i] = None
                self._result_queues[i] = None
                self._discard_queues([q for q in stale if q is not None])
            if crashed and can_respawn:
                # swap queues under the lock: _pump readers must never
                # see a discarded queue next to a cleared inflight slot
                try:
                    for i in crashed:
                        self._discard_queues([
                            q
                            for q in (self._task_queues[i], self._result_queues[i])
                            if q is not None
                        ])
                        self._task_queues[i] = self._ctx.Queue()
                        self._result_queues[i] = self._ctx.Queue()
                        self._slot_state[i] = _STARTING
                        replacement = self._spawn(i)
                        replacement.start()  # started before publishing:
                        self._workers[i] = replacement  # a test may kill it
                        self._n_respawns += 1
                        if obs.enabled():
                            self.metrics_registry.counter(
                                "serve.respawns_total"
                            ).inc()
                        if self.start_timeout is not None:
                            # same hung-child guard start() has: a
                            # replacement that deadlocks at fork or
                            # stalls loading never posts "ready" while
                            # staying is_alive -- without a deadline it
                            # would strand the requeued job forever
                            self._await_ready[i] = (
                                time.monotonic() + self.start_timeout
                            )
                except BaseException as exc:  # noqa: BLE001 - cannot fork: break
                    can_respawn = False
                    respawn_exc = f"respawn failed: {exc!r}"
        if not crashed or can_respawn:
            self._pump()
            return
        self._broken = True
        with self._jobs_lock:
            stranded = [job[0] for job in self._jobs.values()]
            self._jobs.clear()
            self._backlog.clear()
        # name the real cause: a failed fork, an exhausted budget with
        # the last worker-side load error, or plain fail-fast mode
        detail = ""
        if respawn_exc is not None:
            detail = f" ({respawn_exc})"
        elif self.respawn_workers:
            detail = f" (respawn budget {self.max_respawns} exhausted)"
        if self._last_worker_error is not None:
            detail += f"; last worker error: {self._last_worker_error}"
        for future in stranded:
            _resolve(future, error=RuntimeError(
                f"serving worker(s) died: {names}{detail}"
            ))

    def _drain_replies(self) -> bool:
        """Route everything currently readable; True if anything was."""
        got_any = False
        for result_queue in list(self._result_queues):
            if result_queue is None:
                continue
            while True:
                try:
                    reply = result_queue.get_nowait()
                except Exception:  # queue.Empty (or a just-closed queue)
                    break
                got_any = True
                self._route_reply(reply)
        return got_any

    def _route_reply(self, reply) -> None:
        kind, worker_id = reply[0], reply[1]
        if kind == "ready":
            self._await_ready.pop(worker_id, None)
            if isinstance(reply[2], _RemoteError):
                # a load failure needs no recovery action here: the
                # failed worker exits, the watchdog sees the death, and
                # each respawn spends budget -- a broken checkpoint
                # crash-loops at most max_respawns times before the
                # pool breaks, while a transient failure costs exactly
                # one respawn.  Keep the error so the eventual break
                # message names the root cause.
                self._last_worker_error = reply[2].message
                return
            finalize = False
            with self._jobs_lock:
                if self._slot_state[worker_id] == _STARTING:
                    self._slot_state[worker_id] = _ACTIVE
                elif (
                    self._slot_state[worker_id] == _RETIRING
                    and not self._inflight[worker_id]
                ):
                    # retired before it finished loading: pill it now
                    finalize = True
            if finalize:
                self._finalize_retire(worker_id)
            else:
                self._pump()
            return
        job_id, payload = reply[2], reply[3]
        obs_payload = reply[4] if len(reply) > 4 else None
        end_mono = time.monotonic()
        finalize = False
        service_s: Optional[float] = None
        with self._jobs_lock:
            if 0 <= worker_id < len(self._inflight):
                if obs_payload is not None:
                    # latest registry snapshot for this live incarnation;
                    # merged with the parent registry in metrics()
                    self._worker_metrics[worker_id] = obs_payload["metrics"]
                try:
                    self._inflight[worker_id].remove(job_id)
                except ValueError:
                    pass
                else:
                    started = self._dispatch_t.pop(job_id, None)
                    if started is not None:
                        service_s = end_mono - started
                        self._service[worker_id].note(service_s)
                        self._service_pool.note(service_s)
                if (
                    self._slot_state[worker_id] == _RETIRING
                    and not self._inflight[worker_id]
                ):
                    finalize = True
            job = self._jobs.pop(job_id, None)
            if job is not None and service_s is not None:
                # per-tenant EWMA: scheduler state for the autoscaler's
                # tenant triggers, kept with telemetry off
                stat = self._service_model.get(job[1])
                if stat is not None:
                    stat.note(service_s)
        if job is not None:
            future = job[0]
            if isinstance(payload, _RemoteError):
                if obs.enabled():
                    self.metrics_registry.counter(
                        "serve.job_failures_total"
                    ).inc()
                _resolve(future, error=RuntimeError(
                    f"serving worker failed: {payload.message}"
                ))
            else:
                _resolve(future, value=payload)
            meta = job[4]
            if meta is not None:
                self.metrics_registry.counter("serve.collect_total").inc()
                latency_s = end_mono - meta[1]
                # pool-wide series keeps its PR 9 identity; the
                # model-labelled series is what per-tenant p99 (stats,
                # autoscaler, bench) reads
                self.metrics_registry.histogram(
                    "serve.job_latency_seconds"
                ).observe(latency_s)
                self.metrics_registry.histogram(
                    "serve.job_latency_seconds", model=job[1]
                ).observe(latency_s)
                if obs_payload is not None and service_s is not None:
                    self._trace_compute(
                        meta[0], job_id, worker_id, service_s, obs_payload
                    )
        if finalize:
            self._finalize_retire(worker_id)
        self._pump()

    def _trace_compute(
        self,
        trace_id: Optional[str],
        job_id: int,
        worker_id: int,
        service_s: float,
        obs_payload: dict,
    ) -> None:
        """Reconstruct a job's compute/transit timeline in the trace.

        The worker reports pure forward seconds; the parent measured the
        dispatch -> collect round trip.  The difference is transit
        (pipe serialisation + private-queue wait), which we split evenly
        around the compute block -- the halves are an estimate, the
        total is measured.  Region events subdivide the compute block at
        their cumulative offsets (the fused-plan regions execute
        sequentially inside the forward).
        """
        compute_s = float(obs_payload["compute_s"])
        model = obs_payload.get("model")
        transit = max(service_s - compute_s, 0.0)
        end_wall = time.time()
        compute_start = end_wall - transit / 2.0 - compute_s
        tid = worker_id + 1  # tid 0 is the parent's queue/assembly lane
        self.trace_buffer.add(
            "dispatch-transit", compute_start - transit / 2.0, transit / 2.0,
            cat="serve", tid=tid, trace_id=trace_id, job=job_id,
            worker=worker_id,
        )
        self.trace_buffer.add(
            "compute", compute_start, compute_s,
            cat="runtime", tid=tid, trace_id=trace_id, job=job_id,
            worker=worker_id, model=model,
        )
        offset = 0.0
        for label, kind, seconds in obs_payload.get("regions", ()):
            self.trace_buffer.add(
                label, compute_start + offset, seconds,
                cat="runtime.region", tid=tid, trace_id=trace_id,
                job=job_id, worker=worker_id, kind=kind,
            )
            offset += seconds
        self.trace_buffer.add(
            "result-transit", end_wall - transit / 2.0, transit / 2.0,
            cat="serve", tid=tid, trace_id=trace_id, job=job_id,
            worker=worker_id,
        )

    def _alive_workers(self) -> bool:
        return any(worker.is_alive() for worker in self._workers)

    def _dispatch_loop(self, model: str, micro_queue: MicroBatchQueue) -> None:
        """Drain one tenant's micro-batch queue into worker jobs.

        One dispatcher thread per registered model: a micro-batch is
        always single-tenant, so tenants never co-batch and the fixed
        forward shape stays per-tenant deterministic.  Dispatch
        failures (heterogeneous request shapes breaking the stack, or
        a close() racing a drained batch past ``_submit_array``) fail
        that batch's futures and keep the dispatcher alive -- a dead
        dispatcher would hang every later client of that tenant.
        """
        while True:
            batch = micro_queue.next_batch(timeout=_POLL_S)
            if batch is None:
                return  # queue closed and drained
            if not batch:
                continue
            stamp = obs.enabled()
            trace_id = obs.new_trace_id() if stamp else None
            t0 = time.monotonic() if stamp else 0.0
            try:
                samples = np.stack([request.payload for request in batch])
                job = self._submit_array(samples, model, trace_id=trace_id)
            except BaseException as exc:  # noqa: BLE001 - fail the batch, not the thread
                for request in batch:
                    _resolve(request.future, error=RuntimeError(
                        f"micro-batch dispatch failed: {exc}"
                    ))
                continue
            if stamp:
                now_mono = time.monotonic()
                now_wall = time.time()
                self.metrics_registry.histogram(
                    "serve.batch_fill", buckets=_FILL_BUCKETS
                ).observe(float(len(batch)))
                self.trace_buffer.add(
                    "batch-assembly", now_wall - (now_mono - t0),
                    now_mono - t0, cat="serve", trace_id=trace_id,
                    fill=len(batch), model=model,
                )
                for request in batch:
                    # each request's own wait from enqueue to dispatch,
                    # linked to the micro-batch job it rode out on
                    wait = now_mono - request.arrived
                    self.trace_buffer.add(
                        "request-queue-wait", now_wall - wait, wait,
                        cat="serve", trace_id=request.trace_id,
                        job_trace=trace_id,
                    )
            job.add_done_callback(self._scatter_to(batch))

    def _scatter_to(self, batch):
        registry = self.metrics_registry if obs.enabled() else None

        def _scatter(job: Future) -> None:
            error = job.exception()
            now = time.monotonic() if registry is not None else 0.0
            for row, request in enumerate(batch):
                if error is not None:
                    _resolve(request.future, error=error)
                else:
                    _resolve(request.future, value=job.result()[row])
                if registry is not None:
                    if error is not None:
                        registry.counter("serve.request_failures_total").inc()
                    registry.histogram(
                        "serve.request_latency_seconds"
                    ).observe(now - request.arrived)

        return _scatter

    # ------------------------------------------------------------------
    # serving API
    # ------------------------------------------------------------------
    def _require_serving(self) -> None:
        if not self._started:
            raise RuntimeError(
                "pool not started; call start() or use as a context manager"
            )

    def _submit_array(
        self,
        samples: np.ndarray,
        model: str,
        trace_id: Optional[str] = None,
    ) -> Future:
        self._require_serving()
        future: Future = Future()
        # job telemetry header: (trace_id, monotonic enqueue, wall
        # enqueue) -- or None with REPRO_OBS=0, which keeps the whole
        # job tuple stamping out of the hot path
        meta = None
        if obs.enabled():
            meta = (trace_id or obs.new_trace_id(), time.monotonic(), time.time())
            self.metrics_registry.counter("serve.jobs_total").inc()
        with self._jobs_lock:
            # checked under the lock so a submit racing close() either
            # raises here or registers early enough for close()'s
            # fail-remaining-jobs sweep to see it -- never in between,
            # where its future could hang forever
            if self._closing:
                raise RuntimeError("pool is closed")
            if self._broken:
                raise RuntimeError(
                    "pool is broken (a worker died); create a new pool"
                )
            job_id = self._next_job_id
            self._next_job_id += 1
            # the payload rides along for the watchdog's one-shot requeue
            self._jobs[job_id] = (future, model, samples, 1, meta)
            self._backlog.append((job_id, model, samples))
            self._n_jobs += 1
        self._pump()
        return future

    def submit(
        self, samples: np.ndarray, model: Optional[str] = None
    ) -> Future:
        """Asynchronously predict a batch of samples on one worker
        (``model=`` picks the tenant; default model when omitted)."""
        samples = np.asarray(samples)
        if samples.shape[0] == 0:
            raise ValueError("submit() needs at least one sample")
        return self._submit_array(samples, self.resolve_model(model))

    def predict(
        self,
        samples: np.ndarray,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
    ) -> np.ndarray:
        """Synchronous :meth:`submit`."""
        return self.submit(samples, model=model).result(timeout=timeout)

    def map_predict(
        self,
        samples: np.ndarray,
        shard_size: Optional[int] = None,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
    ) -> np.ndarray:
        """Predict a large array by sharding it across all workers.

        Shards are contiguous runs of whole serving batches (the shard
        size is rounded up to a ``batch_size`` multiple); each worker
        is fed its next shard as it finishes the previous one -- a slow
        worker simply serves fewer shards.  Results concatenate in
        input order and are bit-identical to the single-process
        ``predict(samples, batch_size, pad_batches=True)`` of the
        tenant's model.  The whole input and output stay resident in
        the parent; for datasets larger than RAM use
        :meth:`map_predict_stream`.
        """
        name = self.resolve_model(model)
        samples = np.asarray(samples)
        n = samples.shape[0]
        if n == 0:
            raise ValueError("map_predict() needs at least one sample")
        if shard_size is None:
            # spread across workers, a few shards each for balancing
            workers = max(1, self.active_workers())
            shard_size = max(1, -(-n // (workers * 2)))
        # align shards to whole serving batches so every worker forward
        # sees the exact shapes the single-process reference would
        shard_size = max(
            self.batch_size,
            -(-shard_size // self.batch_size) * self.batch_size,
        )
        futures = [
            self.submit(samples[start: start + shard_size], model=name)
            for start in range(0, n, shard_size)
        ]
        return np.concatenate(
            [future.result(timeout=timeout) for future in futures], axis=0
        )

    def map_predict_stream(
        self,
        batches: Iterable[np.ndarray],
        shard_size: Optional[int] = None,
        window: Optional[int] = None,
        timeout: Optional[float] = None,
        residency: Optional[dict] = None,
        model: Optional[str] = None,
    ) -> Iterator[np.ndarray]:
        """Streaming :meth:`map_predict`: iterator in, iterator out.

        ``batches`` is any iterable of sample arrays (each with a
        leading sample axis; chunk sizes are arbitrary -- a single
        sample goes in as ``sample[None]``).  The stream is re-chunked
        into batch-aligned shards of ``shard_size`` samples (default
        one serving batch, rounded up to a ``batch_size`` multiple),
        each shard is dispatched as workers drain, and logits rows
        yield **in input order**, one row per sample.  All shards
        route to one tenant (``model=``).

        Parent memory stays bounded: at most ``window`` shards are
        resident (submitted or being yielded) at any time -- by default
        ``active_workers() x prefetch``, re-read between shards so an
        autoscaler growing the pool mid-stream widens the pipeline.
        Input is pulled lazily, so a dataset far larger than RAM
        streams through a constant-size parent footprint.  Rows are
        bit-identical to ``predict(concatenated_input, batch_size,
        pad_batches=True)`` rows: shard boundaries fall on serving
        batch multiples, so every worker forward sees the exact shapes
        the single-process reference would.

        Pass a dict as ``residency`` to receive the shard-residency
        accounting (``peak_shards`` resident vs the ``cap_shards``
        ceiling, plus totals) -- the memory-bound contract is asserted
        on it in ``tests/test_serve_elastic.py``.

        Yielded rows are views into per-shard result arrays; a consumer
        that keeps every row alive keeps every shard alive (copy rows
        to retain only a subset).
        """
        acct = residency if residency is not None else {}
        plan = self._stream_plan(batches, shard_size, window, acct, model)
        for future in plan:
            yield from future.result(timeout=timeout)

    def _stream_plan(
        self,
        batches: Iterable[np.ndarray],
        shard_size: Optional[int],
        window: Optional[int],
        acct: dict,
        model: Optional[str] = None,
    ) -> Iterator[Future]:
        """The shared windowing core of :meth:`map_predict_stream` and
        :meth:`~repro.serve.aio.AsyncServingClient.stream_predict`.

        Submits batch-aligned shards as the resident window allows and
        yields, in input order, each shard future the caller must
        resolve (sync ``result()`` or async ``await``) and forward
        before requesting the next.  All shard-size rounding, tenant
        resolution, and residency accounting live here, so the sync
        and async paths cannot diverge on the memory-bound contract.
        """
        self._require_serving()
        name = self.resolve_model(model)
        if shard_size is None:
            shard_size = self.batch_size
        shard_size = max(
            self.batch_size,
            -(-shard_size // self.batch_size) * self.batch_size,
        )
        acct.update(
            {
                "peak_shards": 0,
                "cap_shards": 0,
                "shards": 0,
                "samples": 0,
                "shard_size": shard_size,
            }
        )
        pending: deque = deque()
        shards = iter_chunks(batches, shard_size)
        sentinel = object()
        while True:
            cap = (
                max(1, window)
                if window is not None
                else max(1, self.active_workers() * self.prefetch)
            )
            acct["cap_shards"] = max(acct["cap_shards"], cap)
            # drain to cap-1 BEFORE pulling the next input shard, so
            # (pending + the shard being resolved + the freshly chunked
            # input) never exceeds cap resident shards
            while len(pending) >= cap:
                future = pending.popleft()
                acct["peak_shards"] = max(
                    acct["peak_shards"], len(pending) + 1
                )
                yield future
            shard = next(shards, sentinel)
            if shard is sentinel:
                break
            pending.append(self.submit(shard, model=name))
            acct["shards"] += 1
            acct["samples"] += int(shard.shape[0])
            acct["peak_shards"] = max(acct["peak_shards"], len(pending))
        while pending:
            future = pending.popleft()
            acct["peak_shards"] = max(acct["peak_shards"], len(pending) + 1)
            yield future

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A cheap point-in-time snapshot of pool health.

        One lock acquisition, no syscalls: the autoscaler polls this.
        Keys: ``workers`` (accepting traffic: active + starting),
        ``slots`` (lifetime slot count incl. retired), ``backlog``
        (undispatched jobs), ``inflight`` (dispatched, unanswered),
        ``ewma_service_s`` (pool-wide EWMA of per-job service seconds;
        ``None`` before the first completion), ``respawns``/``retired``
        counters, ``per_worker`` (state, in-flight depth and EWMA per
        live slot), ``models``/``default_model`` (the fleet), and
        ``per_model`` -- one dict per tenant with its ``queue_depth``
        (coalescing queue), ``backlog``/``inflight`` split,
        ``ewma_service_s``, and observed latency p50/p99 (``None``
        with telemetry off) -- the autoscaler's tenant-trigger input.
        The micro-batch coalescing counters aggregate over all tenant
        queues under ``queue_*``.
        """
        queue_depths = {
            name: queue.depth for name, queue in self._micro_queues.items()
        }
        queue_stats_all = {
            name: queue.stats for name, queue in self._micro_queues.items()
        }
        latency = self.metrics_registry.find("serve.job_latency_seconds")
        with self._jobs_lock:
            per_worker = [
                {
                    "slot": i,
                    "state": state,
                    "inflight": len(self._inflight[i]),
                    "ewma_service_s": self._service[i].ewma,
                }
                for i, state in enumerate(self._slot_state)
                if state != _RETIRED
            ]
            backlog_by: Dict[str, int] = {}
            for _job_id, name, _samples in self._backlog:
                backlog_by[name] = backlog_by.get(name, 0) + 1
            inflight_by: Dict[str, int] = {}
            for slot in self._inflight:
                for job_id in slot:
                    job = self._jobs.get(job_id)
                    if job is not None:
                        inflight_by[job[1]] = inflight_by.get(job[1], 0) + 1
            ewma_by = {
                name: stat.ewma for name, stat in self._service_model.items()
            }
            snapshot = {
                "workers": sum(
                    state in (_STARTING, _ACTIVE) for state in self._slot_state
                ),
                "slots": len(self._slot_state),
                "backlog": len(self._backlog),
                "inflight": sum(len(d) for d in self._inflight),
                "ewma_service_s": self._service_pool.ewma,
                "jobs": self._n_jobs,
                "respawns": self._n_respawns,
                "retired": self._n_retired,
            }
        if latency is not None and latency.count:
            snapshot["latency_p50_s"] = latency.quantile(0.50)
            snapshot["latency_p90_s"] = latency.quantile(0.90)
            snapshot["latency_p99_s"] = latency.quantile(0.99)
        else:
            # absent/empty with REPRO_OBS=0 or before the first result;
            # present-but-None keeps the autoscaler's reads uniform
            snapshot["latency_p50_s"] = None
            snapshot["latency_p90_s"] = None
            snapshot["latency_p99_s"] = None
        per_model = {}
        for name in self._model_names:
            tenant_latency = self.metrics_registry.find(
                "serve.job_latency_seconds", model=name
            )
            has_latency = tenant_latency is not None and tenant_latency.count
            per_model[name] = {
                "queue_depth": queue_depths[name],
                "backlog": backlog_by.get(name, 0),
                "inflight": inflight_by.get(name, 0),
                "ewma_service_s": ewma_by.get(name),
                "latency_p50_s": (
                    tenant_latency.quantile(0.50) if has_latency else None
                ),
                "latency_p99_s": (
                    tenant_latency.quantile(0.99) if has_latency else None
                ),
                **{
                    f"queue_{k}": v
                    for k, v in queue_stats_all[name].items()
                },
            }
        # tenant queues aggregate into the legacy pool-wide queue_* keys
        total_batches = sum(s["batches"] for s in queue_stats_all.values())
        total_fill = sum(
            s["mean_fill"] * s["batches"] for s in queue_stats_all.values()
        )
        extra = {}
        if self._default_model is not None:
            spec = self._specs[self._default_model]
            extra = {
                "dtype": spec.dtype,
                "weight_only": spec.weight_only,
                "backend": spec.backend,
            }
        return {
            **snapshot,
            "batch_size": self.batch_size,
            "prefetch": self.prefetch,
            **extra,
            "models": list(self._model_names),
            "default_model": self._default_model,
            "per_model": per_model,
            "per_worker": per_worker,
            "queue_depth": sum(queue_depths.values()),
            "queue_requests": sum(
                s["requests"] for s in queue_stats_all.values()
            ),
            "queue_batches": total_batches,
            "queue_mean_fill": (
                total_fill / total_batches if total_batches else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # telemetry export
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """The merged parent + all-worker registry snapshot.

        Worker processes ship their registry on every reply; the latest
        snapshot per live slot merges with the folded totals of dead /
        retired incarnations and the parent's own registry.  The result
        is a plain dict (JSON-safe) that :func:`repro.obs.merge_snapshots`
        can combine across pools.
        """
        with self._jobs_lock:
            worker_snaps = list(self._worker_metrics.values())
            base = self._worker_metrics_base
        return obs.merge_snapshots(
            self.metrics_registry.snapshot(), base, *worker_snaps
        )

    def metrics(self) -> dict:
        """JSON-able digest of every pool metric (see the README).

        Counters/gauges report their value; histograms collapse to
        ``{count, mean, p50, p90, p99}``.
        """
        return obs.snapshot_summary(self.metrics_snapshot())

    def metrics_text(self) -> str:
        """Prometheus text-format exposition of the merged metrics."""
        registry = obs.MetricsRegistry()
        registry.merge(self.metrics_snapshot())
        return obs.render_prometheus(registry)

    def trace_events(self, trace_id: Optional[str] = None) -> list:
        """Chrome-trace events collected so far (optionally filtered).

        Export with :func:`repro.obs.write_jsonl` /
        :func:`repro.obs.jsonl_to_chrome` and load in chrome://tracing.
        """
        return self.trace_buffer.events(trace_id)


class ModelHandle:
    """One tenant's view of a :class:`ServingPool`.

    ``pool.model("vgg16")`` binds the tenant once; every method then
    routes to it without repeating ``model=``.  Handles are cheap,
    stateless views -- make as many as you like, share them across
    threads.
    """

    __slots__ = ("pool", "name")

    def __init__(self, pool: ServingPool, name: Optional[str] = None) -> None:
        self.pool = pool
        self.name = pool.resolve_model(name)

    @property
    def spec(self) -> ModelSpec:
        """The bound tenant's :class:`ModelSpec`."""
        return self.pool._specs[self.name]

    def submit(self, samples: np.ndarray) -> Future:
        return self.pool.submit(samples, model=self.name)

    def predict(
        self, samples: np.ndarray, timeout: Optional[float] = None
    ) -> np.ndarray:
        return self.pool.predict(samples, timeout=timeout, model=self.name)

    def predict_one(
        self, sample: np.ndarray, timeout: Optional[float] = None
    ) -> np.ndarray:
        """One sample through the tenant's micro-batch queue."""
        self.pool._require_serving()  # no dispatcher -> would hang
        future = self.pool._micro_queues[self.name].submit(np.asarray(sample))
        return future.result(timeout)

    def map_predict(
        self,
        samples: np.ndarray,
        shard_size: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        return self.pool.map_predict(
            samples, shard_size=shard_size, timeout=timeout, model=self.name
        )

    def map_predict_stream(
        self,
        batches: Iterable[np.ndarray],
        shard_size: Optional[int] = None,
        window: Optional[int] = None,
        timeout: Optional[float] = None,
        residency: Optional[dict] = None,
    ) -> Iterator[np.ndarray]:
        return self.pool.map_predict_stream(
            batches,
            shard_size=shard_size,
            window=window,
            timeout=timeout,
            residency=residency,
            model=self.name,
        )

    def stats(self) -> dict:
        """This tenant's slice of :meth:`ServingPool.stats`
        (``per_model`` entry)."""
        return self.pool.stats()["per_model"][self.name]

    def __repr__(self) -> str:
        return f"ModelHandle({self.name!r})"


class ServingClient:
    """Synchronous per-request facade over a :class:`ServingPool`.

    ``predict`` enqueues each sample into the tenant's micro-batching
    queue, so concurrent clients of the same tenant coalesce into
    shared forwards; results come back per-request.  Tenants never
    coalesce with each other.  ``model=`` (constructor default,
    overridable per call) picks the tenant; omitted, the pool's
    default model serves -- single-model pools behave exactly as
    before.
    """

    def __init__(self, pool: ServingPool, model: Optional[str] = None) -> None:
        self.pool = pool
        self.model = pool.resolve_model(model)

    def _queue(self, model: Optional[str]) -> MicroBatchQueue:
        name = self.model if model is None else self.pool.resolve_model(model)
        return self.pool._micro_queues[name]

    def predict_one(
        self,
        sample: np.ndarray,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
    ) -> np.ndarray:
        """Logits for one sample (a single request on the queue)."""
        self.pool._require_serving()  # no dispatcher -> requests would hang
        return self._queue(model).submit(np.asarray(sample)).result(timeout)

    def predict(
        self,
        samples: np.ndarray,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
    ) -> np.ndarray:
        """Logits for an array of samples, one request per sample."""
        self.pool._require_serving()  # no dispatcher -> requests would hang
        samples = np.asarray(samples)
        if samples.shape[0] == 0:
            raise ValueError("predict() needs at least one sample")
        queue = self._queue(model)
        futures = [queue.submit(samples[i]) for i in range(samples.shape[0])]
        return np.stack([future.result(timeout) for future in futures])
