"""asyncio facade over the serving pool.

The pool's dispatcher is thread-based and its futures are
``concurrent.futures.Future``; :class:`AsyncServingClient` bridges
them into an event loop so one coroutine-based front end (an HTTP
handler, a websocket fan-in) can overlap request building with
serving instead of blocking a thread per request:

* ``await client.predict(batch)`` / ``await client.predict_one(x)``
  suspend the coroutine, never a thread;
* ``async for row in client.stream_predict(batches)`` streams a
  larger-than-RAM dataset with the same bounded shard window as
  ``ServingPool.map_predict_stream``.

Multi-tenant pools route per request: the client binds a default
tenant at construction (``AsyncServingClient(pool, model="vgg16")``)
and every method accepts a ``model=`` override, resolved through the
pool's one shared :meth:`~repro.serve.pool.ServingPool.resolve_model`
helper -- the same resolution the sync surfaces use, so single-model
pools behave exactly as before when the argument is omitted.

**Cancellation contract.**  Cancelling an ``await`` cancels the
underlying pool future: if the job has not been dispatched yet the
pool drops it from the backlog (no worker ever computes it); if it is
already in flight the worker's result is discarded on arrival
(``resolve_future`` tolerates cancelled futures).  Either way the job
is accounted exactly once -- never orphaned in the pool's tables,
never delivered twice (tested in ``tests/test_serve_elastic.py``).

**Hiding the parent round trip.**  Construct the pool with
``prefetch=2`` so every worker already holds its next job when it
finishes the current one; the asyncio front end then keeps the pipe
full without a dedicated feeder thread.
"""

from __future__ import annotations

import asyncio
import time
from typing import AsyncIterator, Iterable, Optional

import numpy as np

from repro import obs
from repro.serve.pool import ServingPool


class AsyncServingClient:
    """Event-loop front end for a started :class:`ServingPool`.

    With telemetry on, awaited latencies land in the pool registry's
    ``client.predict_latency_seconds`` histogram (labelled by path) and
    cancelled awaits count into ``client.cancelled_total`` -- the
    client-observed complement of the pool's server-side timings.
    """

    def __init__(self, pool: ServingPool, model: Optional[str] = None) -> None:
        self.pool = pool
        self.model = pool.resolve_model(model)

    def _resolve(self, model: Optional[str]) -> str:
        return self.model if model is None else self.pool.resolve_model(model)

    async def _await_timed(self, future, path: str) -> np.ndarray:
        if not obs.enabled():
            return await asyncio.wrap_future(future)
        registry = self.pool.metrics_registry
        t0 = time.monotonic()
        try:
            result = await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            registry.counter("client.cancelled_total", path=path).inc()
            raise
        registry.histogram(
            "client.predict_latency_seconds", path=path
        ).observe(time.monotonic() - t0)
        return result

    async def predict(
        self, samples: np.ndarray, model: Optional[str] = None
    ) -> np.ndarray:
        """Logits for a batch of samples (one pool job)."""
        samples = np.asarray(samples)
        if samples.shape[0] == 0:
            raise ValueError("predict() needs at least one sample")
        future = self.pool.submit(samples, model=self._resolve(model))
        return await self._await_timed(future, "predict")

    async def predict_one(
        self, sample: np.ndarray, model: Optional[str] = None
    ) -> np.ndarray:
        """Logits row for one sample, coalesced by the tenant's
        micro-batch queue with whatever else is arriving for it."""
        self.pool._require_serving()  # no dispatcher -> would hang
        queue = self.pool._micro_queues[self._resolve(model)]
        future = queue.submit(np.asarray(sample))
        return await self._await_timed(future, "predict_one")

    async def stream_predict(
        self,
        batches: Iterable[np.ndarray],
        shard_size: Optional[int] = None,
        window: Optional[int] = None,
        residency: Optional[dict] = None,
        model: Optional[str] = None,
    ) -> AsyncIterator[np.ndarray]:
        """Async-streaming predict: yields logits rows in input order.

        Same contract as :meth:`ServingPool.map_predict_stream` --
        batch-aligned shards, bit-identical rows, at most ``window``
        shards resident (default ``active_workers() x prefetch``) --
        but shard results are awaited instead of blocking, so other
        coroutines (e.g. the code *producing* the input stream) run
        while workers serve.  ``batches`` is a plain iterable; its
        items are pulled between awaits on the event loop thread, so
        producers that block should hand over chunks via a queue.

        The shard windowing and residency accounting are the pool's
        ``_stream_plan`` -- one implementation shared with the sync
        path, so the two cannot diverge on the memory-bound contract;
        this method only swaps the blocking ``result()`` for an
        ``await``.
        """
        acct = residency if residency is not None else {}
        plan = self.pool._stream_plan(
            batches, shard_size, window, acct, self._resolve(model)
        )
        for future in plan:
            out = await asyncio.wrap_future(future)
            for row in out:
                yield row
