"""One-call service assembly: :func:`serve` a fleet from a config.

``ServingPool`` + ``PoolAutoscaler`` + ``ModelRegistry`` compose by
hand, but the common case is "here is my fleet, stand up the service":

.. code-block:: python

    from repro.serve import ModelSpec, ServeConfig, PoolConfig, serve

    config = ServeConfig(
        models={
            "vgg16-int4": ModelSpec("ckpts/vgg16_int4.npz"),
            "vgg16-int2": ModelSpec("ckpts/vgg16_int2.npz"),
            "resnet18":   ModelSpec("ckpts/resnet18.npz", backend="qgemm"),
        },
        pool=PoolConfig(n_workers=2, batch_size=256,
                        cache_budget_bytes=256 * 1024),
        autoscale=AutoscaleConfig(max_workers=4, latency_budget_s=0.5),
        default_model="resnet18",
    )
    with serve(config) as svc:
        logits = svc.model("vgg16-int2").predict(x)

:func:`serve` builds the registry, starts the pool, and (when an
``autoscale`` section is present) attaches a running autoscaler; the
returned :class:`ServeHandle` owns both and tears them down in order
on ``close()`` / context-manager exit.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.serve.autoscale import PoolAutoscaler
from repro.serve.pool import ModelHandle, ServingPool
from repro.serve.registry import ModelRegistry, ServeConfig

__all__ = ["ServeHandle", "serve"]


class ServeHandle:
    """A running service: started pool + optional autoscaler.

    Thin ownership wrapper -- serving traffic goes straight to
    :attr:`pool` (or the :meth:`model` / :meth:`client` conveniences);
    the handle's job is lifecycle: ``close()`` stops the autoscaler
    first (no scaling decisions against a closing pool), then drains
    and closes the pool.
    """

    def __init__(
        self, pool: ServingPool, autoscaler: Optional[PoolAutoscaler] = None
    ) -> None:
        self.pool = pool
        self.autoscaler = autoscaler

    def model(self, name: Optional[str] = None) -> ModelHandle:
        """A tenant-scoped handle (``svc.model("vgg16").predict(x)``)."""
        return self.pool.model(name)

    def stats(self) -> dict:
        return self.pool.stats()

    def metrics(self) -> dict:
        return self.pool.metrics()

    def close(self) -> None:
        if self.autoscaler is not None:
            self.autoscaler.stop()
        self.pool.close()

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(config: Union[ServeConfig, ModelRegistry]) -> ServeHandle:
    """Stand up a running service from one config object.

    ``config`` is a :class:`~repro.serve.registry.ServeConfig` (fleet +
    pool knobs + optional autoscale section) or, for the
    all-defaults case, a bare :class:`ModelRegistry`.  The pool is
    started before this returns -- a broken default checkpoint raises
    here, and the returned :class:`ServeHandle` is ready for traffic.
    """
    if isinstance(config, ModelRegistry):
        # all-defaults case: the registry (and its default) serve as-is
        return ServeHandle(ServingPool(config).start())
    if not isinstance(config, ServeConfig):
        raise TypeError(
            f"serve() takes a ServeConfig or ModelRegistry, "
            f"got {type(config).__name__}"
        )
    pool = ServingPool(config.build_registry(), config.pool).start()
    autoscaler: Optional[PoolAutoscaler] = None
    try:
        if config.autoscale is not None:
            autoscaler = PoolAutoscaler.from_config(
                pool, config.autoscale
            ).start()
    except BaseException:
        pool.close()
        raise
    return ServeHandle(pool, autoscaler)
