"""Model registry and configuration objects for fleet serving.

The paper's packed low-bit checkpoints are tiny (2.8-85 KiB across the
zoo), so one :class:`~repro.serve.pool.ServingPool` can plausibly hold
*thousands* of frozen models.  This module is the vocabulary for that:

* :class:`ModelSpec` -- how to materialise one tenant's
  :class:`~repro.runtime.FrozenModel` (checkpoint path + serving dtype
  + weight-only flag + execution backend).  Validation happens in
  ``__post_init__``: a typo'd dtype or backend on *any* registered
  model raises in the parent process, before N workers fork and decode
  checkpoints only to die on ``set_backend``.
* :class:`ModelRegistry` -- an ordered mapping of tenant name ->
  :class:`ModelSpec` with a resolvable *default* (explicit, or implied
  when exactly one model is registered).  A registry freezes when a
  ServingPool is constructed over it: the worker fleet forked with one spec table
  must never disagree with the parent's routing table.
* :class:`PoolConfig` / :class:`AutoscaleConfig` / :class:`ServeConfig`
  -- frozen dataclasses replacing the kwarg sprawl that
  ``ServingPool.__init__`` had accreted.  ``ServeConfig`` is the one
  object :func:`repro.serve.serve` needs to stand up registry + pool +
  autoscaler.

Tenant names double as metric label values
(``serve.job_latency_seconds{model=...}``), so they are validated
against the label-safe charset in :func:`repro.obs.labels.is_label_safe`
at registration time -- a name that would corrupt snapshot keys never
enters the fleet.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

import numpy as np

from repro.obs.labels import is_label_safe

__all__ = [
    "AutoscaleConfig",
    "ModelRegistry",
    "ModelSpec",
    "PoolConfig",
    "ServeConfig",
    "DEFAULT_MODEL",
]

#: tenant name given to the sole model of a legacy single-checkpoint
#: pool (``ServingPool(path, ...)`` shim) and used in examples.
DEFAULT_MODEL = "default"


@dataclass(frozen=True)
class ModelSpec:
    """How one tenant's frozen model is materialised in a worker.

    Parameters
    ----------
    checkpoint_path:
        Packed ``.npz`` checkpoint written by ``FrozenModel.save``.
    dtype:
        Serving dtype (any floating numpy dtype; ``"float32"`` fast
        path by default).
    weight_only:
        Serve packed low-bit weights with float activations (skips all
        activation fake-quant; see ``FrozenModel.load``).
    backend:
        Execution backend selected after loading (``"float"`` default,
        ``"qgemm"`` for code-domain LUT execution, ``"fused"`` for the
        plan compiler; see ``FrozenModel.set_backend``).

    Both ``dtype`` and ``backend`` are validated eagerly here, so a
    typo fails at spec construction in the parent -- not after N
    workers each fork and decode the checkpoint only to hit
    ``set_backend``'s ``KeyError``.
    """

    checkpoint_path: str
    dtype: str = "float32"
    weight_only: bool = False
    backend: str = "float"

    def __post_init__(self) -> None:
        object.__setattr__(self, "checkpoint_path", str(self.checkpoint_path))
        try:
            resolved = np.dtype(self.dtype)
        except TypeError as exc:
            raise ValueError(
                f"unknown serving dtype {self.dtype!r}"
            ) from exc
        if resolved.kind != "f":
            raise ValueError(
                f"serving dtype must be floating, got {self.dtype!r}"
            )
        object.__setattr__(self, "dtype", resolved.name)
        object.__setattr__(self, "weight_only", bool(self.weight_only))
        object.__setattr__(self, "backend", str(self.backend))
        from repro.runtime.backends import get_backend

        try:
            get_backend(self.backend)
        except KeyError as exc:
            raise ValueError(
                f"unknown execution backend {self.backend!r}: {exc}"
            ) from exc

    def load(self):
        """Materialise the spec: load + astype + set_backend.

        The one canonical decode path -- workers' LRU caches and
        single-process reference checks in tests/examples both call
        this, so "what a tenant's model *is*" cannot diverge between
        the fleet and the bit-identity reference.
        """
        from repro.runtime import FrozenModel

        model = FrozenModel.load(self.checkpoint_path, weight_only=self.weight_only)
        model.astype(np.dtype(self.dtype))
        if self.backend != "float":
            model.set_backend(self.backend)
        return model


@dataclass(frozen=True)
class PoolConfig:
    """Pool-level knobs, decoupled from any particular model.

    Replaces the 13-kwarg ``ServingPool.__init__`` sprawl: everything
    about *one model* moved to :class:`ModelSpec`; what remains here is
    fleet mechanics.  See the :class:`~repro.serve.pool.ServingPool`
    docstring for the semantics of each field.

    ``cache_budget_bytes`` is new with multi-tenancy: each worker keeps
    an LRU cache of loaded models, bounded by the packed on-disk bytes
    of the resident checkpoints.  ``None`` (default) means unbounded --
    every touched model stays decoded.  A model is only evicted to
    admit another; the budget never evicts the last resident model, so
    a single spec larger than the budget still serves.
    """

    n_workers: int = 2
    batch_size: int = 64
    max_wait_ms: float = 2.0
    prefetch: int = 1
    respawn_workers: bool = True
    max_respawns: Optional[int] = None
    start_method: Optional[str] = None
    start_timeout: Optional[float] = 120.0
    cache_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.prefetch < 1:
            raise ValueError(f"prefetch must be >= 1, got {self.prefetch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_respawns is not None and self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.start_timeout is not None and self.start_timeout <= 0:
            raise ValueError(
                f"start_timeout must be positive, got {self.start_timeout}"
            )
        if (
            self.start_method is not None
            and self.start_method not in mp.get_all_start_methods()
        ):
            raise ValueError(
                f"unknown start_method {self.start_method!r}; "
                f"available: {mp.get_all_start_methods()}"
            )
        if self.cache_budget_bytes is not None and self.cache_budget_bytes < 1:
            raise ValueError(
                f"cache_budget_bytes must be >= 1, got {self.cache_budget_bytes}"
            )


@dataclass(frozen=True)
class AutoscaleConfig:
    """Declarative form of the :class:`PoolAutoscaler` knobs.

    Field semantics match :class:`~repro.serve.autoscale.PoolAutoscaler`
    one-for-one; ``PoolAutoscaler.from_config`` consumes this.
    Validation here mirrors the autoscaler's own so a bad budget fails
    where the config is written, not where the pool starts.
    """

    min_workers: int = 1
    max_workers: int = 4
    latency_budget_s: float = 1.0
    idle_window_s: float = 10.0
    cooldown_s: float = 3.0
    interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.latency_budget_s <= 0:
            raise ValueError("latency_budget_s must be positive")
        if self.idle_window_s < 0:
            raise ValueError("idle_window_s must be >= 0")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


class ModelRegistry:
    """An ordered mapping of tenant name -> :class:`ModelSpec`.

    ``models`` may map names to ready :class:`ModelSpec` objects or to
    bare checkpoint paths (coerced to default-field specs).  A
    registry with exactly one model treats it as the implied default;
    with several, requests must either name their model or an explicit
    ``default`` must be declared (at construction, via
    ``register(..., default=True)``, or :meth:`set_default`).

    The registry freezes when a :class:`ServingPool` is constructed
    over it (:meth:`freeze`): workers fork with a snapshot of the spec
    table,
    so later registration would silently diverge parent routing from
    worker reality -- it raises instead.  Start a new pool to serve a
    changed fleet.
    """

    def __init__(
        self,
        models: Optional[Mapping[str, Union[ModelSpec, str]]] = None,
        default: Optional[str] = None,
    ) -> None:
        self._specs: Dict[str, ModelSpec] = {}
        self._default: Optional[str] = None
        self._frozen = False
        for name, spec in dict(models or {}).items():
            self.register(name, spec)
        if default is not None:
            self.set_default(default)

    def register(
        self,
        name: str,
        spec: Union[ModelSpec, str],
        default: bool = False,
    ) -> ModelSpec:
        """Add one named model; returns its (coerced) spec."""
        if self._frozen:
            raise RuntimeError(
                "registry is frozen (a pool is serving it); "
                "build a new registry for a changed fleet"
            )
        if not isinstance(name, str) or not is_label_safe(name):
            raise ValueError(
                f"model name {name!r} is not label-safe: names appear as "
                "metric label values and must match [A-Za-z0-9._:/-]+"
            )
        if name in self._specs:
            raise ValueError(f"model {name!r} is already registered")
        if not isinstance(spec, ModelSpec):
            spec = ModelSpec(checkpoint_path=spec)
        self._specs[name] = spec
        if default:
            self._default = name
        return spec

    def set_default(self, name: str) -> None:
        if name not in self._specs:
            raise ValueError(
                f"cannot default to unregistered model {name!r}; "
                f"registered: {sorted(self._specs)}"
            )
        if self._frozen:
            raise RuntimeError(
                "registry is frozen (a pool is serving it)"
            )
        self._default = name

    @property
    def default_model(self) -> Optional[str]:
        """The model served when a request names none.

        The explicit default if one was declared, else the sole
        registered model, else ``None`` (requests must say which).
        """
        if self._default is not None:
            return self._default
        if len(self._specs) == 1:
            return next(iter(self._specs))
        return None

    def freeze(self) -> "ModelRegistry":
        """Make the registry immutable (called by ``ServingPool.__init__``)."""
        self._frozen = True
        return self

    def specs(self) -> Dict[str, ModelSpec]:
        """A plain-dict snapshot of the spec table (picklable; what
        worker processes fork with)."""
        return dict(self._specs)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def __getitem__(self, name: str) -> ModelSpec:
        return self._specs[name]

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def items(self):
        return self._specs.items()

    def __repr__(self) -> str:
        default = self.default_model
        return (
            f"ModelRegistry({len(self._specs)} models: "
            f"{list(self._specs)}, default={default!r})"
        )


@dataclass(frozen=True)
class ServeConfig:
    """Everything :func:`repro.serve.serve` needs, in one object.

    ``models`` maps tenant names to :class:`ModelSpec`s (or bare
    checkpoint paths); ``default_model`` optionally names the tenant
    served when a request names none.  ``autoscale=None`` serves at a
    fixed ``pool.n_workers``.
    """

    models: Mapping[str, Union[ModelSpec, str]]
    pool: PoolConfig = field(default_factory=PoolConfig)
    autoscale: Optional[AutoscaleConfig] = None
    default_model: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("ServeConfig needs at least one model")
        if not isinstance(self.pool, PoolConfig):
            raise ValueError(
                f"pool must be a PoolConfig, got {type(self.pool).__name__}"
            )
        if self.autoscale is not None and not isinstance(
            self.autoscale, AutoscaleConfig
        ):
            raise ValueError(
                "autoscale must be an AutoscaleConfig or None, got "
                f"{type(self.autoscale).__name__}"
            )
        if (
            self.default_model is not None
            and self.default_model not in self.models
        ):
            raise ValueError(
                f"default_model {self.default_model!r} is not in models "
                f"({sorted(self.models)})"
            )

    def build_registry(self) -> ModelRegistry:
        """A fresh :class:`ModelRegistry` from ``models`` + default."""
        return ModelRegistry(self.models, default=self.default_model)
