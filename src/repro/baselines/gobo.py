"""GOBO [Zadeh et al., MICRO 2020]: weight-only outlier clustering.

GOBO models each weight tensor as Gaussian, peels off the few weights
that do not fit (outliers, kept at full precision) and represents the
remaining "G" (Gaussian) group by ``2^b`` learned centroids, storing
only per-weight centroid indices.  The encoding is variable-length
(outlier positions are sparse), hence unaligned memory in Table I, and
activations stay FP16 -- GOBO accelerates memory, not compute.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineQuantizer, BitAccounting

#: full-precision bits per stored outlier (value + position index).
OUTLIER_VALUE_BITS = 32
OUTLIER_INDEX_BITS = 4


def _kmeans_1d(values: np.ndarray, k: int, iterations: int = 25) -> np.ndarray:
    """Lloyd's algorithm on scalars with quantile-seeded centroids."""
    if values.size <= k:
        return np.sort(values.astype(np.float64))
    quantiles = (np.arange(k) + 0.5) / k
    centroids = np.quantile(values, quantiles)
    for _ in range(iterations):
        # Assign to nearest centroid via boundary bisection.
        boundaries = (centroids[1:] + centroids[:-1]) / 2.0
        assignment = np.searchsorted(boundaries, values)
        moved = False
        for idx in range(k):
            members = values[assignment == idx]
            if members.size:
                new = members.mean()
                if new != centroids[idx]:
                    centroids[idx] = new
                    moved = True
        if not moved:
            break
    return np.sort(centroids)


class GOBOQuantizer(BaselineQuantizer):
    """Weight-only centroid quantization with a Gaussian outlier split."""

    aligned = False

    def __init__(self, bits: int = 3, outlier_sigma: float = 3.0) -> None:
        self.bits = bits
        self.outlier_sigma = outlier_sigma
        self.name = f"gobo{bits}"

    def calibrate_weight(self, w: np.ndarray) -> dict:
        flat = w.ravel().astype(np.float64)
        mean = float(flat.mean())
        std = float(flat.std()) + np.finfo(np.float64).tiny
        outlier_mask = np.abs(flat - mean) > self.outlier_sigma * std
        inliers = flat[~outlier_mask]
        centroids = _kmeans_1d(inliers, 2 ** self.bits)
        return {
            "centroids": centroids,
            "mean": mean,
            "std": std,
            "outlier_fraction": float(outlier_mask.mean()),
        }

    def calibrate_activation(self, a: np.ndarray) -> dict:
        raise NotImplementedError("GOBO quantizes weights only (Sec. VII-A)")

    def quantize_weight(self, w: np.ndarray, state: dict) -> np.ndarray:
        centroids = state["centroids"]
        threshold = self.outlier_sigma * state["std"]
        boundaries = (centroids[1:] + centroids[:-1]) / 2.0
        assignment = np.searchsorted(boundaries, w)
        quantized = centroids[assignment]
        outliers = np.abs(w - state["mean"]) > threshold
        return np.where(outliers, w, quantized)

    def quantize_activation(self, a: np.ndarray, state: dict) -> np.ndarray:
        raise NotImplementedError("GOBO quantizes weights only (Sec. VII-A)")

    def accounting(self, state: dict, n_elements: int) -> BitAccounting:
        frac = state["outlier_fraction"]
        # Centroid table itself is negligible (2^b * 32 bits per tensor).
        table_bits = (2 ** self.bits) * 32.0 / max(n_elements, 1)
        memory = (1.0 - frac) * self.bits + frac * (
            OUTLIER_VALUE_BITS + OUTLIER_INDEX_BITS
        ) + table_bits
        # GOBO computes in FP16 (weights are dequantized on the fly).
        return BitAccounting(memory_bits=memory, compute_bits=16.0, aligned=False)

    def effective_bits(self, state: dict, n_elements: int) -> float:
        """Average stored bits per weight, the '3.04 bit' of Table VI."""
        return self.accounting(state, n_elements).memory_bits
