"""Plain fixed-point int quantization (the Table I ``Int`` row)."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineQuantizer, BitAccounting
from repro.dtypes.int_type import IntType
from repro.quant.functional import quantize_dequantize
from repro.quant.scale_search import search_scale


class IntQuantizer(BaselineQuantizer):
    """Symmetric int quantization with MSE-optimal clipping.

    Weights are signed; activations are unsigned when non-negative
    (post-ReLU), signed otherwise -- the same granularity convention as
    ANT itself, isolating the data-type difference.
    """

    def __init__(self, bits: int = 8) -> None:
        self.bits = bits
        self.name = f"int{bits}"

    def _calibrate(self, x: np.ndarray, signed: bool) -> dict:
        dtype = IntType(self.bits, signed)
        result = search_scale(x, dtype)
        return {"dtype": dtype, "scale": result.scale, "mse": result.mse}

    def calibrate_weight(self, w: np.ndarray) -> dict:
        return self._calibrate(w, signed=True)

    def calibrate_activation(self, a: np.ndarray) -> dict:
        return self._calibrate(a, signed=bool(np.min(a) < 0))

    def quantize_weight(self, w: np.ndarray, state: dict) -> np.ndarray:
        return quantize_dequantize(w, state["dtype"], state["scale"])

    quantize_activation = quantize_weight

    def accounting(self, state: dict, n_elements: int) -> BitAccounting:
        return BitAccounting(
            memory_bits=float(self.bits),
            compute_bits=float(self.bits),
            aligned=True,
        )
