"""OLAccel [Park et al., ISCA 2018]: outlier-aware quantization.

Values are split into a dense low-magnitude region quantized at 4-bit
int and a sparse outlier region (a few percent of elements) kept at
16-bit.  The encoding is variable-length, so memory accesses are
unaligned and the accelerator needs an outlier controller -- the 71%
area overhead row of Table I.

Per the original paper, the first and last layers use 8-bit for the
normal region; the model driver exposes that via ``edge_bits``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineQuantizer, BitAccounting
from repro.dtypes.int_type import IntType
from repro.quant.functional import quantize_dequantize
from repro.quant.scale_search import search_scale

#: bits used to store one outlier (value + position index), matching
#: OLAccel's 16-bit outlier value plus index bookkeeping.
OUTLIER_VALUE_BITS = 16
OUTLIER_INDEX_BITS = 4


class OLAccelQuantizer(BaselineQuantizer):
    """Outlier-aware 4-bit quantization with high-precision outliers."""

    def __init__(
        self,
        bits: int = 4,
        outlier_fraction: float = 0.03,
        edge_layer: bool = False,
        edge_bits: int = 8,
    ) -> None:
        self.bits = edge_bits if edge_layer else bits
        self.outlier_fraction = outlier_fraction
        self.name = f"olaccel{self.bits}"

    def _calibrate(self, x: np.ndarray, signed: bool) -> dict:
        flat = np.abs(x.ravel())
        threshold = float(
            np.quantile(flat, 1.0 - self.outlier_fraction)
        )
        dense = x[np.abs(x) <= threshold]
        if dense.size == 0:
            dense = x
        dtype = IntType(self.bits, signed)
        result = search_scale(dense, dtype)
        actual_fraction = float(np.mean(np.abs(x) > threshold))
        return {
            "dtype": dtype,
            "scale": result.scale,
            "threshold": threshold,
            "outlier_fraction": actual_fraction,
        }

    def calibrate_weight(self, w: np.ndarray) -> dict:
        return self._calibrate(w, signed=True)

    def calibrate_activation(self, a: np.ndarray) -> dict:
        return self._calibrate(a, signed=bool(np.min(a) < 0))

    def _quantize(self, x: np.ndarray, state: dict) -> np.ndarray:
        dense_q = quantize_dequantize(x, state["dtype"], state["scale"])
        outlier_mask = np.abs(x) > state["threshold"]
        # Outliers stored at 16-bit: model as float16 rounding.
        outlier_q = x.astype(np.float16).astype(np.float64)
        return np.where(outlier_mask, outlier_q, dense_q)

    def quantize_weight(self, w: np.ndarray, state: dict) -> np.ndarray:
        return self._quantize(w, state)

    quantize_activation = quantize_weight

    def accounting(self, state: dict, n_elements: int) -> BitAccounting:
        frac = state["outlier_fraction"]
        outlier_cost = OUTLIER_VALUE_BITS + OUTLIER_INDEX_BITS
        memory = (1.0 - frac) * self.bits + frac * outlier_cost
        # Compute runs the dense stream at `bits` and outliers on the
        # wide path; average compute width weights by element count.
        compute = (1.0 - frac) * self.bits + frac * OUTLIER_VALUE_BITS
        return BitAccounting(memory_bits=memory, compute_bits=compute, aligned=False)
