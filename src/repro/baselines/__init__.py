"""Baseline quantization schemes the paper compares against (Tbl. I).

Every baseline implements :class:`BaselineQuantizer`: tensor-level
quantize functions plus the memory/compute bit accounting used in
Table I and the Fig. 13 accelerator comparison.

* :mod:`repro.baselines.int_baseline` -- plain int4/int8.
* :mod:`repro.baselines.adafloat`     -- AdaptiveFloat [Tambe+ DAC'20].
* :mod:`repro.baselines.bitfusion`    -- 4/8-bit mixed int [Sharma+ ISCA'18].
* :mod:`repro.baselines.olaccel`      -- outlier-aware [Park+ ISCA'18].
* :mod:`repro.baselines.gobo`         -- weight clustering + outliers
  [Zadeh+ MICRO'20].
* :mod:`repro.baselines.biscaled`     -- two scale factors [Jain+ DAC'19].
"""

from repro.baselines.base import BaselineQuantizer, BaselineModelQuantizer
from repro.baselines.int_baseline import IntQuantizer
from repro.baselines.adafloat import AdaFloatQuantizer
from repro.baselines.bitfusion import BitFusionQuantizer
from repro.baselines.olaccel import OLAccelQuantizer
from repro.baselines.gobo import GOBOQuantizer
from repro.baselines.biscaled import BiScaledQuantizer

__all__ = [
    "BaselineQuantizer",
    "BaselineModelQuantizer",
    "IntQuantizer",
    "AdaFloatQuantizer",
    "BitFusionQuantizer",
    "OLAccelQuantizer",
    "GOBOQuantizer",
    "BiScaledQuantizer",
]
