"""BiScaled-DNN [Jain et al., DAC 2019]: two scale factors per tensor.

BiScaled keeps the fixed-length int encoding but gives each tensor two
scale factors: a fine scale for the dense low-magnitude region and a
coarse scale (fine scale shifted by ``shift`` binades) for the sparse
tail.  A per-block bit mask indicates which scale each element uses,
costing extra storage -- the 6.16-average-bit / 7.1%-area row of
Table I.  Unlike ANT it captures only *two* ranges, so 6-bit BiScaled
still loses noticeable accuracy (Table V).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineQuantizer, BitAccounting
from repro.dtypes.int_type import IntType
from repro.quant.functional import quantize_dequantize
from repro.quant.scale_search import search_scale

#: mask bits per element (BiScaled amortises a sparse block mask; one
#: bit per element is the dense upper bound used for accounting).
MASK_BITS = 0.16  # BiScaled's reported overhead: 6.16 bits at 6-bit base


class BiScaledQuantizer(BaselineQuantizer):
    """Two-scale int quantization."""

    def __init__(self, bits: int = 6, shift: int = 3) -> None:
        self.bits = bits
        self.shift = shift
        self.name = f"biscaled{bits}"

    def _calibrate(self, x: np.ndarray, signed: bool) -> dict:
        dtype = IntType(self.bits, signed)
        flat = np.abs(x.ravel())
        # Fine scale fits the dense body (99th percentile), coarse scale
        # is the fine scale shifted left by `shift` binades to reach the
        # tail -- the BiScaled scale-pairing rule.
        body = float(np.quantile(flat, 0.99)) or float(flat.max() or 1.0)
        fine_result = search_scale(x[np.abs(x) <= body] if np.any(np.abs(x) <= body) else x, dtype)
        fine = fine_result.scale
        coarse = fine * (2 ** self.shift)
        threshold = fine * dtype.max_value
        tail_fraction = float(np.mean(np.abs(x) > threshold))
        return {
            "dtype": dtype,
            "fine": fine,
            "coarse": coarse,
            "threshold": threshold,
            "tail_fraction": tail_fraction,
        }

    def calibrate_weight(self, w: np.ndarray) -> dict:
        return self._calibrate(w, signed=True)

    def calibrate_activation(self, a: np.ndarray) -> dict:
        return self._calibrate(a, signed=bool(np.min(a) < 0))

    def _quantize(self, x: np.ndarray, state: dict) -> np.ndarray:
        fine_q = quantize_dequantize(x, state["dtype"], state["fine"])
        coarse_q = quantize_dequantize(x, state["dtype"], state["coarse"])
        use_coarse = np.abs(x) > state["threshold"]
        return np.where(use_coarse, coarse_q, fine_q)

    def quantize_weight(self, w: np.ndarray, state: dict) -> np.ndarray:
        return self._quantize(w, state)

    quantize_activation = quantize_weight

    def accounting(self, state: dict, n_elements: int) -> BitAccounting:
        memory = self.bits + MASK_BITS
        return BitAccounting(memory_bits=memory, compute_bits=float(self.bits), aligned=True)
