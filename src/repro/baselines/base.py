"""Shared interface and model-level driver for baseline quantizers."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.module import Module
from repro.quant.framework import quantizable_layers


@dataclass
class BitAccounting:
    """Average bits per element for one tensor under a scheme."""

    memory_bits: float
    compute_bits: float
    aligned: bool


class BaselineQuantizer(abc.ABC):
    """A quantization scheme applied tensor-by-tensor.

    ``calibrate_*`` methods fit per-tensor state (scales, centroids,
    outlier thresholds) and return it; ``quantize_*`` apply it.  The
    split lets the model driver calibrate once and re-apply on every
    forward pass.
    """

    name: str = "baseline"
    #: whether tensors are stored with fixed-length (aligned) encoding
    aligned: bool = True

    @abc.abstractmethod
    def calibrate_weight(self, w: np.ndarray) -> dict:
        """Fit quantization state for a weight tensor."""

    @abc.abstractmethod
    def calibrate_activation(self, a: np.ndarray) -> dict:
        """Fit quantization state for an activation tensor."""

    @abc.abstractmethod
    def quantize_weight(self, w: np.ndarray, state: dict) -> np.ndarray:
        """Fake-quantize a weight tensor with fitted state."""

    @abc.abstractmethod
    def quantize_activation(self, a: np.ndarray, state: dict) -> np.ndarray:
        """Fake-quantize an activation tensor with fitted state."""

    @abc.abstractmethod
    def accounting(self, state: dict, n_elements: int) -> BitAccounting:
        """Memory/compute bits per element for a tensor in this scheme."""

    # Convenience one-shot helpers -------------------------------------
    def weight_mse(self, w: np.ndarray) -> float:
        state = self.calibrate_weight(w)
        q = self.quantize_weight(w, state)
        return float(np.mean((w - q) ** 2))

    def activation_mse(self, a: np.ndarray) -> float:
        state = self.calibrate_activation(a)
        q = self.quantize_activation(a, state)
        return float(np.mean((a - q) ** 2))


class _BaselineHook:
    """STE fake-quant hook wrapping a baseline's quantize function."""

    def __init__(self, fn, state):
        self.fn = fn
        self.state = state

    def __call__(self, x: Tensor) -> Tensor:
        quantized = self.fn(x.data, self.state)

        def make(out: Tensor):
            def backward():
                if x.requires_grad:
                    x._accumulate(out.grad)

            return backward

        return Tensor._make(quantized, (x,), make)


class BaselineModelQuantizer:
    """Apply a baseline scheme to every quantizable layer of a model.

    Mirrors :class:`repro.quant.ModelQuantizer` but drives an arbitrary
    :class:`BaselineQuantizer`.  ``weights_only=True`` reproduces GOBO's
    weight-only mode (activations stay full precision).
    """

    def __init__(
        self,
        model: Module,
        scheme: BaselineQuantizer,
        weights_only: bool = False,
    ) -> None:
        self.model = model
        self.scheme = scheme
        self.weights_only = weights_only
        self.weight_states: Dict[str, dict] = {}
        self.act_states: Dict[str, dict] = {}
        self._captured: Dict[str, np.ndarray] = {}

    def calibrate(self, batch) -> "BaselineModelQuantizer":
        modules = quantizable_layers(self.model)
        captured: Dict[str, np.ndarray] = {}

        def recorder(name):
            def hook(x: Tensor) -> Tensor:
                captured[name] = np.asarray(x.data, dtype=np.float64).copy()
                return x

            return hook

        for name, module in modules.items():
            object.__setattr__(module, "input_fake_quant", recorder(name))
        try:
            self.model.eval()
            with no_grad():
                if isinstance(batch, np.ndarray) and batch.dtype.kind in "iu":
                    self.model(batch)
                else:
                    self.model(Tensor(batch))
        finally:
            for module in modules.values():
                object.__setattr__(module, "input_fake_quant", None)

        self._captured = captured
        for name, module in modules.items():
            self.weight_states[name] = self.scheme.calibrate_weight(module.weight.data)
            if not self.weights_only:
                self.act_states[name] = self.scheme.calibrate_activation(captured[name])
        return self

    def apply(self) -> "BaselineModelQuantizer":
        modules = quantizable_layers(self.model)
        for name, module in modules.items():
            object.__setattr__(
                module,
                "weight_fake_quant",
                _BaselineHook(self.scheme.quantize_weight, self.weight_states[name]),
            )
            if not self.weights_only:
                object.__setattr__(
                    module,
                    "input_fake_quant",
                    _BaselineHook(self.scheme.quantize_activation, self.act_states[name]),
                )
        return self

    def remove(self) -> None:
        for module in quantizable_layers(self.model).values():
            object.__setattr__(module, "weight_fake_quant", None)
            object.__setattr__(module, "input_fake_quant", None)

    def average_bits(self) -> float:
        """Element-weighted average memory bits over all quantized tensors."""
        total_bits = 0.0
        total_elems = 0
        modules = quantizable_layers(self.model)
        for name, module in modules.items():
            n_w = module.weight.data.size
            acct = self.scheme.accounting(self.weight_states[name], n_w)
            total_bits += acct.memory_bits * n_w
            total_elems += n_w
            if not self.weights_only and name in self._captured:
                n_a = self._captured[name].size
                acct_a = self.scheme.accounting(self.act_states[name], n_a)
                total_bits += acct_a.memory_bits * n_a
                total_elems += n_a
        return total_bits / total_elems if total_elems else 0.0
