"""AdaptiveFloat [Tambe et al., DAC 2020].

A low-bit float whose per-tensor exponent bias is chosen to match the
tensor's dynamic range, minimising quantization MSE.  The paper's
Table I uses the 8-bit configuration, which is what AdaFloat needs to
retain original accuracy; its decoder costs +14.5% area over int.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineQuantizer, BitAccounting
from repro.dtypes.float_type import FloatType
from repro.quant.functional import quantize_dequantize
from repro.quant.scale_search import search_scale


class AdaFloatQuantizer(BaselineQuantizer):
    """Float with adaptive per-tensor exponent bias.

    Parameters
    ----------
    bits:
        Total bit width (paper evaluates 8-bit AdaFloat).
    exp_bits:
        Exponent width of the magnitude field; remaining bits are
        mantissa (minus a sign bit for signed tensors).
    bias_range:
        Half-width of the bias search window around the range-matching
        bias.
    """

    def __init__(self, bits: int = 8, exp_bits: int = 4, bias_range: int = 4) -> None:
        self.bits = bits
        self.exp_bits = exp_bits
        self.bias_range = bias_range
        self.name = f"adafloat{bits}"

    def _format(self, signed: bool, bias: int) -> FloatType:
        man_bits = self.bits - self.exp_bits - (1 if signed else 0)
        if man_bits < 0:
            raise ValueError(
                f"bits={self.bits} too small for exp_bits={self.exp_bits}"
            )
        return FloatType(self.exp_bits, man_bits, signed=signed, bias=bias)

    def _calibrate(self, x: np.ndarray, signed: bool) -> dict:
        peak = float(np.max(np.abs(x)))
        peak = max(peak, np.finfo(np.float64).tiny)
        # Range-matching bias: set the top binade near the tensor peak,
        # then search +-bias_range around it for the MSE optimum.
        default = self._format(signed, 0)
        center = int(np.round(np.log2(default.max_value) - np.log2(peak)))
        best = None
        for bias in range(center - self.bias_range, center + self.bias_range + 1):
            dtype = self._format(signed, bias)
            result = search_scale(x, dtype, num_coarse=12, num_fine=6)
            if best is None or result.mse < best["mse"]:
                best = {"dtype": dtype, "scale": result.scale, "mse": result.mse, "bias": bias}
        return best

    def calibrate_weight(self, w: np.ndarray) -> dict:
        return self._calibrate(w, signed=True)

    def calibrate_activation(self, a: np.ndarray) -> dict:
        return self._calibrate(a, signed=bool(np.min(a) < 0))

    def quantize_weight(self, w: np.ndarray, state: dict) -> np.ndarray:
        return quantize_dequantize(w, state["dtype"], state["scale"])

    quantize_activation = quantize_weight

    def accounting(self, state: dict, n_elements: int) -> BitAccounting:
        return BitAccounting(
            memory_bits=float(self.bits),
            compute_bits=float(self.bits),
            aligned=True,
        )
