"""BitFusion [Sharma et al., ISCA 2018]: tensor-wise mixed 4/8-bit int.

BitFusion composes low-bit PEs spatially so each tensor can use 4-bit
or 8-bit int.  Its primitive type is still ``int``, which is what
limits it to ~7.07 average bits in Table I: without intra-tensor
adaptivity many tensors need 8 bits to hold accuracy.

Tensor-level selection rule used here: try int4 first; keep it only if
the MSE-optimal 4-bit error is below ``mse_budget`` times the tensor's
variance, otherwise fall back to int8.  Model-level escalation (the
fine-tune-in-the-loop procedure) reuses the generic mixed-precision
driver with an int-only candidate list instead.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineQuantizer, BitAccounting
from repro.dtypes.int_type import IntType
from repro.quant.functional import quantize_dequantize
from repro.quant.scale_search import search_scale


class BitFusionQuantizer(BaselineQuantizer):
    """4/8-bit mixed int quantization."""

    def __init__(self, low_bits: int = 4, high_bits: int = 8, mse_budget: float = 0.01) -> None:
        self.low_bits = low_bits
        self.high_bits = high_bits
        self.mse_budget = mse_budget
        self.name = f"bitfusion{low_bits}-{high_bits}"

    def _calibrate(self, x: np.ndarray, signed: bool) -> dict:
        low = IntType(self.low_bits, signed)
        low_result = search_scale(x, low)
        variance = float(np.var(x)) + np.finfo(np.float64).tiny
        if low_result.mse <= self.mse_budget * variance:
            return {
                "dtype": low,
                "scale": low_result.scale,
                "mse": low_result.mse,
                "bits": self.low_bits,
            }
        high = IntType(self.high_bits, signed)
        high_result = search_scale(x, high)
        return {
            "dtype": high,
            "scale": high_result.scale,
            "mse": high_result.mse,
            "bits": self.high_bits,
        }

    def calibrate_weight(self, w: np.ndarray) -> dict:
        return self._calibrate(w, signed=True)

    def calibrate_activation(self, a: np.ndarray) -> dict:
        return self._calibrate(a, signed=bool(np.min(a) < 0))

    def quantize_weight(self, w: np.ndarray, state: dict) -> np.ndarray:
        return quantize_dequantize(w, state["dtype"], state["scale"])

    quantize_activation = quantize_weight

    def accounting(self, state: dict, n_elements: int) -> BitAccounting:
        bits = float(state["bits"])
        return BitAccounting(memory_bits=bits, compute_bits=bits, aligned=True)
