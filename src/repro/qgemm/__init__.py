"""Code-domain GEMM engine (the paper's decode-in-front-of-MAC dataflow).

The accelerator's core architectural claim (Sec. VI) is that it
multiplies *codes*: operands stay in their packed low-bit encodings all
the way to the MAC inputs, where a tiny per-operand decoder feeds the
multiplier -- no dequantized floats are ever materialized.  The float
runtime backend hides that dataflow (it decodes once into a cached
float matrix and lets BLAS run); this package executes it.

* :mod:`repro.qgemm.luts` -- per-(weight-type x activation-type)
  partial-product tables built off the shared
  :class:`~repro.dtypes.codec.GridCodec` grids: entry ``[cw, ca]`` is
  the exact product of weight code ``cw``'s decoded value and
  activation grid point ``ca`` (the software stand-in for the decoder
  pair in front of one MAC).
* :mod:`repro.qgemm.kernels` -- vectorized accumulation over those
  tables, selected per layer at compile time: a *pair* kernel
  gathering from a pair-product-sum table (one lookup retires two
  MACs; optional int16/int32 integer accumulation, exact under the
  dyadic certificate), a *popcount* kernel for 1-2-bit operand pairs
  (packed indicator planes, ``popcount(a & w)``), plus the blocked
  *gather* kernel (one lookup per MAC, bit-identical to the
  decode-then-multiply reference in float64) and the *bincount*
  kernel (joint-code histogram; exact when the table is integral).
* :mod:`repro.qgemm.backend` -- the ``"qgemm"`` execution backend for
  the frozen runtime: linear/conv GEMMs run on packed codes, with
  per-channel scales applied once at the output.
* :mod:`repro.qgemm.costmodel` -- counts actual code-domain MACs, LUT
  lookups, and packed-byte traffic during execution, and bridges the
  executed workload into the :mod:`repro.hardware` latency/energy
  models (Fig. 13-style estimates driven by real forwards instead of
  analytic layer tables).

Select it with ``FrozenModel.set_backend("qgemm")``, or thread a
``backend="qgemm"`` argument through ``ModelQuantizer.freeze``,
``FrozenModel.load``, or ``ServingPool``.
"""

from repro.qgemm.backend import QGemmBackend
from repro.qgemm.costmodel import (
    CostMeter,
    LayerCost,
    executed_assignment,
    simulate_executed,
    simulate_executed_tensorcore,
)
from repro.qgemm.kernels import (
    code_gemm,
    code_gemm_bincount,
    code_gemm_gather,
    code_gemm_pair,
    code_gemm_popcount,
    select_kernel,
)
from repro.qgemm.luts import (
    PairProductLUT,
    PartialProductLUT,
    lut_footprint_report,
    pair_product_lut,
    partial_product_lut,
)

__all__ = [
    "QGemmBackend",
    "CostMeter",
    "LayerCost",
    "PairProductLUT",
    "PartialProductLUT",
    "code_gemm",
    "code_gemm_bincount",
    "code_gemm_gather",
    "code_gemm_pair",
    "code_gemm_popcount",
    "executed_assignment",
    "lut_footprint_report",
    "pair_product_lut",
    "partial_product_lut",
    "select_kernel",
    "simulate_executed",
    "simulate_executed_tensorcore",
]
