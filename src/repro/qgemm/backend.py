"""The ``"qgemm"`` execution backend: GEMMs on packed codes.

Compiled per layer at ``set_backend`` time:

* the packed weight bitstream is unpacked **once** into a code-word
  matrix shaped for the layer's GEMM (never into floats);
* the layer's :class:`~repro.runtime.engine.FrozenActQuant` supplies
  activation *grid indices* (:meth:`indices`) instead of gathered
  values -- the same nearest-grid kernels, minus the value LUT;
* accumulation runs over the type pair's partial-product table
  (:mod:`repro.qgemm.kernels`), and the per-channel weight scales times
  the activation scale are applied **once at the output**, exactly
  where the paper's activation unit re-quantizes (Fig. 4) -- inner
  loops never see a float scale.

The accumulation kernel is chosen **per layer at compile time** by
:func:`~repro.qgemm.kernels.select_kernel` from static layer facts --
operand bits (pair/popcount feasibility), table size, and reduction
depth against the exactness certificate's bounds -- and the choice is
baked into the compiled executor along with its loop-invariant weight
state (joint offsets, pair codes, or indicator planes).  The cost
meter therefore accounts the kernel that *actually ran*.

In float64 the backend holds the runtime's bit-exact bar: the gather
kernel reproduces the decode-then-multiply products verbatim, and the
pair/popcount kernels are only selected when the dyadic certificate
proves their result order-independent (hence bit-identical).  The only
deviation from the float backend is the output-side scale
reassociation, far below the 1e-9 end-to-end tolerance.  In float32
mode (serving), a conv's marked batch-norm fold is honored by folding
the BN's per-channel affine into the output scale/shift instead of into
GEMM weights (codes cannot absorb a float scale).

Compiled hot paths skip the per-forward activation min/max scan: the
indices come from :meth:`FrozenActQuant.indices`, which clips to the
grid by construction.  Set ``REPRO_QGEMM_CHECK=1`` to re-enable the
scan (debugging hand-fed index streams).

Layers the backend cannot execute in the code domain keep the float
kernels: unquantized layers (no export) and weight-only exports (no
activation codes to multiply).
"""

from __future__ import annotations

import os

from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.dtypes.codec import unpack_codes
from repro.qgemm.costmodel import CostMeter
from repro.qgemm.kernels import (
    PAIR_STATIONARY_TOTAL_MAX_ELEMS,
    code_gemm_bincount,
    code_gemm_gather,
    code_gemm_pair,
    code_gemm_pair_stationary,
    code_gemm_popcount,
    im2col_codes_nchw,
    im2col_codes_nhwc,
    pair_stationary_tables,
    pair_weight_codes,
    popcount_cells,
    popcount_weight_planes,
    select_kernel,
    weight_joint_offsets,
)
from repro.qgemm.luts import pair_product_lut, partial_product_lut
from repro.runtime.backends import ExecutionBackend, register_backend

_INT32_LIMIT = float(2**31 - 1)
_FLOAT64_LIMIT = 2.0**53


def _weight_codes(export) -> np.ndarray:
    """Unpack a :class:`PackedTensor` back to its code-word tensor."""
    packed = export.weight
    return unpack_codes(packed.packed, packed.bits, packed.size).reshape(
        packed.shape
    )


def _kernel_counters(executed: str):
    """Registry counters for one compiled layer's executed kernel.

    Bound to the process-global registry at compile time (a serving
    worker calls ``set_backend`` after installing its own registry), so
    the per-forward cost is two attribute increments; ``(None, None)``
    with ``REPRO_OBS=0``.  These join the cost meter's per-layer rows:
    the meter answers "what would this cost on the accelerator", the
    counters answer "which kernel families actually ran, how often".
    """
    if not obs.enabled():
        return None, None
    registry = obs.get_registry()
    return (
        registry.counter("qgemm.kernel_calls_total", kernel=executed),
        registry.counter("qgemm.kernel_rows_total", kernel=executed),
    )


def _output_scale(export) -> np.ndarray:
    """Per-output-channel scale applied once after accumulation.

    ``weight_scale * act_scale`` -- a ``(c_out,)`` vector for
    per-channel weights (``channel_axis == 0``), a scalar otherwise.
    """
    packed = export.weight
    scales = np.asarray(packed.scales, dtype=np.float64)
    return scales * float(export.act_scale)


@register_backend("qgemm")
class QGemmBackend(ExecutionBackend):
    """Code-domain execution over partial-product LUTs.

    Parameters
    ----------
    mode:
        Accumulation kernel: ``"auto"`` (default) resolves per layer
        through :func:`~repro.qgemm.kernels.select_kernel` -- the
        fastest kernel whose exactness certificate holds in float64,
        the fastest outright in float32.  Explicit modes (``"gather"``,
        ``"bincount"``, ``"pair"``, ``"pair-int"``, ``"popcount"``)
        force one kernel for every layer and are rejected at compile
        time when the forced kernel is infeasible (no pair table under
        the footprint policy) or would break the float64 bit-exact bar
        (non-integral bincount, uncertified pair/popcount depth).
    meter:
        Optional :class:`~repro.qgemm.costmodel.CostMeter` that every
        compiled layer reports executed MACs / LUT lookups /
        packed-byte traffic into.
    """

    MODES = ("auto", "gather", "bincount", "pair", "pair-int", "popcount")

    def __init__(self, mode: str = "auto", meter: Optional[CostMeter] = None):
        if mode not in self.MODES:
            raise ValueError(f"unknown qgemm mode {mode!r}")
        self.mode = mode
        self.meter = meter
        # hot-path operand validation is off by default: compiled layers
        # consume FrozenActQuant.indices() output, in range by
        # construction.  Debug flag re-enables the min/max scans.
        self._check = os.environ.get("REPRO_QGEMM_CHECK", "") not in ("", "0")

    # ------------------------------------------------------------------
    def _layer_kernel(self, lut, compute_dtype, k_dim: int) -> str:
        """Resolve the accumulation kernel for one layer at compile time.

        The auto rule is static per layer (operand bits, table
        integrality and size, reduction depth vs. the certificate's
        bounds), so the choice is baked into the executor -- and the
        cost meter can account lookups for the kernel that actually
        runs.  Forced modes are validated here so infeasible or
        exactness-breaking requests fail at ``set_backend`` time, not
        mid-forward.
        """
        if self.mode == "auto":
            return select_kernel(lut, k_dim, compute_dtype)
        exact_needed = compute_dtype == np.float64
        if self.mode == "bincount" and not lut.integral and exact_needed:
            raise ValueError(
                "bincount accumulation is not exact for the non-integral "
                f"{lut.w_dtype_name}x{lut.a_dtype_name} table; the float64 "
                "engine requires an exact kernel (use mode='auto' or 'gather')"
            )
        if self.mode in ("pair", "pair-int"):
            pair = pair_product_lut(lut.w_dtype_name, lut.a_dtype_name)
            if pair is None:
                raise ValueError(
                    f"no pair table for {lut.w_dtype_name}x"
                    f"{lut.a_dtype_name} (exceeds the footprint policy); "
                    "use a single-code kernel"
                )
            depth = (k_dim + 1) // 2 + 1
            if self.mode == "pair-int":
                if not pair.int16_ok or depth > pair.exact_pair_depth(
                    _INT32_LIMIT
                ):
                    raise ValueError(
                        "int32 accumulation is not certified exact for "
                        f"{lut.w_dtype_name}x{lut.a_dtype_name} at depth "
                        f"{k_dim} (use mode='auto')"
                    )
            elif exact_needed and depth > pair.exact_pair_depth(
                _FLOAT64_LIMIT
            ):
                raise ValueError(
                    "pair accumulation cannot certify float64 "
                    f"bit-exactness for {lut.w_dtype_name}x"
                    f"{lut.a_dtype_name} at depth {k_dim} "
                    "(use mode='auto' or 'gather')"
                )
        if self.mode == "popcount" and exact_needed and (
            lut.exact_exp is None
            or k_dim * max(lut.max_scaled_abs, 1.0) >= _FLOAT64_LIMIT
        ):
            raise ValueError(
                "popcount accumulation is not certified exact for "
                f"{lut.w_dtype_name}x{lut.a_dtype_name} at depth {k_dim}; "
                "the float64 engine requires an exact kernel"
            )
        return self.mode

    # ------------------------------------------------------------------
    def _compile_gemm(self, wcodes, lut, kernel: str, compute_dtype,
                      out_scale=None):
        """Bake one layer's kernel into a closure over its loop-invariant
        weight-side state.

        Returns ``(gemm, table_bytes, word_ops_per_row, scale_folded,
        executed)``: ``gemm(rows)`` maps ``(rows, k)`` activation
        indices to the ``(rows, cols)`` accumulator; ``table_bytes`` is
        the footprint of the table the kernel actually gathers (pair
        vs. base, int16 vs. float, or the per-layer stationary table);
        ``word_ops_per_row`` is the popcount kernel's uint64 word
        operations per GEMM row (zero for the other kernels).  When
        ``scale_folded`` is True the float32 pair path baked
        ``out_scale`` into its stationary table and the caller must
        skip the output-scale pass.  ``executed`` is the kernel label
        the closure actually runs -- ``"pair-stat"`` when the
        weight-stationary table replaced the per-column pair loop --
        so the cost meter records the executed kernel mix, not just
        the selection mode.
        """
        check = self._check
        itemsize = np.dtype(compute_dtype).itemsize
        if kernel in ("pair", "pair-int"):
            pair = pair_product_lut(lut.w_dtype_name, lut.a_dtype_name)
            w_pair, w_tail = pair_weight_codes(wcodes, pair)
            int_acc = kernel == "pair-int"

            # float32 serving: bake a per-layer weight-stationary table
            # (output scale folded in) when it fits the memory cap;
            # tables past the per-pass budget execute in k-chunks
            # instead of falling back to the per-column loop.  The
            # float64 engine never takes this path -- its pair
            # selection is certificate-gated and replays code_gemm_pair.
            stat_elems = (
                w_pair.shape[0] * pair.n_act_cols**2 * w_pair.shape[1]
            )
            if (
                not int_acc
                and compute_dtype == np.float32
                and 0 < stat_elems <= PAIR_STATIONARY_TOTAL_MAX_ELEMS
            ):
                stat, tail = pair_stationary_tables(
                    w_pair, w_tail, pair, compute_dtype, out_scale
                )

                def gemm(rows: np.ndarray) -> np.ndarray:
                    return code_gemm_pair_stationary(
                        rows, stat, tail, pair, compute_dtype, check=check,
                    )

                table_bytes = stat.nbytes + (
                    0 if tail is None else tail.nbytes
                )
                return gemm, table_bytes, 0, out_scale is not None, "pair-stat"

            def gemm(rows: np.ndarray) -> np.ndarray:
                return code_gemm_pair(
                    rows, None, pair, compute_dtype,
                    w_pair=w_pair, w_tail_joint=w_tail,
                    int_accumulate=int_acc, check=check,
                )

            table_bytes = pair.table.size * (2 if int_acc else itemsize)
            return gemm, table_bytes, 0, False, kernel
        if kernel == "popcount":
            w_planes = popcount_weight_planes(wcodes, lut)
            n_cells = len(popcount_cells(w_planes, lut))
            cols, n_words = w_planes.shape[1], w_planes.shape[2]

            def gemm(rows: np.ndarray) -> np.ndarray:
                return code_gemm_popcount(
                    rows, None, lut, compute_dtype,
                    w_planes=w_planes, check=check,
                )

            return gemm, lut.table.nbytes, cols * n_words * n_cells, False, kernel
        w_joint = weight_joint_offsets(wcodes, lut)
        if kernel == "bincount":

            def gemm(rows: np.ndarray) -> np.ndarray:
                return code_gemm_bincount(
                    rows, None, lut, compute_dtype,
                    w_joint=w_joint, check=check,
                )

            return gemm, lut.table.nbytes, 0, False, kernel

        def gemm(rows: np.ndarray) -> np.ndarray:
            return code_gemm_gather(
                rows, None, lut, compute_dtype,
                w_joint=w_joint, check=check,
            )

        return gemm, lut.table.size * itemsize, 0, False, kernel

    def _compile_common(self, layer, k_dim: int):
        """Shared state; None when the layer must stay on float kernels."""
        export = layer.export
        if export is None or export.act_dtype_name is None:
            return None  # unquantized, or weight-only (no act codes)
        if export.weight.channel_axis not in (None, 0):
            return None  # no known producer; keep the float path
        compute_dtype = np.dtype(
            getattr(layer, "w_t", getattr(layer, "w_mat", None)).dtype
        )
        lut = partial_product_lut(
            export.weight.dtype_name, export.act_dtype_name
        )
        kernel = self._layer_kernel(lut, compute_dtype, k_dim)
        out_scale = _output_scale(export).astype(compute_dtype)
        bias = None if layer.bias is None else np.asarray(layer.bias)
        return export, lut, kernel, compute_dtype, out_scale, bias

    # ------------------------------------------------------------------
    def compile_linear(self, layer) -> Optional[Callable]:
        if layer.export is None:
            return None
        common = self._compile_common(layer, k_dim=layer.export.weight.shape[1])
        if common is None:
            return None
        export, lut, kernel, compute_dtype, out_scale, bias = common
        wcodes = np.ascontiguousarray(_weight_codes(export).T)  # (in, out)
        k_dim, out_features = wcodes.shape
        # all weight-side state (joint offsets / pair codes / indicator
        # planes) is loop-invariant: validated and precomputed once here
        gemm, table_bytes, word_ops_per_row, scale_folded, executed = self._compile_gemm(
            wcodes, lut, kernel, compute_dtype, out_scale=out_scale
        )
        act_quant = layer.act_quant
        meter = self.meter
        calls_total, rows_total = _kernel_counters(executed)

        def run(x: np.ndarray) -> np.ndarray:
            idx = act_quant.indices(x)
            lead = x.shape[:-1]
            rows = idx.reshape(-1, k_dim)
            acc = gemm(rows)
            out = acc if scale_folded else acc * out_scale
            if bias is not None:
                out += bias
            if calls_total is not None:
                calls_total.inc()
                rows_total.inc(rows.shape[0])
            if meter is not None:
                meter.record_layer(
                    export, kind="linear", rows=rows.shape[0],
                    k=k_dim, cols=out_features, lut=lut, kernel=executed,
                    input_elems=x.size, table_bytes=table_bytes,
                    word_ops=rows.shape[0] * word_ops_per_row,
                )
            return out.reshape(lead + (out_features,))

        run.kernel_label = obs.labels.qgemm_kernel_label(executed)
        return run

    # ------------------------------------------------------------------
    def compile_conv2d(self, layer) -> Optional[Callable]:
        if layer.export is None:
            return None
        shape = layer.export.weight.shape
        common = self._compile_common(
            layer, k_dim=int(np.prod(shape[1:], dtype=np.int64))
        )
        if common is None:
            return None
        export, lut, kernel_mode, compute_dtype, out_scale, bias = common
        codes = _weight_codes(export)  # (c_out, c_in, kh, kw)
        c_out = codes.shape[0]
        if layer.layout == "nhwc":
            wcodes = np.ascontiguousarray(
                codes.transpose(2, 3, 1, 0).reshape(-1, c_out)
            )
            im2col = im2col_codes_nhwc
        else:
            wcodes = np.ascontiguousarray(codes.reshape(c_out, -1).T)
            im2col = im2col_codes_nchw
        k_dim = wcodes.shape[0]

        # float32 serving honors a marked conv+BN fold by folding the
        # BN affine into the *output* scale/shift (codes cannot absorb
        # a float scale); the float64 engine keeps BN as its own pass.
        # Resolved before kernel compilation so the stationary pair
        # path can bake the final scale into its table.
        scale, shift = out_scale, bias
        bn = getattr(layer, "_bn", None)
        if bn is not None and compute_dtype != np.float64:
            bn_scale, bn_shift = bn.affine()
            scale = (out_scale * bn_scale).astype(compute_dtype)
            shift = (bn_shift if bias is None else bias * bn_scale + bn_shift)
            shift = np.ascontiguousarray(shift, dtype=compute_dtype)

        gemm, table_bytes, word_ops_per_row, scale_folded, executed = self._compile_gemm(
            wcodes, lut, kernel_mode, compute_dtype, out_scale=scale
        )
        kernel, stride, padding = layer.kernel, layer.stride, layer.padding
        layout = layer.layout
        act_quant = layer.act_quant
        meter = self.meter
        calls_total, rows_total = _kernel_counters(executed)

        def run(x: np.ndarray) -> np.ndarray:
            idx = act_quant.indices(x)
            rows = im2col(idx, kernel, stride, padding, lut.pad_col)
            acc = gemm(rows)
            out = acc if scale_folded else acc * scale
            if shift is not None:
                out += shift
            if calls_total is not None:
                calls_total.inc()
                rows_total.inc(rows.shape[0])
            if meter is not None:
                # input_elems is the *unique* (pre-im2col) activation
                # footprint -- what the accelerator's DRAM/buffer
                # actually move -- not the kh*kw-replicated GEMM rows
                meter.record_layer(
                    export, kind="conv2d", rows=rows.shape[0],
                    k=k_dim, cols=c_out, lut=lut, kernel=executed,
                    input_elems=x.size, table_bytes=table_bytes,
                    word_ops=rows.shape[0] * word_ops_per_row,
                )
            if layout == "nhwc":
                n, h, w = x.shape[0], x.shape[1], x.shape[2]
            else:
                n, h, w = x.shape[0], x.shape[2], x.shape[3]
            out_h = (h + 2 * padding[0] - kernel[0]) // stride[0] + 1
            out_w = (w + 2 * padding[1] - kernel[1]) // stride[1] + 1
            out = out.reshape(n, out_h, out_w, c_out)
            if layout == "nhwc":
                return out
            return np.ascontiguousarray(out.transpose(0, 3, 1, 2))

        run.kernel_label = obs.labels.qgemm_kernel_label(executed)
        return run
