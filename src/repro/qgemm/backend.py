"""The ``"qgemm"`` execution backend: GEMMs on packed codes.

Compiled per layer at ``set_backend`` time:

* the packed weight bitstream is unpacked **once** into a code-word
  matrix shaped for the layer's GEMM (never into floats);
* the layer's :class:`~repro.runtime.engine.FrozenActQuant` supplies
  activation *grid indices* (:meth:`indices`) instead of gathered
  values -- the same nearest-grid kernels, minus the value LUT;
* accumulation runs over the type pair's partial-product table
  (:mod:`repro.qgemm.kernels`), and the per-channel weight scales times
  the activation scale are applied **once at the output**, exactly
  where the paper's activation unit re-quantizes (Fig. 4) -- inner
  loops never see a float scale.

In float64 the backend holds the runtime's bit-exact bar: the gather
kernel reproduces the decode-then-multiply products verbatim, and the
only deviation from the float backend is the output-side scale
reassociation, far below the 1e-9 end-to-end tolerance.  In float32
mode (serving), a conv's marked batch-norm fold is honored by folding
the BN's per-channel affine into the output scale/shift instead of into
GEMM weights (codes cannot absorb a float scale).

Layers the backend cannot execute in the code domain keep the float
kernels: unquantized layers (no export) and weight-only exports (no
activation codes to multiply).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.dtypes.codec import unpack_codes
from repro.qgemm.costmodel import CostMeter
from repro.qgemm.kernels import (
    code_gemm,
    im2col_codes_nchw,
    im2col_codes_nhwc,
    weight_joint_offsets,
)
from repro.qgemm.luts import partial_product_lut
from repro.runtime.backends import ExecutionBackend, register_backend


def _weight_codes(export) -> np.ndarray:
    """Unpack a :class:`PackedTensor` back to its code-word tensor."""
    packed = export.weight
    return unpack_codes(packed.packed, packed.bits, packed.size).reshape(
        packed.shape
    )


def _output_scale(export) -> np.ndarray:
    """Per-output-channel scale applied once after accumulation.

    ``weight_scale * act_scale`` -- a ``(c_out,)`` vector for
    per-channel weights (``channel_axis == 0``), a scalar otherwise.
    """
    packed = export.weight
    scales = np.asarray(packed.scales, dtype=np.float64)
    return scales * float(export.act_scale)


@register_backend("qgemm")
class QGemmBackend(ExecutionBackend):
    """Code-domain execution over partial-product LUTs.

    Parameters
    ----------
    mode:
        Accumulation kernel: ``"auto"`` (default; bincount where exact
        and cheaper, gather otherwise -- the bit-exact float64 engine
        always gets an exact kernel), ``"gather"``, or ``"bincount"``
        (rejected at compile time for layers whose table is
        non-integral when compute runs in float64, since the histogram
        contraction would reassociate the bit-exact sum).
    meter:
        Optional :class:`~repro.qgemm.costmodel.CostMeter` that every
        compiled layer reports executed MACs / LUT lookups /
        packed-byte traffic into.
    """

    def __init__(self, mode: str = "auto", meter: Optional[CostMeter] = None):
        if mode not in ("auto", "gather", "bincount"):
            raise ValueError(f"unknown qgemm mode {mode!r}")
        self.mode = mode
        self.meter = meter

    # ------------------------------------------------------------------
    def _layer_kernel(self, lut, compute_dtype, k_dim: int) -> str:
        """Resolve the accumulation kernel for one layer at compile time.

        The auto rule is static per layer (table integrality and size,
        reduction depth), so the choice is baked into the executor --
        and the cost meter can account lookups for the kernel that
        actually runs.
        """
        if self.mode == "bincount" and not lut.integral and compute_dtype == np.float64:
            raise ValueError(
                "bincount accumulation is not exact for the non-integral "
                f"{lut.w_dtype_name}x{lut.a_dtype_name} table; the float64 "
                "engine requires an exact kernel (use mode='auto' or 'gather')"
            )
        if self.mode != "auto":
            return self.mode
        return (
            "bincount" if lut.integral and lut.table.size < k_dim else "gather"
        )

    def _compile_common(self, layer, k_dim: int):
        """Shared state; None when the layer must stay on float kernels."""
        export = layer.export
        if export is None or export.act_dtype_name is None:
            return None  # unquantized, or weight-only (no act codes)
        if export.weight.channel_axis not in (None, 0):
            return None  # no known producer; keep the float path
        compute_dtype = np.dtype(
            getattr(layer, "w_t", getattr(layer, "w_mat", None)).dtype
        )
        lut = partial_product_lut(
            export.weight.dtype_name, export.act_dtype_name
        )
        kernel = self._layer_kernel(lut, compute_dtype, k_dim)
        out_scale = _output_scale(export).astype(compute_dtype)
        bias = None if layer.bias is None else np.asarray(layer.bias)
        return export, lut, kernel, compute_dtype, out_scale, bias

    # ------------------------------------------------------------------
    def compile_linear(self, layer) -> Optional[Callable]:
        if layer.export is None:
            return None
        common = self._compile_common(layer, k_dim=layer.export.weight.shape[1])
        if common is None:
            return None
        export, lut, kernel, compute_dtype, out_scale, bias = common
        wcodes = np.ascontiguousarray(_weight_codes(export).T)  # (in, out)
        k_dim, out_features = wcodes.shape
        # weight-side joint offsets are loop-invariant: validated and
        # pre-scaled once here instead of per forward
        w_joint = weight_joint_offsets(wcodes, lut)
        act_quant = layer.act_quant
        meter = self.meter

        def run(x: np.ndarray) -> np.ndarray:
            idx = act_quant.indices(x)
            lead = x.shape[:-1]
            rows = idx.reshape(-1, k_dim)
            acc = code_gemm(rows, None, lut, compute_dtype, kernel, w_joint=w_joint)
            out = acc * out_scale
            if bias is not None:
                out += bias
            if meter is not None:
                meter.record_layer(
                    export, kind="linear", rows=rows.shape[0],
                    k=k_dim, cols=out_features, lut=lut, kernel=kernel,
                )
            return out.reshape(lead + (out_features,))

        return run

    # ------------------------------------------------------------------
    def compile_conv2d(self, layer) -> Optional[Callable]:
        if layer.export is None:
            return None
        shape = layer.export.weight.shape
        common = self._compile_common(
            layer, k_dim=int(np.prod(shape[1:], dtype=np.int64))
        )
        if common is None:
            return None
        export, lut, kernel_mode, compute_dtype, out_scale, bias = common
        codes = _weight_codes(export)  # (c_out, c_in, kh, kw)
        c_out = codes.shape[0]
        if layer.layout == "nhwc":
            wcodes = np.ascontiguousarray(
                codes.transpose(2, 3, 1, 0).reshape(-1, c_out)
            )
            im2col = im2col_codes_nhwc
        else:
            wcodes = np.ascontiguousarray(codes.reshape(c_out, -1).T)
            im2col = im2col_codes_nchw
        k_dim = wcodes.shape[0]
        w_joint = weight_joint_offsets(wcodes, lut)
        kernel, stride, padding = layer.kernel, layer.stride, layer.padding
        layout = layer.layout
        act_quant = layer.act_quant
        meter = self.meter

        # float32 serving honors a marked conv+BN fold by folding the
        # BN affine into the *output* scale/shift (codes cannot absorb
        # a float scale); the float64 engine keeps BN as its own pass.
        scale, shift = out_scale, bias
        bn = getattr(layer, "_bn", None)
        if bn is not None and compute_dtype != np.float64:
            bn_scale, bn_shift = bn.affine()
            scale = (out_scale * bn_scale).astype(compute_dtype)
            shift = (bn_shift if bias is None else bias * bn_scale + bn_shift)
            shift = np.ascontiguousarray(shift, dtype=compute_dtype)

        def run(x: np.ndarray) -> np.ndarray:
            idx = act_quant.indices(x)
            rows = im2col(idx, kernel, stride, padding, lut.pad_col)
            acc = code_gemm(
                rows, None, lut, compute_dtype, kernel_mode, w_joint=w_joint
            )
            out = acc * scale
            if shift is not None:
                out += shift
            if meter is not None:
                meter.record_layer(
                    export, kind="conv2d", rows=rows.shape[0],
                    k=k_dim, cols=c_out, lut=lut, kernel=kernel_mode,
                )
            if layout == "nhwc":
                n, h, w = x.shape[0], x.shape[1], x.shape[2]
            else:
                n, h, w = x.shape[0], x.shape[2], x.shape[3]
            out_h = (h + 2 * padding[0] - kernel[0]) // stride[0] + 1
            out_w = (w + 2 * padding[1] - kernel[1]) // stride[1] + 1
            out = out.reshape(n, out_h, out_w, c_out)
            if layout == "nhwc":
                return out
            return np.ascontiguousarray(out.transpose(0, 3, 1, 2))

        return run
