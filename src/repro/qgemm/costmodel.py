"""Execution-driven cost accounting and the bridge to the hardware model.

The :mod:`repro.hardware` latency/energy models (Fig. 13) were driven
by *analytic* layer tables -- public architecture shapes at a fixed
batch.  A :class:`CostMeter` instead rides inside the ``qgemm``
backend and counts what a forward **actually executed**: code-domain
MACs (one per LUT lookup in the gather kernel), partial-product table
lookups, and packed-byte traffic (weight bitstreams at their true bit
widths, activation codes at theirs).  The bridge functions then replay
that executed workload through the existing
:class:`~repro.hardware.accelerator.Accelerator` and
:func:`~repro.hardware.tensorcore.simulate_tensorcore` models, so
cycle/energy estimates inherit real batch sizes, real im2col expansion,
and real per-layer bit assignments (including mixed-precision
escalations) instead of assumptions about them.

Usage::

    meter = CostMeter()
    frozen.set_backend(QGemmBackend(meter=meter))
    frozen.predict(x)
    result = simulate_executed(meter, "ant-os")   # SimulationResult
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dtypes.codec import packed_nbytes
from repro.dtypes.registry import default_registry


@dataclass
class LayerCost:
    """Accumulated execution counts for one quantized GEMM layer."""

    name: str
    kind: str  # "linear" | "conv2d"
    w_dtype: str
    a_dtype: str
    weight_bits: int
    act_bits: int
    #: GEMM dimensions: output channels, reduction depth.
    m: int
    k: int
    #: total GEMM rows executed across all recorded forwards.
    rows: int = 0
    calls: int = 0
    #: accumulation kernel the backend *executed* for this layer
    #: (``"gather"``, ``"bincount"``, ``"pair"``, ``"pair-int"``,
    #: ``"pair-stat"`` -- the float32 weight-stationary gather-reduce,
    #: possibly k-chunked -- or ``"popcount"``).
    kernel: str = "gather"
    #: code-domain multiply-accumulates (== rows * k * m summed).
    code_macs: int = 0
    #: partial-product table touches of the executed kernel: one per
    #: MAC for gather; one per *pair* of MACs (plus the odd tail) for
    #: the pair kernels; one full table sweep per output for bincount;
    #: zero for popcount, whose work is counted in ``word_ops``.
    lut_lookups: int = 0
    #: popcount kernel uint64 word operations (AND + popcount over
    #: packed indicator planes); zero for the other kernels.
    word_ops: int = 0
    #: bytes of the table the kernel actually gathers from -- the pair
    #: table at the gathered precision (int16 for ``pair-int``) rather
    #: than the base float64 table.
    lut_table_bytes: int = 0
    #: *unique* activation elements fed to the layer (pre-im2col);
    #: what the accelerator's DRAM/buffer traffic actually moves.
    input_elems: int = 0
    #: packed weight bitstream bytes, streamed once per forward call.
    weight_traffic_bytes: int = 0
    #: activation code bytes fed to the GEMM (im2col'd, at act bits).
    act_traffic_bytes: int = 0
    #: output elements produced (pre-requantization accumulators).
    output_elems: int = 0

    @property
    def packed_traffic_bytes(self) -> int:
        return self.weight_traffic_bytes + self.act_traffic_bytes

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "kernel": self.kernel,
            "w_dtype": self.w_dtype,
            "a_dtype": self.a_dtype,
            "weight_bits": self.weight_bits,
            "act_bits": self.act_bits,
            "m": self.m,
            "k": self.k,
            "rows": self.rows,
            "calls": self.calls,
            "code_macs": self.code_macs,
            "lut_lookups": self.lut_lookups,
            "word_ops": self.word_ops,
            "lut_table_bytes": self.lut_table_bytes,
            "input_elems": self.input_elems,
            "weight_traffic_bytes": self.weight_traffic_bytes,
            "act_traffic_bytes": self.act_traffic_bytes,
            "packed_traffic_bytes": self.packed_traffic_bytes,
            "output_elems": self.output_elems,
        }


@dataclass
class CostMeter:
    """Per-layer execution counters filled in by the qgemm backend."""

    layers: Dict[str, LayerCost] = field(default_factory=dict)

    def record_layer(
        self, export, kind: str, rows: int, k: int, cols: int, lut,
        kernel: str = "gather", input_elems: Optional[int] = None,
        table_bytes: Optional[int] = None, word_ops: int = 0,
    ) -> None:
        """Accumulate one executed GEMM for ``export``'s layer.

        ``input_elems`` is the call's unique (pre-im2col) activation
        element count; defaults to ``rows * k`` (exact for linear, an
        im2col-expanded overcount for convolution).  ``table_bytes``
        overrides the accounted table footprint with what the compiled
        kernel actually gathers (pair table, int16 cast); ``word_ops``
        carries the popcount kernel's executed word operations.
        """
        entry = self.layers.get(export.name)
        if entry is None:
            a_bits = default_registry.get(export.act_dtype_name).bits
            entry = self.layers[export.name] = LayerCost(
                name=export.name,
                kind=kind,
                kernel=kernel,
                w_dtype=export.weight.dtype_name,
                a_dtype=export.act_dtype_name,
                weight_bits=export.weight.bits,
                act_bits=a_bits,
                m=cols,
                k=k,
            )
        macs = rows * k * cols
        entry.rows += rows
        entry.calls += 1
        entry.code_macs += macs
        entry.kernel = kernel
        # account the table touches of the kernel that actually ran;
        # the stationary kernel fetches the same per-pair partial sums,
        # just row-contiguously from its per-layer table
        if kernel in ("pair", "pair-int", "pair-stat"):
            entry.lut_lookups += rows * cols * ((k + 1) // 2)
        elif kernel == "bincount":
            entry.lut_lookups += rows * cols * lut.table.size
        elif kernel != "popcount":
            entry.lut_lookups += macs
        entry.word_ops += word_ops
        entry.lut_table_bytes = (
            lut.nbytes if table_bytes is None else table_bytes
        )
        entry.input_elems += rows * k if input_elems is None else input_elems
        entry.weight_traffic_bytes += export.weight.packed_nbytes
        entry.act_traffic_bytes += packed_nbytes(rows * k, entry.act_bits)
        entry.output_elems += rows * cols

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.layers.clear()

    def total(self, field_name: str) -> int:
        return sum(getattr(c, field_name) for c in self.layers.values())

    def summary(self) -> dict:
        """Aggregate counters plus the per-layer table (JSON-friendly)."""
        return {
            "layers": [c.as_dict() for c in self.layers.values()],
            "total_code_macs": self.total("code_macs"),
            "total_lut_lookups": self.total("lut_lookups"),
            "total_word_ops": self.total("word_ops"),
            "total_weight_traffic_bytes": self.total("weight_traffic_bytes"),
            "total_act_traffic_bytes": self.total("act_traffic_bytes"),
            "total_packed_traffic_bytes": (
                self.total("weight_traffic_bytes") + self.total("act_traffic_bytes")
            ),
            "total_output_elems": self.total("output_elems"),
        }


# ----------------------------------------------------------------------
# Bridge into the hardware model
# ----------------------------------------------------------------------
def executed_assignment(meter: CostMeter) -> Tuple[list, list]:
    """Executed workload as (layer shapes, bit assignments).

    Each metered layer becomes one
    :class:`~repro.hardware.workloads.LayerShape` whose GEMM dimensions
    are what actually ran (``n`` = total rows executed, so MACs in the
    hardware model equal the counted code MACs exactly) and one
    :class:`~repro.hardware.accelerator.LayerAssignment` carrying the
    layer's true exported bit widths.

    ``input_elems`` is the metered *unique* activation footprint (the
    tensor the backend saw before im2col), matching the analytic layer
    tables in :mod:`repro.hardware.workloads`, which size convolution
    input traffic by the feature map, not the window-replicated GEMM
    operand.  Meters filled before this field existed (zero) fall back
    to the GEMM operand size ``rows * k``.
    """
    from repro.hardware.accelerator import LayerAssignment
    from repro.hardware.workloads import LayerShape

    shapes: List[LayerShape] = []
    assigns: List[LayerAssignment] = []
    for cost in meter.layers.values():
        shapes.append(
            LayerShape(
                name=cost.name,
                m=cost.m,
                k=cost.k,
                n=cost.rows,
                weight_elems=cost.m * cost.k,
                input_elems=cost.input_elems or cost.rows * cost.k,
                output_elems=cost.output_elems,
            )
        )
        assigns.append(LayerAssignment(cost.weight_bits, cost.act_bits))
    return shapes, assigns


def simulate_executed(meter: CostMeter, accelerator: str = "ant-os", memory=None):
    """Latency/energy of the executed workload on a catalogue design.

    Returns the same :class:`~repro.hardware.accelerator.SimulationResult`
    the Fig. 13 harness produces, but for the workload the qgemm
    backend just ran.
    """
    from repro.hardware.accelerator import build_accelerator

    if not meter.layers:
        raise ValueError("meter is empty; run a qgemm forward first")
    shapes, assigns = executed_assignment(meter)
    return build_accelerator(accelerator, memory=memory).simulate(shapes, assigns)


def simulate_executed_tensorcore(meter: CostMeter, spec=None):
    """Tensor-core roofline of the executed workload (Sec. VI-A)."""
    from repro.hardware.tensorcore import TensorCoreSpec, simulate_tensorcore

    if not meter.layers:
        raise ValueError("meter is empty; run a qgemm forward first")
    shapes, assigns = executed_assignment(meter)
    return simulate_tensorcore(shapes, assigns, spec or TensorCoreSpec())
