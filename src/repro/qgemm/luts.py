"""Partial-product lookup tables for code-domain GEMM.

One table per (weight type, activation type) pair, built from the same
:class:`~repro.dtypes.codec.GridCodec` grids every other subsystem
validates against:

* rows are indexed by the weight's **canonical code word** (all
  ``2^bits`` of them, so packed weight streams index directly without
  re-mapping -- codes outside the quantization grid, like int's unused
  most-negative pattern, simply carry their decoded value);
* columns are indexed by the activation's **grid index** (what the
  runtime's nearest-grid kernels produce), plus one trailing
  ``pad_col`` whose entries are the exact products with ``0.0`` --
  convolution zero-padding happens *after* activation quantization, so
  padded positions need a code whose partial product is zero regardless
  of the weight operand.

Entry ``[cw, ca]`` is the plain float64 product
``decode_lut[cw] * grid[ca]`` -- exactly the multiply the
decode-then-multiply reference performs element by element, which is
what lets the gather kernel match that reference bit for bit.  Scales
never enter the table: they are per-channel output factors applied once
after accumulation (the activation unit in Fig. 4), keeping the table
one small scale-free array per *type pair* rather than per layer.

A 4-bit x 4-bit pair costs ``16 x 16 x 8 B = 2 KiB`` in float64 (the
serving float32 cast halves that); the largest supported pair
(8-bit x 8-bit) is ``256 x 256 x 8 B = 512 KiB``.

**Pair tables** (:func:`pair_product_lut`) extend this to *two*
adjacent reduction positions at once: entry
``[(w0 * Nw + w1), (a0 * Na + a1)]`` is the partial-product **sum**
``table[w0, a0] + table[w1, a1]``, so one gather retires two MACs.  A
4-bit x 4-bit pair table is ``(16 * 17)^2`` entries ~ 289 KiB in
float32 -- L2-resident -- but the footprint grows with the fourth
power of the code count, so tables above
:data:`PAIR_TABLE_MAX_ELEMS` (5-bit x 5-bit and up) are refused and
those layers stay on single-code kernels.

**Exactness certificate.**  Every grid in the registry is dyadic
(integers, powers of two, flint/float significands), so most tables
admit an exponent ``e`` with ``table * 2^e`` exactly integer-valued.
When such an ``e`` exists, *any* reduction order over at most
``depth`` terms is exact as long as ``depth * max|scaled entry|``
stays below the accumulator's exact-integer range (``2^53`` for
float64, ``2^31`` for int32) -- which is what certifies the pair
kernels bit-identical to the single-gather reference, and what makes
an int16-table/int32-accumulator path exact by construction (the
paper's integer-accumulate PE in software).  Wide PoT tables (pot7/
pot8) span more than 2^53 of dynamic range, fail the certificate, and
fall back to the order-preserving gather kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional

import numpy as np

from repro.dtypes.registry import default_registry

#: pair tables above this element count are refused (policy: a pair
#: table must stay cache-resident to win; 4-bit x 4-bit is ~74 K
#: entries / 289 KiB float32, 5-bit x 5-bit would be ~1.1 M entries /
#: 4.3 MiB and already spills L2 on the reference container).
PAIR_TABLE_MAX_ELEMS = 1 << 20

#: largest scaling exponent the dyadic certificate searches; grids are
#: built from <= 8-bit exponent/significand splits, so product tables
#: need far less than this in practice.
_MAX_DYADIC_EXP = 64


def _dyadic_certificate(table: np.ndarray) -> Optional[tuple]:
    """``(exp, max_scaled_abs)`` with ``table * 2^exp`` exactly integer.

    Searches the smallest exponent ``exp`` in ``[0, 64]`` for which
    every entry times ``2^exp`` is an exact integer representable in
    float64's exact-integer range; ``None`` when the table is not
    dyadic at certifiable magnitude (non-finite entries, or spread too
    wide -- pot7/pot8).
    """
    if table.size == 0 or not np.all(np.isfinite(table)):
        return None
    for exp in range(_MAX_DYADIC_EXP + 1):
        scaled = np.ldexp(table, exp)
        top = float(np.abs(scaled).max(initial=0.0))
        if top >= 2.0**53:
            return None  # scaling further only grows the magnitude
        if np.all(scaled == np.round(scaled)):
            return exp, top
    return None


@dataclass(frozen=True)
class PartialProductLUT:
    """Precomputed code-product table for one (weight, activation) pair."""

    #: registry names of the operand types.
    w_dtype_name: str
    a_dtype_name: str
    #: ``(2^w_bits, a_grid_size + 1)`` float64 products; read-only.
    table: np.ndarray
    #: activation column encoding convolution zero-padding (all zeros).
    pad_col: int
    #: True when every entry is an exact integer (int x int pairs):
    #: histogram-weighted accumulation is then exact in float64.
    integral: bool
    #: dyadic-exactness certificate: smallest ``e`` with
    #: ``table * 2^e`` exactly integer-valued (None when no such ``e``
    #: exists at certifiable magnitude, e.g. pot7/pot8 products).
    exact_exp: Optional[int] = None
    #: ``max |table * 2^exact_exp|`` (0.0 when uncertified).
    max_scaled_abs: float = 0.0
    #: memoized dtype casts of ``table`` (read-only, like the master).
    _cast_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def n_weight_codes(self) -> int:
        return self.table.shape[0]

    @property
    def n_act_cols(self) -> int:
        return self.table.shape[1]

    @property
    def nbytes(self) -> int:
        return int(self.table.nbytes)

    def cast(self, dtype) -> np.ndarray:
        """The table in a compute dtype (float64 returns the master).

        Casts are memoized: serving gathers from the same float32 copy
        every forward instead of re-allocating one per call.
        """
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            return self.table
        cached = self._cast_cache.get(dtype.str)
        if cached is None:
            cached = self._cast_cache[dtype.str] = self.table.astype(dtype)
            cached.setflags(write=False)
        return cached

    def scaled_int16(self) -> np.ndarray:
        """``table * 2^exact_exp`` as a read-only int16 array.

        Only valid when the certificate holds and the scaled magnitude
        fits int16 (the popcount and integer-tail paths check first).
        """
        cached = self._cast_cache.get("int16-scaled")
        if cached is None:
            if self.exact_exp is None or self.max_scaled_abs > 32767:
                raise ValueError(
                    f"{self.w_dtype_name}x{self.a_dtype_name} table has no "
                    "int16-exact scaled representation"
                )
            cached = np.round(np.ldexp(self.table, self.exact_exp)).astype(
                np.int16
            )
            cached.setflags(write=False)
            self._cast_cache["int16-scaled"] = cached
        return cached


@dataclass(frozen=True)
class PairProductLUT:
    """Pair-product-sum table fusing two adjacent reduction positions.

    Entry ``[(w0 * Nw + w1), (a0 * Na + a1)]`` equals
    ``base.table[w0, a0] + base.table[w1, a1]`` -- one gather retires
    two MACs.  Activation pair columns include the pad column on either
    side, so convolution zero-padding and odd-``k`` zero columns need
    no special casing in the paired positions.
    """

    #: the single-code table this pair table squares.
    base: PartialProductLUT
    #: ``(Nw^2, Na^2)`` float64 pair sums; read-only.
    table: np.ndarray
    #: dyadic certificate inherited from the base table: the same
    #: ``2^e`` scaling makes pair sums exact integers.
    exact_exp: Optional[int]
    #: ``max |pair entry * 2^exact_exp|`` (<= 2x the base bound).
    max_scaled_abs: float
    _cast_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def n_weight_codes(self) -> int:
        """Single-code weight count ``Nw`` (pair rows are ``Nw^2``)."""
        return self.base.n_weight_codes

    @property
    def n_act_cols(self) -> int:
        """Single-code activation columns ``Na`` (pair cols ``Na^2``)."""
        return self.base.n_act_cols

    @property
    def nbytes(self) -> int:
        return int(self.table.nbytes)

    @property
    def int16_ok(self) -> bool:
        """Scaled pair entries fit an int16 table."""
        return self.exact_exp is not None and self.max_scaled_abs <= 32767

    def exact_pair_depth(self, limit: float) -> int:
        """Largest pair count ``kh`` (plus one single-code tail) whose
        scaled accumulation provably stays within ``limit``.

        Zero when the certificate failed: no depth is certified and
        float64 execution must keep the order-preserving gather kernel.
        """
        if self.exact_exp is None:
            return 0
        return int(limit / max(self.max_scaled_abs, 1.0)) - 1

    def cast(self, dtype) -> np.ndarray:
        """The pair table in a compute dtype (memoized, read-only)."""
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            return self.table
        cached = self._cast_cache.get(dtype.str)
        if cached is None:
            cached = self._cast_cache[dtype.str] = self.table.astype(dtype)
            cached.setflags(write=False)
        return cached

    def scaled_int16(self) -> np.ndarray:
        """``table * 2^exact_exp`` as a read-only int16 array."""
        cached = self._cast_cache.get("int16-scaled")
        if cached is None:
            if not self.int16_ok:
                raise ValueError(
                    f"{self.base.w_dtype_name}x{self.base.a_dtype_name} pair "
                    "table has no int16-exact scaled representation"
                )
            cached = np.round(np.ldexp(self.table, self.exact_exp)).astype(
                np.int16
            )
            cached.setflags(write=False)
            self._cast_cache["int16-scaled"] = cached
        return cached


@lru_cache(maxsize=None)
def partial_product_lut(w_dtype_name: str, a_dtype_name: str) -> PartialProductLUT:
    """Build (or fetch) the partial-product table for a type pair.

    Cached process-wide: every layer sharing a type pair shares one
    table, the way hardware shares one decoder design per type.
    """
    w_codec = default_registry.get(w_dtype_name).codec
    a_codec = default_registry.get(a_dtype_name).codec
    cols = np.concatenate([a_codec.grid, [0.0]])
    table = np.outer(w_codec.decode_lut, cols)
    table.setflags(write=False)
    with np.errstate(invalid="ignore"):
        integral = bool(
            np.all(np.isfinite(table))
            and np.all(table == np.round(table))
            and float(np.abs(table).max(initial=0.0)) < 2.0**53
        )
    certificate = _dyadic_certificate(table)
    exact_exp, max_scaled = certificate if certificate else (None, 0.0)
    return PartialProductLUT(
        w_dtype_name=w_dtype_name,
        a_dtype_name=a_dtype_name,
        table=table,
        pad_col=a_codec.grid.size,
        integral=integral,
        exact_exp=exact_exp,
        max_scaled_abs=max_scaled,
    )


@lru_cache(maxsize=None)
def pair_product_lut(
    w_dtype_name: str, a_dtype_name: str
) -> Optional[PairProductLUT]:
    """Build (or fetch) the pair-product-sum table for a type pair.

    Returns ``None`` when the pair table would exceed
    :data:`PAIR_TABLE_MAX_ELEMS` (the cache-residency policy): callers
    then stay on single-code kernels.  Cached process-wide alongside
    the base tables.
    """
    base = partial_product_lut(w_dtype_name, a_dtype_name)
    n_pair = base.n_weight_codes * base.n_weight_codes
    c_pair = base.n_act_cols * base.n_act_cols
    if n_pair * c_pair > PAIR_TABLE_MAX_ELEMS:
        return None
    t = base.table
    pair = (t[:, None, :, None] + t[None, :, None, :]).reshape(n_pair, c_pair)
    pair.setflags(write=False)
    # the certificate survives pairing only while the summed scaled
    # magnitude stays exactly representable
    exact_exp = base.exact_exp
    max_scaled = 2.0 * base.max_scaled_abs
    if exact_exp is None or max_scaled >= 2.0**53:
        exact_exp, max_scaled = None, 0.0
    return PairProductLUT(
        base=base,
        table=pair,
        exact_exp=exact_exp,
        max_scaled_abs=max_scaled,
    )


def lut_footprint_report(pairs) -> Dict[str, dict]:
    """Table memory per type pair (README's footprint accounting).

    ``pairs`` is an iterable of ``(w_dtype_name, a_dtype_name)``.
    """
    report = {}
    for w_name, a_name in pairs:
        lut = partial_product_lut(w_name, a_name)
        pair = pair_product_lut(w_name, a_name)
        report[f"{w_name}x{a_name}"] = {
            "rows": lut.n_weight_codes,
            "cols": lut.n_act_cols,
            "float64_bytes": lut.nbytes,
            "float32_bytes": lut.nbytes // 2,
            "integral": lut.integral,
            "exact_scale_exp": lut.exact_exp,
            "pair_table": None
            if pair is None
            else {
                "elems": int(pair.table.size),
                "float32_bytes": int(pair.table.size * 4),
                "int16_bytes": int(pair.table.size * 2)
                if pair.int16_ok
                else None,
            },
        }
    return report
