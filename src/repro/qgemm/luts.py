"""Partial-product lookup tables for code-domain GEMM.

One table per (weight type, activation type) pair, built from the same
:class:`~repro.dtypes.codec.GridCodec` grids every other subsystem
validates against:

* rows are indexed by the weight's **canonical code word** (all
  ``2^bits`` of them, so packed weight streams index directly without
  re-mapping -- codes outside the quantization grid, like int's unused
  most-negative pattern, simply carry their decoded value);
* columns are indexed by the activation's **grid index** (what the
  runtime's nearest-grid kernels produce), plus one trailing
  ``pad_col`` whose entries are the exact products with ``0.0`` --
  convolution zero-padding happens *after* activation quantization, so
  padded positions need a code whose partial product is zero regardless
  of the weight operand.

Entry ``[cw, ca]`` is the plain float64 product
``decode_lut[cw] * grid[ca]`` -- exactly the multiply the
decode-then-multiply reference performs element by element, which is
what lets the gather kernel match that reference bit for bit.  Scales
never enter the table: they are per-channel output factors applied once
after accumulation (the activation unit in Fig. 4), keeping the table
one small scale-free array per *type pair* rather than per layer.

A 4-bit x 4-bit pair costs ``16 x 16 x 8 B = 2 KiB`` in float64 (the
serving float32 cast halves that); the largest supported pair
(8-bit x 8-bit) is ``256 x 256 x 8 B = 512 KiB``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict

import numpy as np

from repro.dtypes.registry import default_registry


@dataclass(frozen=True)
class PartialProductLUT:
    """Precomputed code-product table for one (weight, activation) pair."""

    #: registry names of the operand types.
    w_dtype_name: str
    a_dtype_name: str
    #: ``(2^w_bits, a_grid_size + 1)`` float64 products; read-only.
    table: np.ndarray
    #: activation column encoding convolution zero-padding (all zeros).
    pad_col: int
    #: True when every entry is an exact integer (int x int pairs):
    #: histogram-weighted accumulation is then exact in float64.
    integral: bool
    #: memoized dtype casts of ``table`` (read-only, like the master).
    _cast_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def n_weight_codes(self) -> int:
        return self.table.shape[0]

    @property
    def n_act_cols(self) -> int:
        return self.table.shape[1]

    @property
    def nbytes(self) -> int:
        return int(self.table.nbytes)

    def cast(self, dtype) -> np.ndarray:
        """The table in a compute dtype (float64 returns the master).

        Casts are memoized: serving gathers from the same float32 copy
        every forward instead of re-allocating one per call.
        """
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            return self.table
        cached = self._cast_cache.get(dtype.str)
        if cached is None:
            cached = self._cast_cache[dtype.str] = self.table.astype(dtype)
            cached.setflags(write=False)
        return cached


@lru_cache(maxsize=None)
def partial_product_lut(w_dtype_name: str, a_dtype_name: str) -> PartialProductLUT:
    """Build (or fetch) the partial-product table for a type pair.

    Cached process-wide: every layer sharing a type pair shares one
    table, the way hardware shares one decoder design per type.
    """
    w_codec = default_registry.get(w_dtype_name).codec
    a_codec = default_registry.get(a_dtype_name).codec
    cols = np.concatenate([a_codec.grid, [0.0]])
    table = np.outer(w_codec.decode_lut, cols)
    table.setflags(write=False)
    with np.errstate(invalid="ignore"):
        integral = bool(
            np.all(np.isfinite(table))
            and np.all(table == np.round(table))
            and float(np.abs(table).max(initial=0.0)) < 2.0**53
        )
    return PartialProductLUT(
        w_dtype_name=w_dtype_name,
        a_dtype_name=a_dtype_name,
        table=table,
        pad_col=a_codec.grid.size,
        integral=integral,
    )


def lut_footprint_report(pairs) -> Dict[str, dict]:
    """Table memory per type pair (README's footprint accounting).

    ``pairs`` is an iterable of ``(w_dtype_name, a_dtype_name)``.
    """
    report = {}
    for w_name, a_name in pairs:
        lut = partial_product_lut(w_name, a_name)
        report[f"{w_name}x{a_name}"] = {
            "rows": lut.n_weight_codes,
            "cols": lut.n_act_cols,
            "float64_bytes": lut.nbytes,
            "float32_bytes": lut.nbytes // 2,
            "integral": lut.integral,
        }
    return report
