"""Vectorized accumulation kernels over partial-product tables.

The canonical operand layout is the GEMM the frozen runtime already
runs, re-expressed in codes: activations as a ``(rows, k)`` matrix of
grid indices (im2col'd windows for convolution, flattened leading axes
for linear), weights as a ``(k, cols)`` matrix of canonical code words.
``out[r, o] = sum_k table[w[k, o], a[r, k]]`` -- one table lookup per
MAC, the software image of a decoder pair feeding one multiplier.

The kernel family (selected per layer at backend compile time):

* :func:`code_gemm_gather` -- joint-index the table per (r, k, o) and
  reduce over ``k``.  The float64 result is **bit-identical** to the
  decode-then-multiply reference computed in the same reduction order
  (the gathered entries *are* the reference's elementwise products,
  precomputed).  One lookup and 16 B of int64 joint-index traffic per
  MAC: the correctness anchor, and the float64 fallback whenever the
  faster kernels cannot certify exactness.
* :func:`code_gemm_pair` -- gather from a **pair-product-sum table**
  (:func:`~repro.qgemm.luts.pair_product_lut`): two adjacent reduction
  positions collapse into one joint index, halving both the lookup
  count and the reduction depth; an odd ``k`` leaves a single-code
  tail on the base table.  Weight-stationary blocked: per output
  column the ``(kh, Na^2)`` table-row selection is hoisted out of the
  row loop, and the activation-side joint offsets are computed once
  per operand (and memoized across layers quantizing the same tensor,
  the q/k/v case).  Two inner-loop layouts -- row-major reductions for
  very tall GEMMs, transposed reductions otherwise -- picked by row
  count at run time.  With ``int_accumulate=True`` the gathers read an
  int16 scaled table and accumulate in int32 (the paper's
  integer-accumulate PE in software); the dyadic certificate's depth
  bound makes that *exact by construction*, and exactness makes every
  reduction order equivalent -- which is how the pair kernels hold the
  float64 bit-identity bar without replaying the gather order.
* :func:`code_gemm_pair_stationary` -- the float32 serving variant of
  the pair kernel: a per-layer stationary table
  (:func:`pair_stationary_tables`, output scale pre-folded, gated by
  :data:`PAIR_STATIONARY_MAX_ELEMS`) whose rows are the contiguous
  partial sums of *all* output columns, so one gather retires a MAC
  pair for every output at once and the joint offsets are read once
  per pair instead of once per (pair, column).
* :func:`code_gemm_popcount` -- for 1-2-bit operand pairs: operands
  become packed uint64 indicator planes (one per code), joint
  occurrence counts come from ``popcount(a_plane & w_plane)``, and the
  output is the count matrix contracted with the tiny table.  Work per
  output drops from ``k`` lookups to ``cells * ceil(k/64)`` word ops.
* :func:`code_gemm_bincount` -- histogram the joint codes per (r, o),
  then contract counts against the flattened table; exact when the
  table is integral.  Retained for wide-code layers whose pair table
  exceeds the footprint policy.

All kernels block over output rows so transient joint-index/gather
arrays stay bounded (``block_elems`` caps per-block element count)
regardless of GEMM size.  Operand validation (`_check_act`) runs for
public entry points but is skipped on the backend's compiled hot path
(indices come from the runtime's own kernels, validated by
construction); set ``REPRO_QGEMM_CHECK=1`` to re-enable it there.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.qgemm.luts import (
    PairProductLUT,
    PartialProductLUT,
    pair_product_lut,
)

#: per-block cap on transient elements (joint indices / histogram
#: slots); 2^20 * (8 B index + 8 B gather) keeps blocks ~16 MiB.
DEFAULT_BLOCK_ELEMS = 1 << 20

#: pair kernel: GEMMs at or below this many rows run the transposed
#: inner loop (contiguous per-column output, reduction over axis 0);
#: taller GEMMs win with row-major reductions over bigger row blocks.
PAIR_TRANSPOSE_MAX_ROWS = 16384

#: popcount kernel pays off once the reduction is deep enough to
#: amortize building the per-code indicator planes.
POPCOUNT_MIN_K = 32

#: float32 serving builds a per-layer weight-stationary pair table
#: (``kh * Na^2 * cols`` elements, output scale pre-folded).  Tables up
#: to this budget (2^22 float32 elements = 16 MiB) gather in one pass;
#: larger tables execute in k-chunks of at most this many elements so
#: each chunk's table slice stays cache-resident while its gathered
#: partial sums reduce (see :func:`code_gemm_pair_stationary`).
PAIR_STATIONARY_MAX_ELEMS = 1 << 22

#: hard cap on a per-layer stationary table.  Past this (2^24 float32
#: elements = 64 MiB) the per-layer memory cost outweighs the gather
#: win and the layer keeps the shared pair table's per-column loop.
#: Covers the deepest zoo convs (k = 576 -> ~5.3M elements), which the
#: per-pass budget above used to push onto the per-column fallback.
PAIR_STATIONARY_TOTAL_MAX_ELEMS = 1 << 24

#: int32 accumulators must stay exact: certified depth bound target.
_INT32_LIMIT = float(2**31 - 1)
_FLOAT64_LIMIT = 2.0**53


def weight_joint_offsets(w_codes: np.ndarray, lut: PartialProductLUT) -> np.ndarray:
    """Validate ``(k, cols)`` weight codes and pre-scale them into flat
    table offsets (``code * row_stride``).

    Loop-invariant per layer: the backend computes this once at compile
    time so per-forward kernels skip both the weight-range scan and the
    ``k x cols`` multiply/allocation.
    """
    if w_codes.ndim != 2:
        raise ValueError(f"expected 2-D weight codes, got {w_codes.shape}")
    if w_codes.size and (
        w_codes.min() < 0 or w_codes.max() >= lut.n_weight_codes
    ):
        raise ValueError(
            f"weight code out of range for {lut.w_dtype_name} table"
        )
    return w_codes.astype(np.int64) * lut.table.shape[1]


def _check_act(act_idx: np.ndarray, k: int, lut: PartialProductLUT):
    if act_idx.ndim != 2:
        raise ValueError(f"expected 2-D activation indices, got {act_idx.shape}")
    if act_idx.shape[1] != k:
        raise ValueError(
            f"inner dimensions differ: act {act_idx.shape} vs k={k}"
        )
    if act_idx.size and (
        act_idx.min() < 0 or act_idx.max() >= lut.n_act_cols
    ):
        raise ValueError(
            f"activation index out of range for {lut.a_dtype_name} table"
        )


def code_gemm_gather(
    act_idx: np.ndarray,
    w_codes: Optional[np.ndarray],
    lut: PartialProductLUT,
    out_dtype=np.float64,
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    w_joint: Optional[np.ndarray] = None,
    check: bool = True,
) -> np.ndarray:
    """Gather-accumulate: ``out[r, o] = sum_k table[w[k, o], a[r, k]]``.

    ``act_idx`` is ``(rows, k)`` activation grid indices; ``w_codes``
    is ``(k, cols)`` weight code words (compiled callers pass the
    precomputed ``w_joint`` from :func:`weight_joint_offsets` instead).
    In float64 the result is bit-identical to
    ``(decode[w][None] * grid[a][:, :, None]).sum(axis=1)`` -- the
    decode-then-multiply reference in the same reduction order.
    ``check=False`` skips the activation min/max scan (compiled hot
    path; indices are validated by construction there).
    """
    if w_joint is None:
        w_joint = weight_joint_offsets(w_codes, lut)
    k, cols = w_joint.shape
    if check:
        _check_act(act_idx, k, lut)
    rows = act_idx.shape[0]
    table = lut.cast(out_dtype)
    flat = table.reshape(-1)
    out = np.empty((rows, cols), dtype=table.dtype)
    if k == 0:
        out[:] = 0.0
        return out
    block = max(1, block_elems // max(k * cols, 1))
    a64 = act_idx.astype(np.int64, copy=False)
    for start in range(0, rows, block):
        stop = min(start + block, rows)
        joint = a64[start:stop, :, None] + w_joint[None, :, :]
        np.sum(flat[joint], axis=1, out=out[start:stop])
    return out


def code_gemm_bincount(
    act_idx: np.ndarray,
    w_codes: Optional[np.ndarray],
    lut: PartialProductLUT,
    out_dtype=np.float64,
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    w_joint: Optional[np.ndarray] = None,
    check: bool = True,
) -> np.ndarray:
    """Histogram-accumulate: joint-code counts contracted with the table.

    For each output cell, count how often every (weight code,
    activation code) pair occurs along ``k`` (integer work), then take
    one ``counts @ table`` dot (``table.size`` multiply-adds).  Exact
    whenever the table is integral -- counts and products are then
    integers well inside float64's exact range -- which is the
    int x int accumulation the paper's PE performs natively.  For
    non-integral tables the contraction reassociates the sum, so the
    bit-exact float64 mode must use :func:`code_gemm_gather`.
    """
    if w_joint is None:
        w_joint = weight_joint_offsets(w_codes, lut)
    k, cols = w_joint.shape
    if check:
        _check_act(act_idx, k, lut)
    rows = act_idx.shape[0]
    table = lut.table  # counts are exact; contract in float64, cast once
    ntab = table.size
    out = np.empty((rows, cols), dtype=np.dtype(out_dtype))
    if k == 0:
        out[:] = 0.0
        return out
    flat = table.reshape(-1)
    block = max(1, block_elems // max(max(k, ntab) * cols, 1))
    a64 = act_idx.astype(np.int64, copy=False)
    cell = np.arange(cols, dtype=np.int64) * ntab  # per-output histogram base
    for start in range(0, rows, block):
        stop = min(start + block, rows)
        b = stop - start
        # joint[r, k, o] + (r*cols + o)*ntab: every (row, col) output
        # cell owns a private ntab-slot histogram in one flat bincount
        joint = a64[start:stop, :, None] + w_joint[None, :, :]
        joint += cell[None, None, :]
        joint += (np.arange(b, dtype=np.int64) * (cols * ntab))[:, None, None]
        counts = np.bincount(joint.reshape(-1), minlength=b * cols * ntab)
        acc = counts.reshape(b, cols, ntab) @ flat
        out[start:stop] = acc
    return out


# ----------------------------------------------------------------------
# Pair-packed gather kernel
# ----------------------------------------------------------------------
def pair_weight_codes(
    w_codes: np.ndarray, pair: PairProductLUT
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Fuse ``(k, cols)`` weight codes into pair codes + odd-``k`` tail.

    Returns ``(w_pair, w_tail_joint)``: ``w_pair[j, o]`` is the joint
    code ``w[2j, o] * Nw + w[2j+1, o]`` indexing the pair table's rows,
    and ``w_tail_joint`` is the last position's flat base-table offsets
    (``code * Na``) when ``k`` is odd, else ``None``.  Loop-invariant
    per layer -- the backend computes this once at compile time.
    """
    if w_codes.ndim != 2:
        raise ValueError(f"expected 2-D weight codes, got {w_codes.shape}")
    nw = pair.n_weight_codes
    if w_codes.size and (w_codes.min() < 0 or w_codes.max() >= nw):
        raise ValueError(
            f"weight code out of range for {pair.base.w_dtype_name} table"
        )
    k = w_codes.shape[0]
    kh = k // 2
    w64 = w_codes.astype(np.int64, copy=False)
    w_pair = w64[0 : 2 * kh : 2] * nw + w64[1 : 2 * kh : 2]
    w_tail = w64[-1] * pair.n_act_cols if k % 2 else None
    return np.ascontiguousarray(w_pair), w_tail


#: memoized activation-side pair offsets, keyed on the *read-only*
#: source index array (the runtime memoizes and shares those across
#: sibling layers -- q/k/v projections of one tensor pay for the index
#: arithmetic once).  Entries pin their source array, so ids cannot be
#: recycled while memoized; bounded like the runtime's own memo.
_PAIR_ACT_MEMO: dict = {}
_PAIR_ACT_MEMO_LIMIT = 32


def _pair_act_offsets(
    act_idx: np.ndarray, pair: PairProductLUT, transposed: bool
) -> np.ndarray:
    """Joint activation pair indices with per-position table offsets.

    ``out[r, j] = (a[r, 2j] * Na + a[r, 2j+1]) + j * Na^2`` -- a direct
    flat index into the per-column ``(kh, Na^2)`` stationary table
    selection.  ``transposed=True`` returns the contiguous ``(kh,
    rows)`` transpose instead.  Results are memoized per read-only
    source array (see :data:`_PAIR_ACT_MEMO`).
    """
    na = pair.n_act_cols
    kh = act_idx.shape[1] // 2
    # a C-contiguous view of a memoized read-only array shares its
    # base's identity: key on the base so sibling layers reusing the
    # runtime's shared index array hit the same entry
    src = act_idx if act_idx.base is None else act_idx.base
    key = None
    if (
        not act_idx.flags.writeable
        and act_idx.flags.c_contiguous
        and act_idx.__array_interface__["data"][0]
        == src.__array_interface__["data"][0]
    ):
        key = (id(src), act_idx.shape[1], na, transposed)
        hit = _PAIR_ACT_MEMO.get(key)
        if hit is not None and hit[0] is src:
            return hit[1]
    ap = act_idx[:, 0 : 2 * kh : 2] * na
    ap += act_idx[:, 1 : 2 * kh : 2]
    ap += np.arange(kh, dtype=np.int64) * (na * na)
    out = np.ascontiguousarray(ap.T) if transposed else ap
    if key is not None:
        if len(_PAIR_ACT_MEMO) >= _PAIR_ACT_MEMO_LIMIT:
            _PAIR_ACT_MEMO.clear()
        out.setflags(write=False)
        _PAIR_ACT_MEMO[key] = (src, out)
    return out


def code_gemm_pair(
    act_idx: np.ndarray,
    w_codes: Optional[np.ndarray],
    pair: PairProductLUT,
    out_dtype=np.float64,
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    w_pair: Optional[np.ndarray] = None,
    w_tail_joint: Optional[np.ndarray] = None,
    int_accumulate: bool = False,
    check: bool = True,
) -> np.ndarray:
    """Pair-packed gather: one table lookup retires two MACs.

    Weight-stationary blocked: for each output column the ``(kh,
    Na^2)`` pair-table row selection is built once per row block, and
    the activation joint offsets are shared across all columns (and
    memoized across layers reading the same quantized tensor).  An odd
    ``k`` adds one single-code gather on the base table.

    With ``int_accumulate=True`` the gather reads the certificate's
    int16 scaled table and sums in int32; the caller must respect
    ``pair.exact_pair_depth(2^31 - 1)`` (checked here), which makes
    the integer path exact by construction.  Exactness makes the
    result order-independent, hence bit-identical to the float64
    gather reference whenever the certificate covers the depth.
    """
    if w_pair is None:
        if w_codes is None:
            raise ValueError("need w_codes or precompiled w_pair")
        if w_codes.shape[0] != act_idx.shape[1]:
            raise ValueError(
                f"inner dimensions differ: act {act_idx.shape} vs "
                f"w {w_codes.shape}"
            )
        w_pair, w_tail_joint = pair_weight_codes(w_codes, pair)
    kh, cols = w_pair.shape
    k = 2 * kh + (1 if w_tail_joint is not None else 0)
    if check:
        _check_act(act_idx, k, pair.base)
    rows = act_idx.shape[0]
    out_dtype = np.dtype(out_dtype)
    if int_accumulate:
        if kh + 1 > pair.exact_pair_depth(_INT32_LIMIT):
            raise ValueError(
                "int32 accumulation not certified at reduction depth "
                f"{k} for the {pair.base.w_dtype_name}x"
                f"{pair.base.a_dtype_name} pair table"
            )
        table = pair.scaled_int16()
        acc_dtype = np.dtype(np.int32)
    else:
        table = pair.cast(out_dtype)
        acc_dtype = out_dtype
    out = np.zeros((rows, cols), dtype=acc_dtype)
    if rows and kh:
        block = min(max(block_elems // kh, 1024), rows)
        if rows > PAIR_TRANSPOSE_MAX_ROWS:
            ap = _pair_act_offsets(act_idx, pair, transposed=False)
            for start in range(0, rows, block):
                stop = min(start + block, rows)
                idx = ap[start:stop]
                for o in range(cols):
                    tsel = table[w_pair[:, o]].reshape(-1)
                    np.sum(
                        tsel[idx], axis=1, dtype=acc_dtype,
                        out=out[start:stop, o],
                    )
        else:
            ap_t = _pair_act_offsets(act_idx, pair, transposed=True)
            out_t = np.empty((cols, rows), dtype=acc_dtype)
            for start in range(0, rows, block):
                stop = min(start + block, rows)
                idx = ap_t[:, start:stop]
                for o in range(cols):
                    tsel = table[w_pair[:, o]].reshape(-1)
                    np.sum(
                        tsel[idx], axis=0, dtype=acc_dtype,
                        out=out_t[o, start:stop],
                    )
            out = np.ascontiguousarray(out_t.T)
    if rows and w_tail_joint is not None:
        base = (
            pair.base.scaled_int16()
            if int_accumulate
            else pair.base.cast(out_dtype)
        )
        tail = act_idx[:, k - 1 :] + w_tail_joint[None, :]
        out += base.reshape(-1)[tail]
    if int_accumulate:
        result = out.astype(out_dtype)
        result *= out_dtype.type(2.0**-pair.exact_exp)
        return result
    return out


def pair_stationary_tables(
    w_pair: np.ndarray,
    w_tail_joint: Optional[np.ndarray],
    pair: PairProductLUT,
    out_dtype,
    out_scale=None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-layer weight-stationary pair tables for the serving path.

    ``stat[j * Na^2 + joint, o] = PT[w_pair[j, o], joint]`` -- every
    output column's pair partial sum for pair position ``j``, laid out
    so one gather row is the *contiguous* ``cols``-vector of all
    outputs.  ``tail[a, o]`` is the analogous single-code table for an
    odd-``k`` tail.  ``out_scale`` (scalar or per-output-channel) is
    folded into both, so the compiled layer skips its output-scale
    pass entirely.  Built once at backend compile time; costs
    ``kh * Na^2 * cols`` elements (the memory side of the
    memory-vs-speed tradeoff, gated by
    :data:`PAIR_STATIONARY_MAX_ELEMS`).
    """
    out_dtype = np.dtype(out_dtype)
    table = pair.cast(out_dtype)
    kh, cols = w_pair.shape
    na2 = table.shape[1]
    # (kh, cols, Na^2) -> (kh, Na^2, cols) -> (kh*Na^2, cols)
    stat = np.ascontiguousarray(table[w_pair].transpose(0, 2, 1)).reshape(
        kh * na2, cols
    )
    tail = None
    if w_tail_joint is not None:
        na = pair.n_act_cols
        base = pair.base.cast(out_dtype)
        tail = np.ascontiguousarray(base[w_tail_joint // na].T)  # (Na, cols)
    if out_scale is not None:
        scale = np.asarray(out_scale, dtype=out_dtype)
        stat = stat * scale
        if tail is not None:
            tail = tail * scale
    return stat, tail


def code_gemm_pair_stationary(
    act_idx: np.ndarray,
    stat: np.ndarray,
    tail: Optional[np.ndarray],
    pair: PairProductLUT,
    out_dtype=np.float32,
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    check: bool = True,
) -> np.ndarray:
    """Weight-stationary pair gather: one lookup fetches a whole row.

    The serving-path complement of :func:`code_gemm_pair`: instead of
    looping output columns against the shared pair table, it gathers
    rows of the per-layer stationary table
    (:func:`pair_stationary_tables`) -- each joint activation index
    fetches the contiguous partial sums of *all* output columns at
    once, so the int64 joint offsets are read once per retired MAC
    pair rather than once per (pair, column).  The reduction over pair
    positions runs on the leading axis of the ``(kh, block, cols)``
    gather, landing row-major output with no final transpose.

    Tables past :data:`PAIR_STATIONARY_MAX_ELEMS` execute as a fused
    gather-reduce over k-chunks: each chunk of pair positions only ever
    gathers from its own ``chunk * Na^2`` slice of rows (pair ``j``'s
    joint offsets all land in ``[j*Na^2, (j+1)*Na^2)``), so the slice
    stays cache-resident while the chunk's ``(chunk, block, cols)``
    partial-sum tile is reduced hot, accumulating into the output row
    block.  Chunked accumulation reassociates the k-sum relative to the
    single-pass gather -- same float32 serving bar.

    Float rounding otherwise differs from :func:`code_gemm_pair` only
    through the pre-folded output scale; the backend uses this kernel
    for float32 serving, where the bar is argmax parity, never for the
    bit-exact float64 engine.
    """
    kh_na2, cols = stat.shape
    na2 = pair.n_act_cols * pair.n_act_cols
    kh = kh_na2 // na2
    k = 2 * kh + (1 if tail is not None else 0)
    if check:
        _check_act(act_idx, k, pair.base)
    rows = act_idx.shape[0]
    out_dtype = np.dtype(out_dtype)
    out = np.empty((rows, cols), dtype=out_dtype)
    if not rows:
        return out
    if kh:
        ap_t = _pair_act_offsets(act_idx, pair, transposed=True)
        ck = kh
        if kh_na2 * cols > PAIR_STATIONARY_MAX_ELEMS:
            ck = max(1, PAIR_STATIONARY_MAX_ELEMS // max(na2 * cols, 1))
        block = min(max(block_elems // max(ck * cols, 1), 16), rows)
        tile = (
            np.empty((block, cols), dtype=out_dtype) if ck < kh else None
        )
        for start in range(0, rows, block):
            stop = min(start + block, rows)
            np.sum(
                stat[ap_t[:ck, start:stop]], axis=0, dtype=out_dtype,
                out=out[start:stop],
            )
            for j0 in range(ck, kh, ck):
                j1 = min(j0 + ck, kh)
                part = tile[: stop - start]
                np.sum(
                    stat[ap_t[j0:j1, start:stop]], axis=0,
                    dtype=out_dtype, out=part,
                )
                out[start:stop] += part
    else:
        out[...] = 0.0
    if tail is not None:
        out += tail[act_idx[:, k - 1]]
    return out


# ----------------------------------------------------------------------
# Popcount / bit-plane kernel (1-2-bit operand pairs)
# ----------------------------------------------------------------------
def popcount_weight_planes(
    w_codes: np.ndarray, lut: PartialProductLUT
) -> np.ndarray:
    """Pack per-code weight indicator bit planes: ``(Nw, cols, W)``.

    ``planes[c, o, :]`` is the k-axis indicator of ``w[:, o] == c``
    packed into ``W = ceil(k / 64)`` uint64 words.  Loop-invariant per
    layer; the backend builds it once at compile time.
    """
    if w_codes.ndim != 2:
        raise ValueError(f"expected 2-D weight codes, got {w_codes.shape}")
    nw = lut.n_weight_codes
    if w_codes.size and (w_codes.min() < 0 or w_codes.max() >= nw):
        raise ValueError(
            f"weight code out of range for {lut.w_dtype_name} table"
        )
    k, cols = w_codes.shape
    n_words = (k + 63) // 64
    planes = np.zeros((nw, cols, n_words * 8), dtype=np.uint8)
    w_t = np.ascontiguousarray(w_codes.T)
    for code in range(nw):
        bits = np.packbits(w_t == code, axis=1)
        planes[code, :, : bits.shape[1]] = bits
    return planes.view(np.uint64)


def popcount_cells(w_planes: np.ndarray, lut: PartialProductLUT) -> list:
    """Live ``(weight code, act col)`` table cells the popcount kernel
    visits: weight codes that occur in the layer crossed with table
    columns whose entry is nonzero (the pad column and unused canonical
    codes drop out).  Compile-time constant per layer; the backend uses
    the same enumeration to meter word operations.
    """
    nw = w_planes.shape[0]
    live_w = [c for c in range(nw) if np.any(w_planes[c])]
    return [
        (cw, ca)
        for cw in live_w
        for ca in range(lut.n_act_cols)
        if lut.table[cw, ca] != 0.0
    ]


def _act_planes(act_idx: np.ndarray, cols_used, n_words: int) -> dict:
    """Packed activation indicator words per used grid index."""
    planes = {}
    for col in cols_used:
        bits = np.packbits(act_idx == col, axis=1)
        plane = np.zeros((act_idx.shape[0], n_words * 8), dtype=np.uint8)
        plane[:, : bits.shape[1]] = bits
        planes[col] = plane.view(np.uint64)
    return planes


def code_gemm_popcount(
    act_idx: np.ndarray,
    w_codes: Optional[np.ndarray],
    lut: PartialProductLUT,
    out_dtype=np.float64,
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    w_planes: Optional[np.ndarray] = None,
    check: bool = True,
) -> np.ndarray:
    """Bit-plane accumulate for tiny code spaces (1-2-bit operands).

    Each (weight code, activation index) cell contributes ``table[cw,
    ca] * count`` where ``count`` comes from
    ``popcount(act_plane & weight_plane)`` over packed uint64 words:
    ``cells * ceil(k/64)`` word operations per output instead of ``k``
    gathers.  Zero table cells (the pad column, unused canonical
    codes) are skipped.  Counts are exact integers, so the result is
    exact -- equal to the gather reference in any summation order --
    whenever the table's dyadic certificate covers depth ``k``.
    """
    if w_planes is None:
        if w_codes is None:
            raise ValueError("need w_codes or precompiled w_planes")
        if w_codes.shape[0] != act_idx.shape[1]:
            raise ValueError(
                f"inner dimensions differ: act {act_idx.shape} vs "
                f"w {w_codes.shape}"
            )
        w_planes = popcount_weight_planes(w_codes, lut)
    k = act_idx.shape[1]
    if check:
        _check_act(act_idx, k, lut)
    nw, cols, n_words = w_planes.shape
    rows = act_idx.shape[0]
    table = lut.table
    acc = np.zeros((rows, cols), dtype=np.float64)
    if rows and k:
        cells = popcount_cells(w_planes, lut)
        act_cols = sorted({ca for _, ca in cells})
        planes = _act_planes(act_idx, act_cols, n_words)
        block = min(max(block_elems // max(cols * n_words, 1), 256), rows)
        joint = np.empty((block, cols, n_words), dtype=np.uint64)
        counts = np.empty((block, cols, n_words), dtype=np.uint8)
        for start in range(0, rows, block):
            stop = min(start + block, rows)
            b = stop - start
            for cw, ca in cells:
                np.bitwise_and(
                    planes[ca][start:stop, None, :],
                    w_planes[cw][None, :, :],
                    out=joint[:b],
                )
                np.bitwise_count(joint[:b], out=counts[:b])
                acc[start:stop] += table[cw, ca] * counts[:b].sum(
                    axis=2, dtype=np.int64
                )
    return acc.astype(out_dtype, copy=False)


def select_kernel(lut: PartialProductLUT, k: int, out_dtype) -> str:
    """Compile-time kernel choice from operand bits, table size, and
    reduction depth (the backend's per-layer ``"auto"`` rule).

    Preference order, constrained by exactness in float64:

    1. ``popcount`` for 1-2-bit operand pairs at depth >=
       :data:`POPCOUNT_MIN_K` (certified exact: tiny dyadic tables).
    2. In float64: ``pair-int`` when the pair table exists, fits int16
       scaled, and the int32 depth bound covers ``k`` -- exact by
       construction, and int16 gathers beat 8-byte float64 gathers;
       else ``pair`` while the float64 depth bound certifies
       order-independence; else fall through to ``gather``.
    3. In float32 (serving): ``pair`` whenever the pair table exists
       -- float32 gathers measured faster than the int16/int32
       accumulator on the reference container, and serving only holds
       the argmax-parity bar.
    4. ``bincount`` when integral and the table is smaller than the
       reduction depth (wide-code layers without a pair table).
    5. ``gather`` -- always correct, bit-identical in float64.
    """
    exact_needed = np.dtype(out_dtype) == np.float64
    depth = (k + 1) // 2 + 1
    if (
        k >= POPCOUNT_MIN_K
        and lut.n_weight_codes <= 4
        and lut.n_act_cols <= 5
        and lut.exact_exp is not None
        and k * max(lut.max_scaled_abs, 1.0) < _FLOAT64_LIMIT
    ):
        return "popcount"
    pair = pair_product_lut(lut.w_dtype_name, lut.a_dtype_name)
    if pair is not None and k >= 2:
        if not exact_needed:
            return "pair"
        if pair.int16_ok and depth <= pair.exact_pair_depth(_INT32_LIMIT):
            return "pair-int"
        if depth <= pair.exact_pair_depth(_FLOAT64_LIMIT):
            return "pair"
    if lut.integral and lut.table.size < k:
        return "bincount"
    return "gather"


def code_gemm(
    act_idx: np.ndarray,
    w_codes: Optional[np.ndarray],
    lut: PartialProductLUT,
    out_dtype=np.float64,
    mode: str = "auto",
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    w_joint: Optional[np.ndarray] = None,
    check: bool = True,
) -> np.ndarray:
    """Code-domain GEMM with kernel selection.

    ``mode="auto"`` resolves through :func:`select_kernel`: the
    fastest kernel that is exact for the table/depth in float64 (the
    bit-exact engine's bar), the fastest kernel outright in float32.
    Explicit modes (``"gather"``, ``"bincount"``, ``"pair"``,
    ``"pair-int"``, ``"popcount"``) force a kernel.
    """
    if mode == "auto":
        mode = select_kernel(lut, act_idx.shape[1], out_dtype)
    if mode == "gather":
        return code_gemm_gather(
            act_idx, w_codes, lut, out_dtype, block_elems, w_joint, check
        )
    if mode == "bincount":
        return code_gemm_bincount(
            act_idx, w_codes, lut, out_dtype, block_elems, w_joint, check
        )
    if mode in ("pair", "pair-int"):
        pair = pair_product_lut(lut.w_dtype_name, lut.a_dtype_name)
        if pair is None:
            raise ValueError(
                f"no pair table for {lut.w_dtype_name}x{lut.a_dtype_name} "
                "(exceeds the footprint policy); use a single-code kernel"
            )
        return code_gemm_pair(
            act_idx, w_codes, pair, out_dtype, block_elems,
            int_accumulate=(mode == "pair-int"), check=check,
        )
    if mode == "popcount":
        return code_gemm_popcount(
            act_idx, w_codes, lut, out_dtype, block_elems, check=check
        )
    raise ValueError(f"unknown code_gemm mode {mode!r}")


# ----------------------------------------------------------------------
# Code-domain im2col
# ----------------------------------------------------------------------
def im2col_codes_nhwc(
    idx: np.ndarray,
    kernel,
    stride,
    padding,
    pad_col: int,
) -> np.ndarray:
    """Flatten NHWC activation-index windows to a ``(rows, k)`` matrix.

    ``idx`` is ``(n, h, w, c)`` grid indices.  Padded border positions
    take ``pad_col`` -- the table column whose partial products are
    exactly zero -- because convolution pads *after* activation
    quantization.  Window flattening order is ``(kh, kw, c)``, matching
    the NHWC weight-matrix layout of the float path.
    """
    n, h, w, c = idx.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        idx = np.pad(
            idx, ((0, 0), (ph, ph), (pw, pw), (0, 0)), constant_values=pad_col
        )
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output collapsed: input {h}x{w}, kernel {kh}x{kw}"
        )
    if kh == 1 and kw == 1:
        sub = idx[:, ::sh, ::sw, :][:, :out_h, :out_w, :]
        return np.ascontiguousarray(sub.reshape(n * out_h * out_w, c))
    s = idx.strides
    windows = np.lib.stride_tricks.as_strided(
        idx,
        shape=(n, out_h, out_w, kh, kw, c),
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    return windows.reshape(n * out_h * out_w, kh * kw * c)


def im2col_codes_nchw(
    idx: np.ndarray,
    kernel,
    stride,
    padding,
    pad_col: int,
) -> np.ndarray:
    """NCHW variant; flattening order ``(c, kh, kw)`` matches the NCHW
    weight matrix ``weight.reshape(c_out, -1)``."""
    n, c, h, w = idx.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        idx = np.pad(
            idx, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=pad_col
        )
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output collapsed: input {h}x{w}, kernel {kh}x{kw}"
        )
    s = idx.strides
    windows = np.lib.stride_tricks.as_strided(
        idx,
        shape=(n, out_h, out_w, c, kh, kw),
        strides=(s[0], s[2] * sh, s[3] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    return windows.reshape(n * out_h * out_w, c * kh * kw)
