"""Vectorized accumulation kernels over partial-product tables.

The canonical operand layout is the GEMM the frozen runtime already
runs, re-expressed in codes: activations as a ``(rows, k)`` matrix of
grid indices (im2col'd windows for convolution, flattened leading axes
for linear), weights as a ``(k, cols)`` matrix of canonical code words.
``out[r, o] = sum_k table[w[k, o], a[r, k]]`` -- one table lookup per
MAC, the software image of a decoder pair feeding one multiplier.

Two accumulation strategies:

* :func:`code_gemm_gather` -- joint-index the table per (r, k, o) and
  reduce over ``k``.  The float64 result is **bit-identical** to the
  decode-then-multiply reference computed in the same reduction order
  (the gathered entries *are* the reference's elementwise products,
  precomputed), which is what the runtime's bit-exact mode rides on.
* :func:`code_gemm_bincount` -- histogram the joint codes per (r, o)
  with one big ``np.bincount``, then contract the count matrix against
  the flattened table.  The float work drops from ``k`` to
  ``table.size`` multiply-adds per output; when the table is integral
  (int x int pairs) counts-times-products stay exact integers in
  float64, so this too is exact -- the software analogue of the
  paper's integer accumulation behind the decoders.

Both kernels block over output rows so the transient joint-index /
histogram arrays stay bounded (``block_elems`` caps the per-block
element count) regardless of GEMM size.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.qgemm.luts import PartialProductLUT

#: per-block cap on transient elements (joint indices / histogram
#: slots); 2^20 * (8 B index + 8 B gather) keeps blocks ~16 MiB.
DEFAULT_BLOCK_ELEMS = 1 << 20


def weight_joint_offsets(w_codes: np.ndarray, lut: PartialProductLUT) -> np.ndarray:
    """Validate ``(k, cols)`` weight codes and pre-scale them into flat
    table offsets (``code * row_stride``).

    Loop-invariant per layer: the backend computes this once at compile
    time so per-forward kernels skip both the weight-range scan and the
    ``k x cols`` multiply/allocation.
    """
    if w_codes.ndim != 2:
        raise ValueError(f"expected 2-D weight codes, got {w_codes.shape}")
    if w_codes.size and (
        w_codes.min() < 0 or w_codes.max() >= lut.n_weight_codes
    ):
        raise ValueError(
            f"weight code out of range for {lut.w_dtype_name} table"
        )
    return w_codes.astype(np.int64) * lut.table.shape[1]


def _check_act(act_idx: np.ndarray, k: int, lut: PartialProductLUT):
    if act_idx.ndim != 2:
        raise ValueError(f"expected 2-D activation indices, got {act_idx.shape}")
    if act_idx.shape[1] != k:
        raise ValueError(
            f"inner dimensions differ: act {act_idx.shape} vs k={k}"
        )
    if act_idx.size and (
        act_idx.min() < 0 or act_idx.max() >= lut.n_act_cols
    ):
        raise ValueError(
            f"activation index out of range for {lut.a_dtype_name} table"
        )


def code_gemm_gather(
    act_idx: np.ndarray,
    w_codes: Optional[np.ndarray],
    lut: PartialProductLUT,
    out_dtype=np.float64,
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    w_joint: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gather-accumulate: ``out[r, o] = sum_k table[w[k, o], a[r, k]]``.

    ``act_idx`` is ``(rows, k)`` activation grid indices; ``w_codes``
    is ``(k, cols)`` weight code words (compiled callers pass the
    precomputed ``w_joint`` from :func:`weight_joint_offsets` instead).
    In float64 the result is bit-identical to
    ``(decode[w][None] * grid[a][:, :, None]).sum(axis=1)`` -- the
    decode-then-multiply reference in the same reduction order.
    """
    if w_joint is None:
        w_joint = weight_joint_offsets(w_codes, lut)
    k, cols = w_joint.shape
    _check_act(act_idx, k, lut)
    rows = act_idx.shape[0]
    table = lut.cast(out_dtype)
    flat = table.reshape(-1)
    out = np.empty((rows, cols), dtype=table.dtype)
    if k == 0:
        out[:] = 0.0
        return out
    block = max(1, block_elems // max(k * cols, 1))
    a64 = act_idx.astype(np.int64, copy=False)
    for start in range(0, rows, block):
        stop = min(start + block, rows)
        joint = a64[start:stop, :, None] + w_joint[None, :, :]
        np.sum(flat[joint], axis=1, out=out[start:stop])
    return out


def code_gemm_bincount(
    act_idx: np.ndarray,
    w_codes: Optional[np.ndarray],
    lut: PartialProductLUT,
    out_dtype=np.float64,
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    w_joint: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Histogram-accumulate: joint-code counts contracted with the table.

    For each output cell, count how often every (weight code,
    activation code) pair occurs along ``k`` (integer work), then take
    one ``counts @ table`` dot (``table.size`` multiply-adds).  Exact
    whenever the table is integral -- counts and products are then
    integers well inside float64's exact range -- which is the
    int x int accumulation the paper's PE performs natively.  For
    non-integral tables the contraction reassociates the sum, so the
    bit-exact float64 mode must use :func:`code_gemm_gather`.
    """
    if w_joint is None:
        w_joint = weight_joint_offsets(w_codes, lut)
    k, cols = w_joint.shape
    _check_act(act_idx, k, lut)
    rows = act_idx.shape[0]
    table = lut.table  # counts are exact; contract in float64, cast once
    ntab = table.size
    out = np.empty((rows, cols), dtype=np.dtype(out_dtype))
    if k == 0:
        out[:] = 0.0
        return out
    flat = table.reshape(-1)
    block = max(1, block_elems // max(max(k, ntab) * cols, 1))
    a64 = act_idx.astype(np.int64, copy=False)
    cell = np.arange(cols, dtype=np.int64) * ntab  # per-output histogram base
    for start in range(0, rows, block):
        stop = min(start + block, rows)
        b = stop - start
        # joint[r, k, o] + (r*cols + o)*ntab: every (row, col) output
        # cell owns a private ntab-slot histogram in one flat bincount
        joint = a64[start:stop, :, None] + w_joint[None, :, :]
        joint += cell[None, None, :]
        joint += (np.arange(b, dtype=np.int64) * (cols * ntab))[:, None, None]
        counts = np.bincount(joint.reshape(-1), minlength=b * cols * ntab)
        acc = counts.reshape(b, cols, ntab) @ flat
        out[start:stop] = acc
    return out


def code_gemm(
    act_idx: np.ndarray,
    w_codes: Optional[np.ndarray],
    lut: PartialProductLUT,
    out_dtype=np.float64,
    mode: str = "auto",
    block_elems: int = DEFAULT_BLOCK_ELEMS,
    w_joint: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Code-domain GEMM with kernel selection.

    ``mode="auto"`` picks the bincount kernel when it is exact
    (integral table) *and* cheaper (table smaller than the reduction
    depth, so the histogram amortizes); the gather kernel otherwise.
    ``"gather"``/``"bincount"`` force a kernel (the bit-exact float64
    engine forces ``"gather"`` for non-integral tables).
    """
    if mode == "auto":
        mode = (
            "bincount"
            if lut.integral and lut.table.size < act_idx.shape[1]
            else "gather"
        )
    if mode == "gather":
        return code_gemm_gather(
            act_idx, w_codes, lut, out_dtype, block_elems, w_joint
        )
    if mode == "bincount":
        return code_gemm_bincount(
            act_idx, w_codes, lut, out_dtype, block_elems, w_joint
        )
    raise ValueError(f"unknown code_gemm mode {mode!r}")


# ----------------------------------------------------------------------
# Code-domain im2col
# ----------------------------------------------------------------------
def im2col_codes_nhwc(
    idx: np.ndarray,
    kernel,
    stride,
    padding,
    pad_col: int,
) -> np.ndarray:
    """Flatten NHWC activation-index windows to a ``(rows, k)`` matrix.

    ``idx`` is ``(n, h, w, c)`` grid indices.  Padded border positions
    take ``pad_col`` -- the table column whose partial products are
    exactly zero -- because convolution pads *after* activation
    quantization.  Window flattening order is ``(kh, kw, c)``, matching
    the NHWC weight-matrix layout of the float path.
    """
    n, h, w, c = idx.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        idx = np.pad(
            idx, ((0, 0), (ph, ph), (pw, pw), (0, 0)), constant_values=pad_col
        )
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output collapsed: input {h}x{w}, kernel {kh}x{kw}"
        )
    if kh == 1 and kw == 1:
        sub = idx[:, ::sh, ::sw, :][:, :out_h, :out_w, :]
        return np.ascontiguousarray(sub.reshape(n * out_h * out_w, c))
    s = idx.strides
    windows = np.lib.stride_tricks.as_strided(
        idx,
        shape=(n, out_h, out_w, kh, kw, c),
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    return windows.reshape(n * out_h * out_w, kh * kw * c)


def im2col_codes_nchw(
    idx: np.ndarray,
    kernel,
    stride,
    padding,
    pad_col: int,
) -> np.ndarray:
    """NCHW variant; flattening order ``(c, kh, kw)`` matches the NCHW
    weight matrix ``weight.reshape(c_out, -1)``."""
    n, c, h, w = idx.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        idx = np.pad(
            idx, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=pad_col
        )
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output collapsed: input {h}x{w}, kernel {kh}x{kw}"
        )
    s = idx.strides
    windows = np.lib.stride_tricks.as_strided(
        idx,
        shape=(n, out_h, out_w, c, kh, kw),
        strides=(s[0], s[2] * sh, s[3] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    return windows.reshape(n * out_h * out_w, c * kh * kw)
