"""Parametric tensor-distribution samplers.

The paper's motivation (Fig. 1) rests on three distribution families
observed in DNN tensors: uniform-like (first-layer activations),
Gaussian-like (most weights), and Laplace-like / long-tailed
(Transformer activations, often with outliers).  These samplers produce
tensors from each family for the ablation benches and the Fig. 14-style
per-distribution MSE studies.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

DistributionSampler = Callable[[np.random.Generator, int], np.ndarray]


def _uniform(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.uniform(-1.0, 1.0, size=n)


def _uniform_positive(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.uniform(0.0, 1.0, size=n)


def _gaussian(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.normal(0.0, 1.0, size=n)


def _half_gaussian(rng: np.random.Generator, n: int) -> np.ndarray:
    return np.abs(rng.normal(0.0, 1.0, size=n))


def _laplace(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.laplace(0.0, 1.0, size=n)


def _half_laplace(rng: np.random.Generator, n: int) -> np.ndarray:
    return np.abs(rng.laplace(0.0, 1.0, size=n))


def _student_t(rng: np.random.Generator, n: int) -> np.ndarray:
    """Very heavy tail: the outlier regime of Transformer activations."""
    return rng.standard_t(df=3, size=n)


def _gaussian_with_outliers(rng: np.random.Generator, n: int) -> np.ndarray:
    base = rng.normal(0.0, 1.0, size=n)
    n_outliers = max(1, n // 200)
    idx = rng.choice(n, size=n_outliers, replace=False)
    base[idx] *= rng.uniform(8.0, 20.0, size=n_outliers)
    return base


DISTRIBUTIONS: Dict[str, DistributionSampler] = {
    "uniform": _uniform,
    "uniform_positive": _uniform_positive,
    "gaussian": _gaussian,
    "half_gaussian": _half_gaussian,
    "laplace": _laplace,
    "half_laplace": _half_laplace,
    "student_t": _student_t,
    "gaussian_outliers": _gaussian_with_outliers,
}


def sample_distribution(name: str, n: int, seed: int = 0) -> np.ndarray:
    """Draw ``n`` samples from a named distribution family."""
    if name not in DISTRIBUTIONS:
        raise KeyError(f"unknown distribution {name!r}; choose from {sorted(DISTRIBUTIONS)}")
    rng = np.random.default_rng(seed)
    return DISTRIBUTIONS[name](rng, n)


def make_tensor_suite(n: int = 4096, seed: int = 0) -> Dict[str, np.ndarray]:
    """One sample tensor per distribution family."""
    return {name: sample_distribution(name, n, seed) for name in DISTRIBUTIONS}
