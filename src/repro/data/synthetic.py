"""Learnable synthetic classification tasks.

``make_image_classification`` produces class-conditioned images: each
class owns a smooth spatial template plus per-sample noise, so small
CNNs/ViTs reach high accuracy in a few epochs while first-layer
activations stay uniform-ish (raw pixel statistics) -- the property the
paper highlights for ResNet-18's first layer.

``make_token_classification`` produces token sequences where the label
depends on (a) the presence of class-indicative trigger tokens and (b)
an order-sensitive pairing, so attention is genuinely useful.  This is
the stand-in for the GLUE tasks (MNLI 3-class, CoLA/SST-2 binary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.nn.models import IMAGE_SHAPE, MODEL_BUILDERS, SEQ_LEN, VOCAB_SIZE


@dataclass
class Dataset:
    """Train/test split of one synthetic task."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    input_kind: str  # "image" | "tokens"
    num_classes: int

    @property
    def n_train(self) -> int:
        return self.x_train.shape[0]

    @property
    def n_test(self) -> int:
        return self.x_test.shape[0]


def make_image_classification(
    num_classes: int = 10,
    n_train: int = 512,
    n_test: int = 256,
    noise: float = 0.55,
    gain_sigma: float = 1.3,
    seed: int = 0,
) -> Dataset:
    """Class-template images with additive noise and dynamic-range gain.

    ``gain_sigma`` controls a per-sample lognormal intensity gain that
    gives images (and therefore early activations) the wide dynamic
    range real photographs have after exposure variation.  This is the
    substitution lever that recreates the paper's low-bit sensitivity:
    with it, 4-bit ``int`` clips bright samples badly while ``flint``
    keeps both range and mid-range precision (Fig. 11's gap).
    """
    rng = np.random.default_rng(seed)
    channels, height, width = IMAGE_SHAPE

    # Smooth per-class templates: random low-frequency patterns.
    yy, xx = np.meshgrid(np.linspace(0, 1, height), np.linspace(0, 1, width), indexing="ij")
    templates = np.empty((num_classes, channels, height, width))
    for cls in range(num_classes):
        for ch in range(channels):
            fx, fy = rng.uniform(1.0, 3.0, size=2)
            px, py = rng.uniform(0, 2 * np.pi, size=2)
            templates[cls, ch] = 0.5 + 0.5 * np.sin(2 * np.pi * fx * xx + px) * np.cos(
                2 * np.pi * fy * yy + py
            )

    def draw(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=n)
        images = templates[labels] + noise * rng.normal(size=(n, channels, height, width))
        images = np.clip(images, 0.0, 1.0)
        if gain_sigma > 0:
            gains = rng.lognormal(0.0, gain_sigma, size=(n, 1, 1, 1))
            images = images * gains
        return images, labels

    x_train, y_train = draw(n_train)
    x_test, y_test = draw(n_test)
    return Dataset(x_train, y_train, x_test, y_test, "image", num_classes)


def make_token_classification(
    num_classes: int = 3,
    n_train: int = 512,
    n_test: int = 256,
    zipf: float = 1.2,
    seed: int = 0,
) -> Dataset:
    """Trigger-token sequence classification over a small vocabulary.

    Filler tokens follow a Zipf distribution (``zipf`` exponent), the
    frequency profile of natural text: frequent tokens get well-trained
    embeddings while rare tokens keep larger, noisier ones -- the
    mechanism behind real BERT's activation outliers.
    """
    rng = np.random.default_rng(seed)
    # Reserve one trigger token per class (tokens 1..num_classes);
    # token 0 is the CLS position filler.
    trigger = np.arange(1, num_classes + 1)
    fillers = np.arange(num_classes + 1, VOCAB_SIZE)
    probs = 1.0 / np.arange(1, fillers.size + 1) ** zipf
    probs /= probs.sum()

    def draw(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=n)
        seqs = rng.choice(fillers, p=probs, size=(n, SEQ_LEN))
        seqs[:, 0] = 0  # CLS slot
        # Plant 2-3 trigger tokens of the labelled class at random slots.
        for row, label in enumerate(labels):
            k = rng.integers(2, 4)
            positions = rng.choice(np.arange(1, SEQ_LEN), size=k, replace=False)
            seqs[row, positions] = trigger[label]
        return seqs, labels

    x_train, y_train = draw(n_train)
    x_test, y_test = draw(n_test)
    return Dataset(x_train, y_train, x_test, y_test, "tokens", num_classes)


def dataset_for_workload(name: str, seed: int = 0, **kwargs) -> Dataset:
    """Dataset matching a model-zoo workload name."""
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown workload {name!r}")
    spec = MODEL_BUILDERS[name]
    if spec["input"] == "image":
        kwargs.setdefault("gain_sigma", spec.get("gain_sigma", 1.3))
        return make_image_classification(num_classes=spec["classes"], seed=seed, **kwargs)
    return make_token_classification(num_classes=spec["classes"], seed=seed, **kwargs)


def iterate_batches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    seed: int = 0,
    shuffle: bool = True,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield mini-batches, optionally shuffled each call."""
    n = x.shape[0]
    order = np.arange(n)
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start: start + batch_size]
        yield x[idx], y[idx]
