"""Synthetic datasets and distribution samplers.

Substitutes for ImageNet and GLUE (see DESIGN.md): learnable synthetic
tasks whose inputs/labels are deterministic functions of a seed, so
every experiment is reproducible without downloads.
"""

from repro.data.synthetic import (
    Dataset,
    make_image_classification,
    make_token_classification,
    dataset_for_workload,
    iterate_batches,
)
from repro.data.distributions import (
    sample_distribution,
    DISTRIBUTIONS,
    make_tensor_suite,
)

__all__ = [
    "Dataset",
    "make_image_classification",
    "make_token_classification",
    "dataset_for_workload",
    "iterate_batches",
    "sample_distribution",
    "DISTRIBUTIONS",
    "make_tensor_suite",
]
