"""Memory hierarchy model: off-chip DRAM + on-chip unified buffer.

Stands in for the paper's CACTI-derived numbers.  Per-bit access
energies follow the well-known ~100:10:1 hierarchy ratio between DRAM,
large SRAM and datapath logic (Horowitz, ISSCC 2014), scaled to 28 nm;
only the *relative* magnitudes matter for reproducing the Fig. 13
energy split.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies in picojoules."""

    dram_per_bit: float = 20.0
    buffer_per_bit: float = 1.0
    #: per-MAC energy at 4-bit int; wider MACs scale ~quadratically
    mac_4bit: float = 0.1
    #: extra energy of one ANT decoder activation (tiny LZD + shifter)
    decoder_per_use: float = 0.002
    #: static power in mW per mm^2 of logic at 28 nm
    static_mw_per_mm2: float = 50.0
    #: clock frequency in GHz (for static energy per cycle)
    frequency_ghz: float = 1.0

    def mac_energy(self, bits: int) -> float:
        """Per-MAC dynamic energy; multiplier energy grows ~quadratically."""
        ratio = bits / 4.0
        return self.mac_4bit * ratio * ratio

    def static_energy(self, area_mm2: float, cycles: int) -> float:
        """Static (leakage) energy in pJ over a cycle count."""
        seconds = cycles / (self.frequency_ghz * 1e9)
        watts = self.static_mw_per_mm2 * area_mm2 * 1e-3
        return watts * seconds * 1e12


@dataclass
class MemoryModel:
    """Bandwidth and capacity of the two-level memory system.

    ``dram_bandwidth_bits`` is the off-chip bits deliverable per cycle;
    the unified on-chip buffer is double-buffered, so a layer whose
    working set fits is charged one DRAM round trip.
    """

    dram_bandwidth_bits: int = 512
    buffer_bytes: int = 512 * 1024
    energy: EnergyTable = field(default_factory=EnergyTable)

    def dram_cycles(self, bits: int) -> int:
        """Cycles to stream ``bits`` over the DRAM interface."""
        if bits < 0:
            raise ValueError("negative traffic")
        return -(-bits // self.dram_bandwidth_bits)  # ceil div

    def dram_energy(self, bits: int) -> float:
        return bits * self.energy.dram_per_bit

    def buffer_energy(self, bits: int) -> float:
        return bits * self.energy.buffer_per_bit
