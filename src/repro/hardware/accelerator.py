"""End-to-end accelerator simulation (the Fig. 13 comparison).

An :class:`Accelerator` combines a systolic array (timing), a memory
model (traffic + energy) and an area breakdown (static power, iso-area
normalisation).  ``simulate`` executes a workload layer list under a
per-layer bit assignment and returns latency plus the four-way energy
split the paper plots (static / DRAM / on-chip buffer / core).

Model summary (per layer):

* compute cycles from :class:`SystolicArray` with precision fusion;
* DRAM traffic = weights + inputs at their assigned widths + outputs
  at the accumulator width re-quantized by the activation unit;
* buffer traffic follows output-stationary tiling reuse: the input
  matrix is re-read once per column-tile, the weight matrix once per
  row-tile;
* latency = max(compute, DRAM streaming) per layer (double buffering);
* OLAccel-style designs add an outlier-orchestration cycle overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hardware.area import ACCELERATOR_CONFIGS, AreaBreakdown, AreaModel
from repro.hardware.memory import MemoryModel
from repro.hardware.systolic import Dataflow, SystolicArray
from repro.hardware.workloads import LayerShape

#: output activations leave the array at accumulator precision and are
#: re-quantized by the activation unit (Fig. 4); DRAM sees low bits,
#: the buffer sees this intermediate width.
OUTPUT_BITS = 16


@dataclass(frozen=True)
class LayerAssignment:
    """Bit widths chosen for one layer by a quantization scheme."""

    weight_bits: int
    act_bits: int
    #: fraction of elements taking a slow outlier path (OLAccel)
    outlier_fraction: float = 0.0


@dataclass
class SimulationResult:
    """Latency and energy of one workload on one accelerator."""

    name: str
    cycles: int
    energy_pj: Dict[str, float]
    per_layer: List[dict] = field(default_factory=list)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())


class Accelerator:
    """A complete accelerator design under simulation."""

    def __init__(
        self,
        name: str,
        array: SystolicArray,
        memory: MemoryModel,
        area: AreaBreakdown,
        outlier_overhead: float = 0.0,
    ) -> None:
        self.name = name
        self.array = array
        self.memory = memory
        self.area = area
        self.outlier_overhead = outlier_overhead

    # ------------------------------------------------------------------
    def _layer_traffic_bits(self, layer: LayerShape, assign: LayerAssignment) -> dict:
        """DRAM and buffer traffic for one layer."""
        w_bits = layer.weight_elems * assign.weight_bits
        in_bits = layer.input_elems * assign.act_bits
        out_bits = layer.output_elems * assign.act_bits
        if assign.outlier_fraction > 0.0:
            # outliers stored wide (16-bit value + index), on top of the
            # dense low-bit stream
            extra = assign.outlier_fraction * (16 + 4)
            w_bits = int(layer.weight_elems * (assign.weight_bits + extra))
            in_bits = int(layer.input_elems * (assign.act_bits + extra))
        dram = w_bits + in_bits + out_bits

        cycles = self.array.gemm_cycles(
            layer.m, layer.k, layer.n, max(assign.weight_bits, assign.act_bits)
        )
        col_tiles = -(-layer.n // cycles.effective_cols)
        row_tiles = -(-layer.m // cycles.effective_rows)
        buffer = (
            layer.input_elems * assign.act_bits * row_tiles
            + layer.weight_elems * assign.weight_bits * col_tiles
            + layer.output_elems * OUTPUT_BITS
        )
        return {"dram": dram, "buffer": buffer, "compute": cycles.compute_cycles}

    # ------------------------------------------------------------------
    def simulate(
        self,
        layers: Sequence[LayerShape],
        assignments: Sequence[LayerAssignment],
    ) -> SimulationResult:
        if len(layers) != len(assignments):
            raise ValueError(
                f"{len(layers)} layers but {len(assignments)} assignments"
            )
        energy = {"static": 0.0, "dram": 0.0, "buffer": 0.0, "core": 0.0}
        total_cycles = 0
        rows = []
        table = self.memory.energy
        for layer, assign in zip(layers, assignments):
            traffic = self._layer_traffic_bits(layer, assign)
            compute = traffic["compute"]
            if self.outlier_overhead > 0.0:
                compute = int(compute * (1.0 + self.outlier_overhead))
            dram_cycles = self.memory.dram_cycles(traffic["dram"])
            layer_cycles = max(compute, dram_cycles)
            total_cycles += layer_cycles

            op_bits = max(assign.weight_bits, assign.act_bits)
            mac_e = table.mac_energy(max(op_bits, self.array.native_bits))
            core = layer.macs * mac_e
            if self.area.decoder_count:
                decode_events = layer.input_elems + layer.weight_elems
                core += decode_events * table.decoder_per_use

            energy["dram"] += self.memory.dram_energy(traffic["dram"])
            energy["buffer"] += self.memory.buffer_energy(traffic["buffer"])
            energy["core"] += core
            rows.append(
                {
                    "layer": layer.name,
                    "cycles": layer_cycles,
                    "compute_cycles": compute,
                    "dram_cycles": dram_cycles,
                    "bound": "memory" if dram_cycles > compute else "compute",
                }
            )
        energy["static"] = table.static_energy(self.area.total_mm2, total_cycles)
        return SimulationResult(
            name=self.name, cycles=total_cycles, energy_pj=energy, per_layer=rows
        )


def build_accelerator(
    config_name: str,
    memory: Optional[MemoryModel] = None,
) -> Accelerator:
    """Instantiate one of the catalogue designs (ANT-OS, BitFusion, ...)."""
    if config_name not in ACCELERATOR_CONFIGS:
        raise KeyError(
            f"unknown accelerator {config_name!r}; "
            f"choose from {sorted(ACCELERATOR_CONFIGS)}"
        )
    cfg = ACCELERATOR_CONFIGS[config_name]
    array = SystolicArray(
        rows=cfg["rows"],
        cols=cfg["cols"],
        dataflow=Dataflow.OUTPUT_STATIONARY
        if cfg["dataflow"] == "os"
        else Dataflow.WEIGHT_STATIONARY,
        native_bits=cfg["native_bits"],
        supports_fusion=cfg["fusion"],
    )
    area = AreaModel().breakdown(cfg["design"])
    return Accelerator(
        name=config_name,
        array=array,
        memory=memory or MemoryModel(),
        area=area,
        outlier_overhead=cfg["outlier_overhead"],
    )


def uniform_assignment(
    layers: Sequence[LayerShape],
    weight_bits: int,
    act_bits: int,
    outlier_fraction: float = 0.0,
) -> List[LayerAssignment]:
    """Same bit widths for every layer."""
    return [
        LayerAssignment(weight_bits, act_bits, outlier_fraction) for _ in layers
    ]


def mixed_assignment(
    layers: Sequence[LayerShape],
    eight_bit_layer_indices: Sequence[int],
    low_bits: int = 4,
    high_bits: int = 8,
) -> List[LayerAssignment]:
    """Low bits everywhere except the listed escalated layers."""
    escalated = set(eight_bit_layer_indices)
    return [
        LayerAssignment(
            high_bits if i in escalated else low_bits,
            high_bits if i in escalated else low_bits,
        )
        for i in range(len(layers))
    ]
