"""Instruction-set extension model (Sec. VI-B of the paper).

ANT's integration promise: the only ISA change is a **type field on the
multiply-accumulate instruction** (int-based ANT adds the ``flint`` and
``pot`` operand types).  Load/store instructions are untouched because
every ANT tensor is fixed-length, and the programming model for CONV/FC
layers is unchanged -- the compiler just emits the per-layer type
chosen at quantization time.

This module encodes that contract executably: an instruction format, an
assembler from quantized layer configurations to instruction streams,
and checks that the memory instructions are bit-identical to the
baseline encoding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence


class Opcode(enum.IntEnum):
    """Minimal accelerator opcode set (TPU-like)."""

    LOAD = 0x0
    STORE = 0x1
    MATMUL = 0x2  # multiply-accumulate over a tile
    ACT = 0x3     # activation unit (also re-quantizes outputs, Fig. 4)


class OperandType(enum.IntEnum):
    """The MATMUL type field.  Baseline ISAs have INT4/INT8; ANT adds
    FLINT4 and POT4 (Sec. VI-B: "two new data types")."""

    INT8 = 0x0
    INT4 = 0x1
    FLINT4 = 0x2
    POT4 = 0x3


#: type-field values present in the *baseline* (pre-ANT) ISA
BASELINE_TYPES = {OperandType.INT8, OperandType.INT4}
#: values added by the ANT extension
ANT_EXTENSION_TYPES = {OperandType.FLINT4, OperandType.POT4}

_KIND_TO_OPERAND: Dict[str, OperandType] = {
    "int8": OperandType.INT8,
    "int4": OperandType.INT4,
    "flint4": OperandType.FLINT4,
    "pot4": OperandType.POT4,
}


@dataclass(frozen=True)
class Instruction:
    """One 32-bit instruction word.

    Layout: ``[31:28] opcode | [27:24] weight type | [23:20] input type
    | [19:0] operand (address / tile id)``.  LOAD/STORE leave both type
    fields zero -- they move untyped fixed-length bytes.
    """

    opcode: Opcode
    operand: int
    weight_type: OperandType = OperandType.INT8
    input_type: OperandType = OperandType.INT8

    def encode(self) -> int:
        if not 0 <= self.operand < (1 << 20):
            raise ValueError(f"operand {self.operand} exceeds 20 bits")
        if self.opcode in (Opcode.LOAD, Opcode.STORE):
            # Memory instructions carry no type field: ANT keeps them
            # identical to the baseline encoding.
            return (int(self.opcode) << 28) | self.operand
        return (
            (int(self.opcode) << 28)
            | (int(self.weight_type) << 24)
            | (int(self.input_type) << 20)
            | self.operand
        )

    @property
    def uses_ant_extension(self) -> bool:
        return bool(
            {self.weight_type, self.input_type} & ANT_EXTENSION_TYPES
        ) and self.opcode is Opcode.MATMUL


def operand_type_for(kind: str, bits: int) -> OperandType:
    """Map a (kind, bits) pair from the quantizer to an ISA type field."""
    key = f"{kind}{bits}"
    if key not in _KIND_TO_OPERAND:
        raise KeyError(
            f"no ISA operand type for {key!r}; int-based ANT supports "
            f"{sorted(_KIND_TO_OPERAND)}"
        )
    return _KIND_TO_OPERAND[key]


@dataclass(frozen=True)
class LayerProgram:
    """Instruction stream for one CONV/FC layer."""

    layer: str
    instructions: List[Instruction]

    @property
    def matmul_types(self) -> set:
        return {
            (inst.weight_type, inst.input_type)
            for inst in self.instructions
            if inst.opcode is Opcode.MATMUL
        }


def assemble_layer(
    layer_name: str,
    weight_kind: str,
    weight_bits: int,
    input_kind: str,
    input_bits: int,
    n_tiles: int,
) -> LayerProgram:
    """Emit the canonical load -> matmul* -> act -> store sequence.

    The structure (and every LOAD/STORE encoding) is independent of the
    chosen ANT types -- only the MATMUL type fields change, which is
    the paper's "unmodified programming model" claim.
    """
    if n_tiles <= 0:
        raise ValueError("a layer needs at least one tile")
    weight_type = operand_type_for(weight_kind, weight_bits)
    input_type = operand_type_for(input_kind, input_bits)
    instructions = [
        Instruction(Opcode.LOAD, operand=0),      # weights
        Instruction(Opcode.LOAD, operand=1),      # inputs
    ]
    for tile in range(n_tiles):
        instructions.append(
            Instruction(
                Opcode.MATMUL,
                operand=tile,
                weight_type=weight_type,
                input_type=input_type,
            )
        )
    instructions.append(Instruction(Opcode.ACT, operand=0))
    instructions.append(Instruction(Opcode.STORE, operand=2))
    return LayerProgram(layer=layer_name, instructions=instructions)


def assemble_model(layer_specs: Sequence[dict]) -> List[LayerProgram]:
    """Assemble a whole quantized model.

    ``layer_specs`` entries: ``{"name", "weight_kind", "weight_bits",
    "input_kind", "input_bits", "tiles"}`` -- exactly what
    :meth:`repro.quant.ModelQuantizer.report` knows per layer.
    """
    return [
        assemble_layer(
            spec["name"],
            spec["weight_kind"],
            spec["weight_bits"],
            spec["input_kind"],
            spec["input_bits"],
            spec["tiles"],
        )
        for spec in layer_specs
    ]


def memory_instructions_identical(program: LayerProgram, baseline: LayerProgram) -> bool:
    """Check the Sec. VI-B claim: LOAD/STORE words do not change when a
    layer's MATMUL type switches between baseline int and ANT types."""
    def mem(prog):
        return [
            inst.encode()
            for inst in prog.instructions
            if inst.opcode in (Opcode.LOAD, Opcode.STORE)
        ]
    return mem(program) == mem(baseline)
