"""TypeFusion processing element (Sec. V, Figs. 7-8), bit-exact.

The int-based TypeFusion MAC multiplies two operands in the unified
``(base integer, exponent)`` representation:

    ic = ia * ib            (4-bit int multiplier, signed)
    ec = ea + eb            (4-bit exponent adder)
    id = ic << ec           (left shifter)
    if = ie + id            (16-bit accumulator)

Because operands are decoded *before* entering the array, the PE is
type-agnostic: int/PoT/flint inputs all arrive as (base, exponent)
pairs, and mixed-type multiplication (e.g. flint weight x PoT
activation) needs no special casing -- the paper's key hardware claim.

``fused_int8_mac`` reproduces Fig. 8: an 8-bit int multiply built from
four 4-bit ANT PEs plus an adder tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.hardware.decoder import (
    IntDecode,
    IntDecoder,
    IntFlintDecoder,
    PoTDecoder,
)

#: accumulator width of the low-bit MAC (Sec. V-B)
ACCUMULATOR_BITS = 16


class MACOverflowError(ArithmeticError):
    """Raised when a product or accumulation exceeds its register width."""


@dataclass(frozen=True)
class DecodedOperand:
    """An operand in the unified (base, exponent, sign) representation."""

    base: int
    exponent: int
    sign: int = 0

    @classmethod
    def from_decode(cls, decode: IntDecode) -> "DecodedOperand":
        return cls(base=decode.base, exponent=decode.exponent, sign=decode.sign)

    @property
    def signed_base(self) -> int:
        return -self.base if self.sign else self.base

    @property
    def value(self) -> int:
        return self.signed_base << self.exponent


class TypeFusionMAC:
    """The int-based 4-bit ANT MAC unit (Fig. 7).

    ``bits`` is the operand width; products are shifted and accumulated
    in a ``accumulator_bits``-wide register with overflow checking, so a
    test can prove the paper's claim that the 4-bit flint product
    always fits the 16-bit accumulator path.
    """

    def __init__(self, bits: int = 4, accumulator_bits: int = ACCUMULATOR_BITS) -> None:
        self.bits = bits
        self.accumulator_bits = accumulator_bits
        self.accumulator = 0
        #: cumulative op counts, used by the energy model
        self.mul_count = 0
        self.acc_count = 0

    def reset(self) -> None:
        self.accumulator = 0

    def multiply(self, a: DecodedOperand, b: DecodedOperand) -> int:
        """One multiply: returns the shifted product ``id``."""
        product = a.signed_base * b.signed_base
        exponent = a.exponent + b.exponent
        shifted = product << exponent
        limit = 1 << (self.accumulator_bits - 1)
        if not -limit <= shifted < limit:
            raise MACOverflowError(
                f"product {shifted} exceeds {self.accumulator_bits}-bit range"
            )
        self.mul_count += 1
        return shifted

    def accumulate(self, value: int) -> int:
        """Add ``value`` into the wide accumulator (no saturation)."""
        self.accumulator += value
        self.acc_count += 1
        return self.accumulator

    def mac(self, a: DecodedOperand, b: DecodedOperand) -> int:
        return self.accumulate(self.multiply(a, b))


def decode_operand(code: int, kind: str, bits: int, signed: bool) -> DecodedOperand:
    """Route a raw code word through the right decoder for its type."""
    if kind == "flint":
        decoder = IntFlintDecoder(bits, signed)
    elif kind == "int":
        decoder = IntDecoder(bits, signed)
    elif kind == "pot":
        decoder = PoTDecoder(bits, signed)
    else:
        raise KeyError(f"int-based PE does not support kind {kind!r}")
    return DecodedOperand.from_decode(decoder.decode(code))


def dot_product(
    codes_a: Iterable[int],
    codes_b: Iterable[int],
    kind_a: str,
    kind_b: str,
    bits: int = 4,
    signed: bool = True,
) -> int:
    """Dot product of two code streams on one TypeFusion MAC.

    Demonstrates mixed-type operands (e.g. flint weights x PoT
    activations) computing on the same PE.
    """
    mac = TypeFusionMAC(bits)
    for code_a, code_b in zip(codes_a, codes_b):
        a = decode_operand(code_a, kind_a, bits, signed)
        b = decode_operand(code_b, kind_b, bits, signed)
        mac.mac(a, b)
    return mac.accumulator


def _split_int8(value: int) -> Tuple[DecodedOperand, DecodedOperand]:
    """Decompose an unsigned 8-bit int into <hi, 4> and <lo, 0> operands."""
    if not 0 <= value < 256:
        raise ValueError(f"{value} is not an unsigned 8-bit value")
    hi, lo = value >> 4, value & 0xF
    return (
        DecodedOperand(base=hi, exponent=4),
        DecodedOperand(base=lo, exponent=0),
    )


def fused_int8_mac(a: int, b: int, pes: List[TypeFusionMAC] = None) -> int:
    """8-bit x 8-bit multiply on four 4-bit ANT PEs (Fig. 8).

    Each partial product runs on its own PE with a widened local
    accumulator (the paper pairs the four PEs with a 16-bit adder tree);
    the final sum is the exact 8x8 product.
    """
    if pes is None:
        pes = [TypeFusionMAC(4, accumulator_bits=18) for _ in range(4)]
    if len(pes) != 4:
        raise ValueError("8-bit fusion requires exactly four 4-bit PEs")
    a_hi, a_lo = _split_int8(a)
    b_hi, b_lo = _split_int8(b)
    partials = [
        pes[0].multiply(a_hi, b_hi),
        pes[1].multiply(a_hi, b_lo),
        pes[2].multiply(a_lo, b_hi),
        pes[3].multiply(a_lo, b_lo),
    ]
    return sum(partials)
