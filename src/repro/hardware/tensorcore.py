"""Tensor-core integration model (Sec. VI-A "Tensor Core").

GPU tensor cores already run mixed int4/int8 precision -- the A100
provides 624 TOPS at int8 and 1248 TOPS at int4 with 32-bit int
accumulators.  Adopting ANT requires only operand decoders in front of
the MAC units; the memory hierarchy is untouched because ANT tensors
are fixed-length.

This module models that integration at the throughput level: a GEMM's
execution time is the max of its math time (at the precision-dependent
TOPS) and its memory time (HBM bandwidth), and ANT simply unlocks the
int4 rate for the >=90% of tensors that quantize to 4 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware.accelerator import LayerAssignment
from repro.hardware.workloads import LayerShape


@dataclass(frozen=True)
class TensorCoreSpec:
    """Throughput/bandwidth envelope of a tensor-core GPU (A100-like)."""

    name: str = "a100"
    int8_tops: float = 624.0
    int4_tops: float = 1248.0
    hbm_gbps: float = 1555.0
    #: decoder throughput tax for ANT operands; the LZD+shift decoder
    #: pipelines at the MAC rate, so the tax is ~zero (Sec. VI-A).
    ant_decode_tax: float = 0.0

    def math_seconds(self, macs: int, operand_bits: int) -> float:
        tops = self.int4_tops if operand_bits <= 4 else self.int8_tops
        ops = 2.0 * macs  # MAC = 2 ops, the TOPS convention
        return ops / (tops * 1e12) * (1.0 + self.ant_decode_tax)

    def memory_seconds(self, traffic_bits: int) -> float:
        return traffic_bits / 8.0 / (self.hbm_gbps * 1e9)


@dataclass(frozen=True)
class TensorCoreResult:
    seconds: float
    math_bound_layers: int
    memory_bound_layers: int


def simulate_tensorcore(
    layers: Sequence[LayerShape],
    assignments: Sequence[LayerAssignment],
    spec: TensorCoreSpec = TensorCoreSpec(),
) -> TensorCoreResult:
    """Roofline execution of a workload on a tensor-core GPU."""
    if len(layers) != len(assignments):
        raise ValueError(
            f"{len(layers)} layers but {len(assignments)} assignments"
        )
    total = 0.0
    math_bound = 0
    memory_bound = 0
    for layer, assign in zip(layers, assignments):
        operand_bits = max(assign.weight_bits, assign.act_bits)
        math = spec.math_seconds(layer.macs, operand_bits)
        traffic = (
            layer.weight_elems * assign.weight_bits
            + layer.input_elems * assign.act_bits
            + layer.output_elems * assign.act_bits
        )
        memory = spec.memory_seconds(traffic)
        total += max(math, memory)
        if math >= memory:
            math_bound += 1
        else:
            memory_bound += 1
    return TensorCoreResult(
        seconds=total, math_bound_layers=math_bound, memory_bound_layers=memory_bound
    )
