"""Accelerator hardware model (Secs. V-VI of the paper).

Two layers:

* **Bit-exact functional units** -- :mod:`repro.hardware.decoder`
  implements the float-based flint decoder (Fig. 5, Eqs. 3-4) and the
  int-based decoder (Fig. 6, Eqs. 5-8, Table III);
  :mod:`repro.hardware.pe` implements the TypeFusion MAC (Fig. 7) and
  the 4x4-bit -> 8-bit fusion (Fig. 8).  These are validated against
  the software type definitions in :mod:`repro.dtypes`.

* **Performance/energy/area models** -- :mod:`repro.hardware.systolic`
  (tile-level cycle model for output/weight-stationary arrays),
  :mod:`repro.hardware.memory` (DRAM + on-chip buffer),
  :mod:`repro.hardware.area` (component areas calibrated to Table VII)
  and :mod:`repro.hardware.accelerator` (the six evaluated designs:
  ANT-OS, ANT-WS, BitFusion, OLAccel, BiScaled, AdaFloat).
"""

from repro.hardware.decoder import (
    leading_zero_detect,
    FloatFlintDecoder,
    IntFlintDecoder,
    IntDecoder,
    PoTDecoder,
)
from repro.hardware.pe import TypeFusionMAC, fused_int8_mac, DecodedOperand
from repro.hardware.systolic import Dataflow, SystolicArray
from repro.hardware.memory import MemoryModel, EnergyTable
from repro.hardware.area import AreaModel, ACCELERATOR_CONFIGS
from repro.hardware.accelerator import Accelerator, SimulationResult, build_accelerator
from repro.hardware.workloads import LayerShape, workload_layers, WORKLOAD_NAMES
from repro.hardware.isa import (
    Instruction,
    LayerProgram,
    Opcode,
    OperandType,
    assemble_layer,
    assemble_model,
)
from repro.hardware.tensorcore import TensorCoreSpec, simulate_tensorcore

__all__ = [
    "leading_zero_detect",
    "FloatFlintDecoder",
    "IntFlintDecoder",
    "IntDecoder",
    "PoTDecoder",
    "TypeFusionMAC",
    "fused_int8_mac",
    "DecodedOperand",
    "Dataflow",
    "SystolicArray",
    "MemoryModel",
    "EnergyTable",
    "AreaModel",
    "ACCELERATOR_CONFIGS",
    "Accelerator",
    "SimulationResult",
    "build_accelerator",
    "LayerShape",
    "workload_layers",
    "WORKLOAD_NAMES",
    "Instruction",
    "LayerProgram",
    "Opcode",
    "OperandType",
    "assemble_layer",
    "assemble_model",
    "TensorCoreSpec",
    "simulate_tensorcore",
]
