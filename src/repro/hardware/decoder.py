"""Bit-exact ANT decoders (Figs. 5-6, Eqs. 3-8, Table III).

The decoders operate on integer code words exactly as the RTL would:
a leading-zero detector plus shifters.  Two target representations:

* **float-based** (Fig. 5): code -> (exponent, mantissa-fraction), for
  the float PE variant;
* **int-based** (Fig. 6): code -> (base integer, exponent) such that
  ``value = base << exponent`` -- the decomposition of Table III, used
  by the int PE that the paper selects for its final design.

All decoders handle the unsigned case directly; signed codes carry a
sign bit on top of a narrower magnitude decoder (Eqs. 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dtypes.base import NumericType
from repro.dtypes.flint import FlintType
from repro.dtypes.int_type import IntType
from repro.dtypes.pot_type import PoTType


def leading_zero_detect(value: int, width: int) -> int:
    """LZD circuit: leading zeros of ``value`` in a ``width``-bit field."""
    value = int(value)
    if not 0 <= value < (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    if value == 0:
        return width
    return width - value.bit_length()


@dataclass(frozen=True)
class FloatDecode:
    """Output of the float-based decoder: value = 2^(exponent-1) * fraction."""

    exponent: int
    fraction: float
    sign: int = 0

    @property
    def value(self) -> float:
        magnitude = (2.0 ** (self.exponent - 1)) * self.fraction if self.exponent > 0 else 0.0
        return -magnitude if self.sign else magnitude


@dataclass(frozen=True)
class IntDecode:
    """Output of the int-based decoder: value = base << exponent."""

    base: int
    exponent: int
    sign: int = 0

    @property
    def value(self) -> int:
        magnitude = self.base << self.exponent
        return -magnitude if self.sign else magnitude


class FloatFlintDecoder:
    """Float-based flint decoder (Fig. 5, Eqs. 3-4), arbitrary width.

    For the unsigned 4-bit case with code bits ``b3 b2 b1 b0``:

        exponent = 3 - LZD(b2 b1 b0)   if b3 == 0
                   4 + LZD(b2 b1 b0)   if b3 == 1
        mantissa = b2 b1 b0 << (LZD + 1)    (kept in 3 bits)

    The decoded real value is ``2^(exponent - 1) * (1 + mantissa/2^w)``
    with ``w = bits - 1``, matching Table II with its bias of -1.
    """

    def __init__(self, bits: int, signed: bool = False) -> None:
        self.bits = bits
        self.signed = signed
        self.mag_bits = bits - 1 if signed else bits

    def decode(self, code: int) -> FloatDecode:
        code = int(code)
        if not 0 <= code < (1 << self.bits):
            raise ValueError(f"code {code} does not fit in {self.bits} bits")
        sign = 0
        if self.signed:
            sign = (code >> self.mag_bits) & 1
            code &= (1 << self.mag_bits) - 1
        b = self.mag_bits
        if code == 0:
            return FloatDecode(exponent=0, fraction=0.0, sign=sign)
        msb = (code >> (b - 1)) & 1
        rest = code & ((1 << (b - 1)) - 1)
        lzd = leading_zero_detect(rest, b - 1)
        if msb == 0:
            raw_exponent = (b - 1) - lzd
        else:
            raw_exponent = b + lzd
        # Mantissa register: rest shifted left past the first-one marker,
        # truncated to b-1 bits (Eq. 4).
        mantissa_reg = (rest << (lzd + 1)) & ((1 << (b - 1)) - 1)
        fraction = 1.0 + mantissa_reg / float(1 << (b - 1))
        return FloatDecode(exponent=raw_exponent, fraction=fraction, sign=sign)

    def decode_value(self, code: int) -> float:
        return self.decode(code).value


class IntFlintDecoder:
    """Int-based flint decoder (Fig. 6, Eqs. 5-8, Table III).

    For the unsigned 4-bit case with code ``b3 b2 b1 b0``:

        base     = b2 b1 b0          if b3 == 0
                   b2 b1 b0 << 1     if b3 == 1
                   1                 if code == 1000
        exponent = 0                 if b3 == 0
                   2 * LZD(b2 b1 b0) if b3 == 1
    """

    def __init__(self, bits: int, signed: bool = False) -> None:
        self.bits = bits
        self.signed = signed
        self.mag_bits = bits - 1 if signed else bits

    def decode(self, code: int) -> IntDecode:
        code = int(code)
        if not 0 <= code < (1 << self.bits):
            raise ValueError(f"code {code} does not fit in {self.bits} bits")
        sign = 0
        if self.signed:
            sign = (code >> self.mag_bits) & 1
            code &= (1 << self.mag_bits) - 1
        b = self.mag_bits
        msb = (code >> (b - 1)) & 1
        rest = code & ((1 << (b - 1)) - 1)
        if msb == 0:
            return IntDecode(base=rest, exponent=0, sign=sign)
        if rest == 0:
            # top code 10...0: value 2^(2b-2)
            return IntDecode(base=1, exponent=2 * (b - 1), sign=sign)
        lzd = leading_zero_detect(rest, b - 1)
        return IntDecode(base=rest << 1, exponent=2 * lzd, sign=sign)

    def decode_value(self, code: int) -> int:
        return self.decode(code).value


class IntDecoder:
    """Unified-representation decoder for plain int codes: exponent 0."""

    def __init__(self, bits: int, signed: bool = False) -> None:
        self.bits = bits
        self.signed = signed

    def decode(self, code: int) -> IntDecode:
        code = int(code)
        if not 0 <= code < (1 << self.bits):
            raise ValueError(f"code {code} does not fit in {self.bits} bits")
        if self.signed:
            half = 1 << (self.bits - 1)
            value = code - (1 << self.bits) if code >= half else code
            return IntDecode(base=abs(value), exponent=0, sign=1 if value < 0 else 0)
        return IntDecode(base=code, exponent=0, sign=0)


class PoTDecoder:
    """Unified-representation decoder for PoT codes: base 1 (or 0)."""

    def __init__(self, bits: int, signed: bool = False) -> None:
        self.bits = bits
        self.signed = signed
        self.mag_bits = bits - 1 if signed else bits

    def decode(self, code: int) -> IntDecode:
        code = int(code)
        if not 0 <= code < (1 << self.bits):
            raise ValueError(f"code {code} does not fit in {self.bits} bits")
        sign = 0
        if self.signed:
            sign = (code >> self.mag_bits) & 1
            code &= (1 << self.mag_bits) - 1
        if code == 0:
            return IntDecode(base=0, exponent=0, sign=sign)
        return IntDecode(base=1, exponent=code - 1, sign=sign)


def decode_table(bits: int = 4) -> Tuple[dict, ...]:
    """Reproduce Table III: per-code (binary, exponent, base, value)."""
    decoder = IntFlintDecoder(bits, signed=False)
    rows = []
    for code in range(1 << bits):
        decoded = decoder.decode(code)
        rows.append(
            {
                "binary": format(code, f"0{bits}b"),
                "exponent": decoded.exponent,
                "base": decoded.base,
                "value": decoded.value,
            }
        )
    return tuple(rows)


def codec_truth_table(dtype: NumericType) -> Tuple[dict, ...]:
    """Ground-truth code -> value table straight from the codec LUT.

    This is the single source of truth the RTL-style decoders in this
    module are validated against: the same
    :class:`repro.dtypes.codec.GridCodec` tables that drive the
    software quantization kernels.
    """
    lut = dtype.codec.decode_lut
    return tuple(
        {
            "code": code,
            "binary": format(code, f"0{dtype.bits}b"),
            "value": float(lut[code]),
        }
        for code in range(dtype.codec.n_codes)
    )


def verify_decoder_against_codec(decoder, dtype: NumericType) -> bool:
    """Check a unified-representation decoder against the codec LUT.

    Works for any decoder exposing ``decode(code)`` with a ``.value``
    result (:class:`IntFlintDecoder`, :class:`IntDecoder`,
    :class:`PoTDecoder`, :class:`FloatFlintDecoder`).
    """
    lut = dtype.codec.decode_lut
    return all(
        float(decoder.decode(code).value) == float(lut[code])
        for code in range(dtype.codec.n_codes)
    )


def verify_against_dtype(bits: int, signed: bool) -> bool:
    """Check both flint decoders against the shared codec truth table."""
    dtype = FlintType(bits, signed=signed)
    return verify_decoder_against_codec(
        IntFlintDecoder(bits, signed=signed), dtype
    ) and verify_decoder_against_codec(FloatFlintDecoder(bits, signed=signed), dtype)


def verify_all_decoders(bits: int = 4) -> bool:
    """Validate every hardware decoder model against the codec LUTs."""
    checks = [
        verify_against_dtype(bits, signed=False),
        verify_against_dtype(bits, signed=True),
        verify_decoder_against_codec(
            IntDecoder(bits, signed=False), IntType(bits, signed=False)
        ),
        verify_decoder_against_codec(
            IntDecoder(bits, signed=True), IntType(bits, signed=True)
        ),
        verify_decoder_against_codec(
            PoTDecoder(bits, signed=False), PoTType(bits, signed=False)
        ),
        verify_decoder_against_codec(
            PoTDecoder(bits, signed=True), PoTType(bits, signed=True)
        ),
    ]
    return all(checks)
