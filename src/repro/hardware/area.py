"""Area model calibrated to the paper's Table VII (28 nm TSMC).

Component areas come straight from the paper where given (ANT decoder
4.9 um^2, 4-bit ANT PE 79.57 um^2, 512 KB buffer 4.2 mm^2) and are
derived from the iso-area PE counts otherwise (e.g. AdaFloat fits 896
8-bit PEs in the same ~0.327 mm^2 core).  The model exposes the two
numbers the paper quotes in the text: the ~0.2% decoder overhead of
ANT and the ~3x cost of the float-based PE over the int-based PE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# -- Paper-given component areas (um^2) --------------------------------
ANT_DECODER_UM2 = 4.9
ANT_PE4_UM2 = 79.57
#: float-based flint PE is ~3x the int-based PE (Sec. VII-C)
ANT_FLOAT_PE4_UM2 = 3.0 * ANT_PE4_UM2

#: Table VII core areas (mm^2) and PE counts at iso-area
CORE_BUDGET_MM2 = 0.327
BUFFER_MM2 = 4.2
BUFFER_BYTES = 512 * 1024

#: Table VII rows: design -> (PE count, core area mm^2, PE label)
TABLE_VII: Dict[str, dict] = {
    "ant": {"pes": 4096, "decoders": 128, "core_mm2": 0.327, "pe": "4-bit ANT PE"},
    "bitfusion": {"pes": 4096, "decoders": 0, "core_mm2": 0.326, "pe": "4-bit PE"},
    "olaccel": {"pes": 1152, "decoders": 0, "core_mm2": 0.320, "pe": "4/8-bit PE"},
    "biscaled": {"pes": 2560, "decoders": 0, "core_mm2": 0.328, "pe": "6-bit BPE"},
    "adafloat": {"pes": 896, "decoders": 0, "core_mm2": 0.327, "pe": "8-bit PE"},
}


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of one accelerator design."""

    name: str
    pe_count: int
    pe_area_um2: float
    decoder_count: int
    decoder_area_um2: float
    buffer_mm2: float = BUFFER_MM2

    @property
    def core_mm2(self) -> float:
        return (self.pe_count * self.pe_area_um2 + self.decoder_count * self.decoder_area_um2) / 1e6

    @property
    def decoder_overhead(self) -> float:
        """Decoder area as a fraction of the PE array area."""
        pe_area = self.pe_count * self.pe_area_um2
        if pe_area == 0:
            return 0.0
        return self.decoder_count * self.decoder_area_um2 / pe_area

    @property
    def total_mm2(self) -> float:
        return self.core_mm2 + self.buffer_mm2


class AreaModel:
    """Derive per-PE areas from the Table VII iso-area configuration."""

    def __init__(self, core_budget_mm2: float = CORE_BUDGET_MM2) -> None:
        self.core_budget_mm2 = core_budget_mm2

    def pe_area_um2(self, design: str) -> float:
        spec = TABLE_VII[design]
        decoder_um2 = spec["decoders"] * ANT_DECODER_UM2
        return (spec["core_mm2"] * 1e6 - decoder_um2) / spec["pes"]

    def breakdown(self, design: str) -> AreaBreakdown:
        if design not in TABLE_VII:
            raise KeyError(f"unknown design {design!r}; choose from {sorted(TABLE_VII)}")
        spec = TABLE_VII[design]
        return AreaBreakdown(
            name=design,
            pe_count=spec["pes"],
            pe_area_um2=self.pe_area_um2(design),
            decoder_count=spec["decoders"],
            decoder_area_um2=ANT_DECODER_UM2,
        )

    def float_pe_ratio(self) -> float:
        """float-based ANT PE area over int-based (the ~3x of Sec. VII-C)."""
        return ANT_FLOAT_PE4_UM2 / ANT_PE4_UM2


#: Accelerator design catalogue used by :mod:`repro.hardware.accelerator`.
#: Array geometry is the squarest factorisation of the Table VII PE count.
ACCELERATOR_CONFIGS: Dict[str, dict] = {
    "ant-os": {
        "design": "ant",
        "rows": 64,
        "cols": 64,
        "native_bits": 4,
        "fusion": True,
        "dataflow": "os",
        "outlier_overhead": 0.0,
    },
    "ant-ws": {
        "design": "ant",
        "rows": 64,
        "cols": 64,
        "native_bits": 4,
        "fusion": True,
        "dataflow": "ws",
        "outlier_overhead": 0.0,
    },
    "bitfusion": {
        "design": "bitfusion",
        "rows": 64,
        "cols": 64,
        "native_bits": 4,
        "fusion": True,
        "dataflow": "os",
        "outlier_overhead": 0.0,
    },
    "olaccel": {
        "design": "olaccel",
        "rows": 32,
        "cols": 36,
        "native_bits": 4,
        "fusion": True,
        "dataflow": "os",
        # extra cycles orchestrating the sparse outlier path (~3% of
        # elements served by a narrow high-precision unit)
        "outlier_overhead": 0.25,
    },
    "biscaled": {
        "design": "biscaled",
        "rows": 50,
        "cols": 51,
        "native_bits": 6,
        "fusion": False,
        "dataflow": "os",
        "outlier_overhead": 0.0,
    },
    "adafloat": {
        "design": "adafloat",
        "rows": 28,
        "cols": 32,
        "native_bits": 8,
        "fusion": False,
        "dataflow": "os",
        "outlier_overhead": 0.0,
    },
    # reference design for normalisation: an int8 TPU-like array at the
    # same core budget (8-bit PE ~= 4x the 4-bit PE area -> 1024 PEs)
    "int8": {
        "design": "adafloat",  # closest area row: plain 8-bit PEs
        "rows": 32,
        "cols": 32,
        "native_bits": 8,
        "fusion": False,
        "dataflow": "os",
        "outlier_overhead": 0.0,
    },
}
