"""Tile-level cycle model of a systolic array (Sec. VI-A).

Models GEMM execution on an ``rows x cols`` array of 4-bit PEs under
output-stationary (OS) or weight-stationary (WS) dataflow.  Precision
modes follow the paper's mixed-precision design: a 4-bit layer uses the
full array; an 8-bit layer fuses four PEs into one (Fig. 8), turning an
``n x n`` array into ``n/2 x n/2`` (Sec. VI-A "Component Reuse").

The model is deliberately tile-level rather than cycle-by-cycle: per
tile it charges the streaming cycles plus pipeline fill/drain, which is
what determines the relative latencies in Fig. 13 (the paper's own
simulator is DnnWeaver-derived and similarly analytic).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class Dataflow(enum.Enum):
    OUTPUT_STATIONARY = "os"
    WEIGHT_STATIONARY = "ws"


@dataclass(frozen=True)
class GemmCycles:
    """Cycle breakdown for one GEMM."""

    compute_cycles: int
    tiles: int
    effective_rows: int
    effective_cols: int


class SystolicArray:
    """A systolic array of low-bit PEs with optional precision fusion.

    Parameters
    ----------
    rows, cols:
        Physical PE grid (4-bit PEs for ANT/BitFusion; the native
        precision grid for single-precision designs).
    native_bits:
        Operand width a single PE handles per cycle.
    supports_fusion:
        Whether 4 PEs can fuse into one double-width PE (ANT,
        BitFusion).  Designs without fusion (e.g. AdaFloat's 8-bit PEs)
        run every precision at the native grid.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
        native_bits: int = 4,
        supports_fusion: bool = True,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.dataflow = dataflow
        self.native_bits = native_bits
        self.supports_fusion = supports_fusion

    @property
    def n_pes(self) -> int:
        return self.rows * self.cols

    def _effective_grid(self, operand_bits: int) -> tuple:
        """Array shape after precision fusion for the given operand width."""
        if operand_bits <= self.native_bits:
            return self.rows, self.cols
        if not self.supports_fusion:
            raise ValueError(
                f"{operand_bits}-bit operands unsupported: array is fixed "
                f"{self.native_bits}-bit without fusion"
            )
        ratio = math.ceil(operand_bits / self.native_bits)
        rows = max(1, self.rows // ratio)
        cols = max(1, self.cols // ratio)
        return rows, cols

    def gemm_cycles(self, m: int, k: int, n: int, operand_bits: int = 4) -> GemmCycles:
        """Cycles to compute an ``(m x k) @ (k x n)`` GEMM.

        OS dataflow: each output tile of ``rows x cols`` accumulates for
        ``k`` cycles plus ``rows + cols`` fill/drain.
        WS dataflow: weights for a ``rows x cols`` tile are preloaded
        (``rows`` cycles), then ``m`` activations stream through plus
        drain.
        """
        if min(m, k, n) <= 0:
            raise ValueError(f"invalid GEMM dims ({m}, {k}, {n})")
        rows, cols = self._effective_grid(operand_bits)

        if self.dataflow is Dataflow.OUTPUT_STATIONARY:
            tiles = math.ceil(m / rows) * math.ceil(n / cols)
            per_tile = k + rows + cols
        else:
            tiles = math.ceil(k / rows) * math.ceil(n / cols)
            per_tile = m + rows + cols  # preload overlaps with drain

        return GemmCycles(
            compute_cycles=tiles * per_tile,
            tiles=tiles,
            effective_rows=rows,
            effective_cols=cols,
        )

    def boundary_decoders(self) -> int:
        """Decoder count with the paper's boundary placement (Sec. VI-A).

        OS arrays feed inputs from the top and weights from the left, so
        they need ``rows + cols`` decoders; WS arrays decode weights at
        preload time and only need ``cols`` input decoders.
        """
        if self.dataflow is Dataflow.OUTPUT_STATIONARY:
            return self.rows + self.cols
        return self.cols
