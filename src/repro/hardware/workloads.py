"""Layer-shape tables of the paper's eight evaluation workloads.

The Fig. 13 performance/energy comparison runs on the *real*
architectures (VGG-16, ResNet-18/50, Inception-V3, ViT, BERT-Base),
whose layer dimensions are public.  This module generates each
network's GEMM-level layer list: convolutions in im2col form
(``M = C_out``, ``K = C_in*KH*KW``, ``N = batch*OH*OW``), linear layers
directly, and attention matmuls as weight-less GEMMs.

Inception-V3's many branch topologies are approximated by four
representative convolutions per inception module with the correct
aggregate channel counts; this keeps its compute/memory ratio while
staying readable (documented substitution, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: batch size used throughout the paper's evaluation (Sec. VII-D)
DEFAULT_BATCH = 64


@dataclass(frozen=True)
class LayerShape:
    """One GEMM-level layer of a workload."""

    name: str
    m: int
    k: int
    n: int
    #: stored weight elements (0 for weight-less attention matmuls)
    weight_elems: int
    input_elems: int
    output_elems: int

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


def _conv(name: str, c_in: int, c_out: int, kernel: int, out_hw: int, batch: int) -> LayerShape:
    m = c_out
    k = c_in * kernel * kernel
    n = batch * out_hw * out_hw
    return LayerShape(
        name=name,
        m=m,
        k=k,
        n=n,
        weight_elems=c_out * c_in * kernel * kernel,
        # *unique* input feature-map elements (approximated at output
        # resolution), NOT the kh*kw-replicated im2col operand -- the
        # same convention CostMeter.input_elems records for executed
        # convolutions, so analytic and executed traffic agree.
        input_elems=batch * c_in * out_hw * out_hw,
        output_elems=batch * c_out * out_hw * out_hw,
    )


def _fc(name: str, d_in: int, d_out: int, tokens: int) -> LayerShape:
    return LayerShape(
        name=name,
        m=d_out,
        k=d_in,
        n=tokens,
        weight_elems=d_out * d_in,
        input_elems=tokens * d_in,
        output_elems=tokens * d_out,
    )


def _attn_matmul(name: str, m: int, k: int, n: int) -> LayerShape:
    return LayerShape(
        name=name, m=m, k=k, n=n, weight_elems=0, input_elems=m * k + k * n, output_elems=m * n
    )


# ----------------------------------------------------------------------
def vgg16_layers(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    config = [
        (3, 64, 224), (64, 64, 224),
        (64, 128, 112), (128, 128, 112),
        (128, 256, 56), (256, 256, 56), (256, 256, 56),
        (256, 512, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    layers = [
        _conv(f"conv{i}", c_in, c_out, 3, hw, batch)
        for i, (c_in, c_out, hw) in enumerate(config)
    ]
    layers.append(_fc("fc0", 25088, 4096, batch))
    layers.append(_fc("fc1", 4096, 4096, batch))
    layers.append(_fc("fc2", 4096, 1000, batch))
    return layers


def resnet18_layers(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    layers = [_conv("stem", 3, 64, 7, 112, batch)]
    stages = [(64, 64, 56, 2), (64, 128, 28, 2), (128, 256, 14, 2), (256, 512, 7, 2)]
    for stage_idx, (c_in, c_out, hw, blocks) in enumerate(stages):
        for block in range(blocks):
            prefix = f"s{stage_idx}b{block}"
            in_ch = c_in if block == 0 else c_out
            layers.append(_conv(f"{prefix}.conv1", in_ch, c_out, 3, hw, batch))
            layers.append(_conv(f"{prefix}.conv2", c_out, c_out, 3, hw, batch))
            if block == 0 and in_ch != c_out:
                layers.append(_conv(f"{prefix}.down", in_ch, c_out, 1, hw, batch))
    layers.append(_fc("fc", 512, 1000, batch))
    return layers


def resnet50_layers(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    layers = [_conv("stem", 3, 64, 7, 112, batch)]
    stages = [(64, 64, 56, 3), (256, 128, 28, 4), (512, 256, 14, 6), (1024, 512, 7, 3)]
    for stage_idx, (c_in, c_mid, hw, blocks) in enumerate(stages):
        c_out = 4 * c_mid
        for block in range(blocks):
            prefix = f"s{stage_idx}b{block}"
            in_ch = c_in if block == 0 else c_out
            layers.append(_conv(f"{prefix}.conv1", in_ch, c_mid, 1, hw, batch))
            layers.append(_conv(f"{prefix}.conv2", c_mid, c_mid, 3, hw, batch))
            layers.append(_conv(f"{prefix}.conv3", c_mid, c_out, 1, hw, batch))
            if block == 0:
                layers.append(_conv(f"{prefix}.down", in_ch, c_out, 1, hw, batch))
    layers.append(_fc("fc", 2048, 1000, batch))
    return layers


def inceptionv3_layers(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    layers = [
        _conv("stem0", 3, 32, 3, 149, batch),
        _conv("stem1", 32, 32, 3, 147, batch),
        _conv("stem2", 32, 64, 3, 147, batch),
        _conv("stem3", 64, 80, 1, 73, batch),
        _conv("stem4", 80, 192, 3, 71, batch),
    ]
    # (in_channels, spatial, count) per inception stage; four
    # representative convolutions approximate each module's branches.
    stages = [(288, 35, 3), (768, 17, 5), (2048, 8, 2)]
    for stage_idx, (channels, hw, count) in enumerate(stages):
        quarter = channels // 4
        for module in range(count):
            prefix = f"inc{stage_idx}.{module}"
            layers.append(_conv(f"{prefix}.b1x1", channels, quarter, 1, hw, batch))
            layers.append(_conv(f"{prefix}.b3x3a", channels, quarter, 1, hw, batch))
            layers.append(_conv(f"{prefix}.b3x3b", quarter, quarter, 3, hw, batch))
            layers.append(_conv(f"{prefix}.bpool", channels, quarter, 1, hw, batch))
    layers.append(_fc("fc", 2048, 1000, batch))
    return layers


def _transformer_layers(
    prefix: str,
    depth: int,
    dim: int,
    heads: int,
    seq: int,
    batch: int,
    mlp_ratio: int = 4,
) -> List[LayerShape]:
    head_dim = dim // heads
    tokens = batch * seq
    layers: List[LayerShape] = []
    for block in range(depth):
        name = f"{prefix}.block{block}"
        layers.append(_fc(f"{name}.qkv", dim, 3 * dim, tokens))
        layers.append(
            _attn_matmul(f"{name}.scores", seq, head_dim, seq * heads * batch)
        )
        layers.append(
            _attn_matmul(f"{name}.context", seq, seq, head_dim * heads * batch)
        )
        layers.append(_fc(f"{name}.proj", dim, dim, tokens))
        layers.append(_fc(f"{name}.fc1", dim, mlp_ratio * dim, tokens))
        layers.append(_fc(f"{name}.fc2", mlp_ratio * dim, dim, tokens))
    return layers


def vit_layers(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    seq = 197  # 14x14 patches + CLS
    layers = [_fc("patch_embed", 768, 768, batch * 196)]
    layers += _transformer_layers("vit", 12, 768, 12, seq, batch)
    layers.append(_fc("head", 768, 1000, batch))
    return layers


def bert_layers(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    seq = 128
    layers = _transformer_layers("bert", 12, 768, 12, seq, batch)
    layers.append(_fc("pooler", 768, 768, batch))
    layers.append(_fc("classifier", 768, 3, batch))
    return layers


_GENERATORS = {
    "vgg16": vgg16_layers,
    "resnet18": resnet18_layers,
    "resnet50": resnet50_layers,
    "inceptionv3": inceptionv3_layers,
    "vit": vit_layers,
    "bert-mnli": bert_layers,
    "bert-cola": bert_layers,
    "bert-sst2": bert_layers,
}

WORKLOAD_NAMES = list(_GENERATORS)


def workload_layers(name: str, batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    """Layer list for a named workload."""
    if name not in _GENERATORS:
        raise KeyError(f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}")
    return _GENERATORS[name](batch)
