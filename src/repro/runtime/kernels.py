"""Graph-free inference kernels for the frozen runtime.

Each function here is the forward half of the corresponding op in
:mod:`repro.nn.functional`, operating directly on numpy arrays: no
:class:`~repro.nn.autograd.Tensor` wrappers, no backward-closure
construction, no gradient bookkeeping.  The array math follows the
autograd forwards operation-for-operation so that a frozen model in
float64 reproduces the fake-quant graph's outputs to well below the
1e-9 acceptance tolerance; under float32 the same kernels run the
serving fast path.

Convolution reuses the cached im2col index tuples from
:func:`repro.nn.functional._im2col_indices`; pooling reduces strided
windows directly (no argmax bookkeeping, which only the backward pass
needs).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.functional import _im2col_indices

#: scratch-buffer dictionary passed by frozen modules (``None`` = pure
#: allocating mode).  Fresh multi-MB allocations (page faults) dominate
#: cheap elementwise passes on the serving path, so hot kernels accept
#: per-module buffer dicts and run in place.  Buffers are only valid
#: until the owning module's next forward; serving is single-threaded
#: per process.
Buffers = Optional[Dict[tuple, np.ndarray]]


#: eviction threshold per buffer dict: serving with many distinct
#: (ragged) batch shapes would otherwise retain one full buffer set per
#: shape forever.  Clearing is safe mid-forward -- arrays already handed
#: out stay alive through their own references.
MAX_SCRATCH_ENTRIES = 64


def scratch(bufs: Buffers, tag: str, shape: Tuple[int, ...], dtype) -> Optional[np.ndarray]:
    """Fetch (or create) a reusable scratch array from ``bufs``."""
    if bufs is None:
        return None
    key = (tag, shape, np.dtype(dtype).str)
    buf = bufs.get(key)
    if buf is None:
        if len(bufs) >= MAX_SCRATCH_ENTRIES:
            bufs.clear()
        buf = bufs[key] = np.empty(shape, dtype=dtype)
    return buf


def conv2d_infer(
    x: np.ndarray,
    w_mat: np.ndarray,
    bias: Optional[np.ndarray],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """NCHW convolution with a pre-flattened weight matrix.

    ``w_mat`` is ``weight.reshape(c_out, c_in*kh*kw)``, flattened once
    at freeze time.
    """
    n = x.shape[0]
    c_out = w_mat.shape[0]
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if ph or pw else x
    k, i, j, out_h, out_w = _im2col_indices(x.shape, kernel, stride, padding)
    cols = padded[:, k, i, j].transpose(1, 2, 0).reshape(w_mat.shape[1], -1)
    out = (w_mat @ cols).reshape(c_out, out_h * out_w, n).transpose(2, 0, 1)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out += bias.reshape(1, c_out, 1, 1)
    return out


def conv2d_nhwc_infer(
    x: np.ndarray,
    w_mat: np.ndarray,
    bias: Optional[np.ndarray],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    bufs: Buffers = None,
) -> np.ndarray:
    """NHWC convolution with weights flattened to ``(kh*kw*c_in, c_out)``.

    The serving layout: window extraction reshapes a strided view whose
    innermost axis (channels) is contiguous, so the im2col copy moves
    whole channel runs instead of gathering single elements as the NCHW
    path must, and the GEMM sees a C-contiguous ``(rows, k)`` operand.
    Summation order over (kh, kw, c_in) differs from the NCHW kernel's
    (c_in, kh, kw), a reassociation at the 1e-13 level.
    """
    n, h, w, _ = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if not (ph or pw):
        padded = x
    elif bufs is None:
        padded = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)))
    else:
        # pad into a pooled buffer: np.pad allocates (and page-faults) a
        # fresh multi-MB array per forward; here only the interior copy
        # and four thin border slabs are written
        padded = scratch(
            bufs, "conv-pad", (n, h + 2 * ph, w + 2 * pw, x.shape[3]), x.dtype
        )
        if ph:
            padded[:, :ph] = 0
            padded[:, h + ph:] = 0
        if pw:
            padded[:, :, :pw] = 0
            padded[:, :, w + pw:] = 0
        np.copyto(padded[:, ph: ph + h, pw: pw + w], x)
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output collapsed: input {h}x{w}, kernel {kh}x{kw}"
        )
    rows = n * out_h * out_w
    k_dim, c_out = w_mat.shape
    if kh == 1 and kw == 1:
        # pointwise conv: no windows at all, just a (strided) GEMM
        sub = padded[:, ::sh, ::sw, :][:, :out_h, :out_w, :]
        cols = sub.reshape(rows, k_dim)  # zero-copy when stride is 1
        out = scratch(bufs, "conv-out", (rows, c_out), x.dtype)
        if out is None:
            out = cols @ w_mat
        else:
            np.matmul(cols, w_mat, out=out)
        if bias is not None:
            out += bias
        return out.reshape(n, out_h, out_w, c_out)

    s = padded.strides
    win_shape = (n, out_h, out_w, kh, kw, padded.shape[3])
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=win_shape,
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    if bufs is None:
        out = windows.reshape(rows, k_dim) @ w_mat
    else:
        # Chunk the batch so each window copy and its GEMM stay
        # cache-resident between the two passes (~1.7x on this path).
        per_sample = out_h * out_w * k_dim
        chunk = max(1, min(n, (1 << 18) // max(per_sample, 1)))
        cols = scratch(bufs, "conv-cols", (chunk,) + win_shape[1:], x.dtype)
        out = scratch(bufs, "conv-out", (rows, c_out), x.dtype)
        span = out_h * out_w
        for start in range(0, n, chunk):
            m = min(chunk, n - start)
            np.copyto(cols[:m], windows[start: start + m])
            np.matmul(
                cols[:m].reshape(m * span, k_dim),
                w_mat,
                out=out[start * span: (start + m) * span],
            )
    if bias is not None:
        out += bias
    return out.reshape(n, out_h, out_w, c_out)


def linear_infer(
    x: np.ndarray,
    w_t: np.ndarray,
    bias: Optional[np.ndarray],
    bufs: Buffers = None,
) -> np.ndarray:
    """Affine map with a pre-transposed weight, ``x @ w_t + bias``.

    On the float32 serving path, inputs with leading batch dimensions
    (e.g. ``(n, seq, d)`` token activations) are collapsed to one 2-D
    GEMM when contiguous: ``np.matmul`` dispatches a stack of small
    per-sample GEMMs for N-D operands, which is measurably slower than
    a single ``(n*seq, d)`` call.  Float64 keeps the graph op's exact
    GEMM shapes -- BLAS summation order can depend on the row count,
    and float64 is the bit-exact validation mode.
    """
    out = scratch(bufs, "lin-out", x.shape[:-1] + (w_t.shape[1],), x.dtype)
    if out is None:
        out = x @ w_t
    elif x.ndim > 2 and x.dtype != np.float64 and x.flags.c_contiguous:
        np.matmul(
            x.reshape(-1, x.shape[-1]), w_t, out=out.reshape(-1, w_t.shape[1])
        )
    else:
        np.matmul(x, w_t, out=out)
    if bias is not None:
        out += bias
    return out


def _pool_windows(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    kh, kw = kernel
    sh, sw = stride
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    s = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s[0], s[1], s[2] * sh, s[3] * sw, s[2], s[3]),
        writeable=False,
    )


def max_pool2d_infer(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    return _pool_windows(x, kernel, stride).max(axis=(-2, -1))


def avg_pool2d_infer(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    return _pool_windows(x, kernel, stride).mean(axis=(-2, -1))


def _pool_windows_nhwc(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    kh, kw = kernel
    sh, sw = stride
    n, h, w, c = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    s = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, kh, kw, c),
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )


def max_pool2d_nhwc_infer(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    return _pool_windows_nhwc(x, kernel, stride).max(axis=(3, 4))


def avg_pool2d_nhwc_infer(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    return _pool_windows_nhwc(x, kernel, stride).mean(axis=(3, 4))


def batch_norm2d_infer(
    x: np.ndarray,
    mean: np.ndarray,
    inv_std: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    channel_axis: int = 1,
) -> np.ndarray:
    """Eval-mode batch norm; ``inv_std`` is precomputed at freeze time.

    ``channel_axis`` is 1 for NCHW and 3 for NHWC.  Follows the graph
    op's exact operation order (the bit-exact float64 path).
    """
    shape = [1, 1, 1, 1]
    shape[channel_axis] = -1
    shape = tuple(shape)
    x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
    return x_hat * weight.reshape(shape) + bias.reshape(shape)


def bn_scale_shift_infer(
    x: np.ndarray,
    scale: np.ndarray,
    shift: np.ndarray,
    bufs: Buffers = None,
) -> np.ndarray:
    """Folded eval batch norm ``x*scale + shift`` (float32 serving path).

    ``scale``/``shift`` are pre-broadcast to the channel axis.  Two
    passes instead of three, in place over a pooled buffer.
    """
    out = scratch(bufs, "bn-out", x.shape, x.dtype)
    if out is None:
        return x * scale + shift
    np.multiply(x, scale, out=out)
    np.add(out, shift, out=out)
    return out


def layer_norm_infer(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float,
    bufs: Buffers = None,
) -> np.ndarray:
    d = scratch(bufs, "ln-d", x.shape, x.dtype)
    if d is None:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        return (x - mean) * inv_std * weight + bias
    stat_shape = x.shape[:-1] + (1,)
    mean = scratch(bufs, "ln-mean", stat_shape, x.dtype)
    var = scratch(bufs, "ln-var", stat_shape, x.dtype)
    sq = scratch(bufs, "ln-sq", x.shape, x.dtype)
    np.mean(x, axis=-1, keepdims=True, out=mean)
    np.subtract(x, mean, out=d)
    np.multiply(d, d, out=sq)
    np.mean(sq, axis=-1, keepdims=True, out=var)  # == x.var(axis=-1)
    np.add(var, var.dtype.type(eps), out=var)
    np.sqrt(var, out=var)
    np.reciprocal(var, out=var)
    np.multiply(d, var, out=d)
    np.multiply(d, weight, out=d)
    np.add(d, bias, out=d)
    return d


def softmax_infer(x: np.ndarray, axis: int = -1, bufs: Buffers = None) -> np.ndarray:
    out = scratch(bufs, "sm-out", x.shape, x.dtype)
    if out is None or axis != -1:
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)
    stat_shape = x.shape[:-1] + (1,)
    stat = scratch(bufs, "sm-stat", stat_shape, x.dtype)
    np.max(x, axis=-1, keepdims=True, out=stat)
    np.subtract(x, stat, out=out)
    np.exp(out, out=out)
    np.sum(out, axis=-1, keepdims=True, out=stat)
    np.divide(out, stat, out=out)
    return out


def relu_infer(x: np.ndarray, bufs: Buffers = None, tag: str = "relu") -> np.ndarray:
    out = scratch(bufs, tag, x.shape, x.dtype)
    if out is None:
        return np.maximum(x, 0.0)
    return np.maximum(x, 0.0, out=out)


def gelu_infer(x: np.ndarray, bufs: Buffers = None) -> np.ndarray:
    """Tanh-approximation GELU, same constants as the autograd op.

    The buffered variant computes the identical value sequence in place
    (every reordered multiply is commutative or an exact power-of-two
    scale), so it stays bit-equal to the graph op in float64.
    """
    c = np.sqrt(2.0 / np.pi)
    t = scratch(bufs, "gelu", x.shape, x.dtype)
    if t is None:
        inner = c * (x + 0.044715 * (x * x * x))
        return 0.5 * x * (1.0 + np.tanh(inner))
    np.multiply(x, x, out=t)
    np.multiply(t, x, out=t)
    np.multiply(t, 0.044715, out=t)
    np.add(t, x, out=t)
    np.multiply(t, c, out=t)
    np.tanh(t, out=t)
    np.add(t, 1.0, out=t)
    np.multiply(t, x, out=t)
    np.multiply(t, 0.5, out=t)
    return t
