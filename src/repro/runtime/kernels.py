"""Graph-free inference kernels for the frozen runtime.

Each function here is the forward half of the corresponding op in
:mod:`repro.nn.functional`, operating directly on numpy arrays: no
:class:`~repro.nn.autograd.Tensor` wrappers, no backward-closure
construction, no gradient bookkeeping.  The array math follows the
autograd forwards operation-for-operation so that a frozen model in
float64 reproduces the fake-quant graph's outputs to well below the
1e-9 acceptance tolerance; under float32 the same kernels run the
serving fast path.

Convolution reuses the cached im2col index tuples from
:func:`repro.nn.functional._im2col_indices`; pooling reduces strided
windows directly (no argmax bookkeeping, which only the backward pass
needs).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.functional import _im2col_indices

#: scratch-buffer dictionary passed by frozen modules (``None`` = pure
#: allocating mode).  Fresh multi-MB allocations (page faults) dominate
#: cheap elementwise passes on the serving path, so hot kernels accept
#: per-module buffer dicts and run in place.  Buffers are only valid
#: until the owning module's next forward; serving is single-threaded
#: per process.
Buffers = Optional[Dict[tuple, np.ndarray]]


#: eviction threshold per buffer dict: serving with many distinct
#: (ragged) batch shapes would otherwise retain one full buffer set per
#: shape forever.  Clearing is safe mid-forward -- arrays already handed
#: out stay alive through their own references.
MAX_SCRATCH_ENTRIES = 64


def scratch(bufs: Buffers, tag: str, shape: Tuple[int, ...], dtype) -> Optional[np.ndarray]:
    """Fetch (or create) a reusable scratch array from ``bufs``."""
    if bufs is None:
        return None
    key = (tag, shape, np.dtype(dtype).str)
    buf = bufs.get(key)
    if buf is None:
        if len(bufs) >= MAX_SCRATCH_ENTRIES:
            bufs.clear()
        buf = bufs[key] = np.empty(shape, dtype=dtype)
    return buf


#: default last-level-private-cache budget assumed by the tiled kernels
#: when ``REPRO_L2_BYTES`` is unset: 2 MiB, the L2 size of the
#: container class this project benchmarks on.
_DEFAULT_L2_BYTES = 2 << 20

_L2_BYTES_CACHE: Optional[int] = None


def l2_budget_bytes() -> int:
    """Cache budget (bytes) that sizes the blocked kernels' tiles.

    Reads ``REPRO_L2_BYTES`` once per process (set it before the first
    forward to retune every tiled kernel for a different machine); falls
    back to :data:`_DEFAULT_L2_BYTES`.  Values below 64 KiB are clamped
    -- tiles smaller than that lose more to loop overhead than they
    gain in residency.
    """
    global _L2_BYTES_CACHE
    if _L2_BYTES_CACHE is None:
        raw = os.environ.get("REPRO_L2_BYTES", "")
        try:
            value = int(raw) if raw else _DEFAULT_L2_BYTES
        except ValueError:
            value = _DEFAULT_L2_BYTES
        _L2_BYTES_CACHE = max(value, 64 << 10)
    return _L2_BYTES_CACHE


def conv_tile_elems() -> int:
    """im2col scratch tile size, in elements, for the chunked convs.

    Half the cache budget in float32 elements: the window-copy source
    and the GEMM read the same tile back to back, so budgeting half
    keeps tile + output slice resident between the two passes.  At the
    default 2 MiB budget this is 256 Ki elements -- the value the old
    hardcoded ``(1 << 18)`` heuristic was implicitly tuned to.
    """
    return l2_budget_bytes() // 8


def conv2d_infer(
    x: np.ndarray,
    w_mat: np.ndarray,
    bias: Optional[np.ndarray],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """NCHW convolution with a pre-flattened weight matrix.

    ``w_mat`` is ``weight.reshape(c_out, c_in*kh*kw)``, flattened once
    at freeze time.
    """
    n = x.shape[0]
    c_out = w_mat.shape[0]
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if ph or pw else x
    k, i, j, out_h, out_w = _im2col_indices(x.shape, kernel, stride, padding)
    cols = padded[:, k, i, j].transpose(1, 2, 0).reshape(w_mat.shape[1], -1)
    out = (w_mat @ cols).reshape(c_out, out_h * out_w, n).transpose(2, 0, 1)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out += bias.reshape(1, c_out, 1, 1)
    return out


def conv2d_nhwc_infer(
    x: np.ndarray,
    w_mat: np.ndarray,
    bias: Optional[np.ndarray],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    bufs: Buffers = None,
) -> np.ndarray:
    """NHWC convolution with weights flattened to ``(kh*kw*c_in, c_out)``.

    The serving layout: window extraction reshapes a strided view whose
    innermost axis (channels) is contiguous, so the im2col copy moves
    whole channel runs instead of gathering single elements as the NCHW
    path must, and the GEMM sees a C-contiguous ``(rows, k)`` operand.
    Summation order over (kh, kw, c_in) differs from the NCHW kernel's
    (c_in, kh, kw), a reassociation at the 1e-13 level.
    """
    n, h, w, _ = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if not (ph or pw):
        padded = x
    elif bufs is None:
        padded = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)))
    else:
        # pad into a pooled buffer: np.pad allocates (and page-faults) a
        # fresh multi-MB array per forward; here only the interior copy
        # and four thin border slabs are written
        padded = scratch(
            bufs, "conv-pad", (n, h + 2 * ph, w + 2 * pw, x.shape[3]), x.dtype
        )
        if ph:
            padded[:, :ph] = 0
            padded[:, h + ph:] = 0
        if pw:
            padded[:, :, :pw] = 0
            padded[:, :, w + pw:] = 0
        np.copyto(padded[:, ph: ph + h, pw: pw + w], x)
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output collapsed: input {h}x{w}, kernel {kh}x{kw}"
        )
    rows = n * out_h * out_w
    k_dim, c_out = w_mat.shape
    if kh == 1 and kw == 1:
        # pointwise conv: no windows at all, just a (strided) GEMM
        sub = padded[:, ::sh, ::sw, :][:, :out_h, :out_w, :]
        cols = sub.reshape(rows, k_dim)  # zero-copy when stride is 1
        out = scratch(bufs, "conv-out", (rows, c_out), x.dtype)
        if out is None:
            out = cols @ w_mat
        else:
            np.matmul(cols, w_mat, out=out)
        if bias is not None:
            out += bias
        return out.reshape(n, out_h, out_w, c_out)

    s = padded.strides
    win_shape = (n, out_h, out_w, kh, kw, padded.shape[3])
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=win_shape,
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    if bufs is None:
        out = windows.reshape(rows, k_dim) @ w_mat
    else:
        # Chunk the batch so each window copy and its GEMM stay
        # cache-resident between the two passes (~1.7x on this path).
        # The tile is sized from the cache budget (REPRO_L2_BYTES)
        # rather than a hardcoded element count.
        per_sample = out_h * out_w * k_dim
        chunk = max(1, min(n, conv_tile_elems() // max(per_sample, 1)))
        cols = scratch(bufs, "conv-cols", (chunk,) + win_shape[1:], x.dtype)
        out = scratch(bufs, "conv-out", (rows, c_out), x.dtype)
        span = out_h * out_w
        for start in range(0, n, chunk):
            m = min(chunk, n - start)
            np.copyto(cols[:m], windows[start: start + m])
            np.matmul(
                cols[:m].reshape(m * span, k_dim),
                w_mat,
                out=out[start * span: (start + m) * span],
            )
    if bias is not None:
        out += bias
    return out.reshape(n, out_h, out_w, c_out)


def linear_infer(
    x: np.ndarray,
    w_t: np.ndarray,
    bias: Optional[np.ndarray],
    bufs: Buffers = None,
) -> np.ndarray:
    """Affine map with a pre-transposed weight, ``x @ w_t + bias``.

    On the float32 serving path, inputs with leading batch dimensions
    (e.g. ``(n, seq, d)`` token activations) are collapsed to one 2-D
    GEMM when contiguous: ``np.matmul`` dispatches a stack of small
    per-sample GEMMs for N-D operands, which is measurably slower than
    a single ``(n*seq, d)`` call.  Float64 keeps the graph op's exact
    GEMM shapes -- BLAS summation order can depend on the row count,
    and float64 is the bit-exact validation mode.
    """
    out = scratch(bufs, "lin-out", x.shape[:-1] + (w_t.shape[1],), x.dtype)
    if out is None:
        out = x @ w_t
    elif x.ndim > 2 and x.dtype != np.float64 and x.flags.c_contiguous:
        np.matmul(
            x.reshape(-1, x.shape[-1]), w_t, out=out.reshape(-1, w_t.shape[1])
        )
    else:
        np.matmul(x, w_t, out=out)
    if bias is not None:
        out += bias
    return out


def _pool_windows(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    kh, kw = kernel
    sh, sw = stride
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    s = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s[0], s[1], s[2] * sh, s[3] * sw, s[2], s[3]),
        writeable=False,
    )


def max_pool2d_infer(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    return _pool_windows(x, kernel, stride).max(axis=(-2, -1))


def avg_pool2d_infer(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    return _pool_windows(x, kernel, stride).mean(axis=(-2, -1))


def _pool_windows_nhwc(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    kh, kw = kernel
    sh, sw = stride
    n, h, w, c = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    s = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, kh, kw, c),
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )


def max_pool2d_nhwc_infer(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    return _pool_windows_nhwc(x, kernel, stride).max(axis=(3, 4))


def avg_pool2d_nhwc_infer(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    return _pool_windows_nhwc(x, kernel, stride).mean(axis=(3, 4))


def batch_norm2d_infer(
    x: np.ndarray,
    mean: np.ndarray,
    inv_std: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    channel_axis: int = 1,
) -> np.ndarray:
    """Eval-mode batch norm; ``inv_std`` is precomputed at freeze time.

    ``channel_axis`` is 1 for NCHW and 3 for NHWC.  Follows the graph
    op's exact operation order (the bit-exact float64 path).
    """
    shape = [1, 1, 1, 1]
    shape[channel_axis] = -1
    shape = tuple(shape)
    x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
    return x_hat * weight.reshape(shape) + bias.reshape(shape)


def bn_scale_shift_infer(
    x: np.ndarray,
    scale: np.ndarray,
    shift: np.ndarray,
    bufs: Buffers = None,
) -> np.ndarray:
    """Folded eval batch norm ``x*scale + shift`` (float32 serving path).

    ``scale``/``shift`` are pre-broadcast to the channel axis.  Two
    passes instead of three, in place over a pooled buffer.
    """
    out = scratch(bufs, "bn-out", x.shape, x.dtype)
    if out is None:
        return x * scale + shift
    np.multiply(x, scale, out=out)
    np.add(out, shift, out=out)
    return out


def layer_norm_infer(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float,
    bufs: Buffers = None,
) -> np.ndarray:
    d = scratch(bufs, "ln-d", x.shape, x.dtype)
    if d is None:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        return (x - mean) * inv_std * weight + bias
    stat_shape = x.shape[:-1] + (1,)
    mean = scratch(bufs, "ln-mean", stat_shape, x.dtype)
    var = scratch(bufs, "ln-var", stat_shape, x.dtype)
    sq = scratch(bufs, "ln-sq", x.shape, x.dtype)
    np.mean(x, axis=-1, keepdims=True, out=mean)
    np.subtract(x, mean, out=d)
    np.multiply(d, d, out=sq)
    np.mean(sq, axis=-1, keepdims=True, out=var)  # == x.var(axis=-1)
    np.add(var, var.dtype.type(eps), out=var)
    np.sqrt(var, out=var)
    np.reciprocal(var, out=var)
    np.multiply(d, var, out=d)
    np.multiply(d, weight, out=d)
    np.add(d, bias, out=d)
    return d


def softmax_infer(x: np.ndarray, axis: int = -1, bufs: Buffers = None) -> np.ndarray:
    out = scratch(bufs, "sm-out", x.shape, x.dtype)
    if out is None or axis != -1:
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)
    if (
        x.dtype == np.float32
        and x.shape[-1] <= 64
        and x.nbytes > l2_budget_bytes()
        and x.flags.c_contiguous
    ):
        # tall-and-skinny scores that spill the cache budget: the
        # per-row reductions dominate in the row-major layout (a
        # 16-wide max/sum per row defeats SIMD); the transposed-tile
        # kernel is several times faster there
        return softmax_blocked_infer(x, bufs=bufs, out=out)
    stat_shape = x.shape[:-1] + (1,)
    stat = scratch(bufs, "sm-stat", stat_shape, x.dtype)
    np.max(x, axis=-1, keepdims=True, out=stat)
    np.subtract(x, stat, out=out)
    np.exp(out, out=out)
    np.sum(out, axis=-1, keepdims=True, out=stat)
    np.divide(out, stat, out=out)
    return out


def _take_scratch(
    bufs: Buffers, tag: str, shape: Tuple[int, ...], dtype
) -> np.ndarray:
    """Pooled scratch, or a fresh allocation when no pool was passed."""
    buf = scratch(bufs, tag, shape, dtype)
    return np.empty(shape, dtype=dtype) if buf is None else buf


def softmax_blocked_infer(
    x: np.ndarray,
    bufs: Buffers = None,
    block_rows: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Softmax over the last axis via transposed cache-resident tiles.

    Reductions along the last axis of a tall-and-skinny array are
    numpy's worst case: each row's max/sum vectorizes over only
    ``x.shape[-1]`` elements.  This kernel copies a block of rows into a
    transposed ``(S, block)`` scratch tile sized to the cache budget,
    where the same reductions sweep axis 0 and vectorize across the
    *block* instead -- then the two remaining passes (subtract+exp,
    normalize) run over the hot tile before it is written back.

    Same max-shifted value sequence as :func:`softmax_infer`; only the
    reduction layout (hence float rounding at the 1-ulp level) differs.
    NaNs propagate per row exactly like the reference.
    """
    s = x.shape[-1]
    x2 = x.reshape(-1, s)
    rows = x2.shape[0]
    if out is None:
        out = _take_scratch(bufs, "smb-out", x.shape, x.dtype)
    out2 = out.reshape(-1, s)
    if block_rows is None:
        budget = l2_budget_bytes() // (2 * x.dtype.itemsize)
        block_rows = max(64, budget // max(s, 1))
    block_rows = min(block_rows, rows) if rows else 0
    for start in range(0, rows, block_rows):
        m = min(block_rows, rows - start)
        tile = _take_scratch(bufs, "smb-tile", (s, m), x.dtype)
        stat = _take_scratch(bufs, "smb-stat", (m,), x.dtype)
        np.copyto(tile, x2[start:start + m].T)
        np.max(tile, axis=0, out=stat)
        np.subtract(tile, stat[None, :], out=tile)
        np.exp(tile, out=tile)
        np.sum(tile, axis=0, out=stat)
        np.reciprocal(stat, out=stat)
        np.multiply(tile, stat[None, :], out=tile)
        np.copyto(out2[start:start + m], tile.T)
    return out


def attention_blocked_infer(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: Optional[float] = None,
    out: Optional[np.ndarray] = None,
    bufs: Buffers = None,
    q_block: Optional[int] = None,
    k_block: Optional[int] = None,
    bh_block: Optional[int] = None,
) -> np.ndarray:
    """Flash-style blocked attention over contiguous batched operands.

    ``q`` is ``(B, Sq, D)`` and ``k``/``v`` are ``(B, Sk, D)`` where
    ``B`` flattens ``batch * heads`` -- the caller packs heads into the
    batch axis once (a contiguous copy) instead of feeding strided 4-D
    views to every matmul.  Keys and values stream through the online-
    softmax recurrence (running max ``m``, rescaled partial sums ``l``
    and ``acc``) so the materialized score tile never exceeds
    ``bh_block x k_block x q_block`` elements, sized to half the cache
    budget (:func:`l2_budget_bytes`).

    Score tiles are built *transposed* (``k`` rows by ``q`` columns):
    the softmax max/sum then reduce along axis 1 of the tile and
    vectorize across the contiguous q axis, which is several times
    faster than row-major reductions over a short key axis.

    ``scale`` multiplies the scores (pass ``None`` when the caller
    already folded ``1/sqrt(d)`` into ``q``).  Block sizes are
    overridable for testing; any positive values (1, odd, larger than
    the sequence) are valid.  Returns ``out`` -- ``(B, Sq, D)``.
    """
    B, sq, d = q.shape
    sk = k.shape[1]
    dt = q.dtype
    if out is None:
        out = _take_scratch(bufs, "attn-out", (B, sq, d), dt)
    if not (B and sq and d):
        return out
    budget = l2_budget_bytes() // (2 * dt.itemsize)
    if k_block is None:
        k_block = min(sk, 512)
    k_block = max(1, min(k_block, sk))
    if q_block is None:
        q_block = max(16, budget // max(k_block, 1))
    q_block = max(1, min(q_block, sq))
    if bh_block is None:
        bh_block = budget // max(q_block * k_block, 1)
    bh_block = max(1, min(bh_block, B))
    mul = None if scale is None else dt.type(scale)
    for g0 in range(0, B, bh_block):
        g = min(bh_block, B - g0)
        kg = k[g0:g0 + g]
        vg = v[g0:g0 + g]
        for q0 in range(0, sq, q_block):
            qb = min(q_block, sq - q0)
            qt = q[g0:g0 + g, q0:q0 + qb].transpose(0, 2, 1)  # (g, D, qb)
            acc = _take_scratch(bufs, "attn-acc", (g, qb, d), dt)
            run_max = _take_scratch(bufs, "attn-m", (g, qb), dt)
            run_sum = _take_scratch(bufs, "attn-l", (g, qb), dt)
            stat = _take_scratch(bufs, "attn-stat", (g, qb), dt)
            for k0 in range(0, sk, k_block):
                kb = min(k_block, sk - k0)
                s = _take_scratch(bufs, "attn-sT", (g, kb, qb), dt)
                np.matmul(kg[:, k0:k0 + kb], qt, out=s)  # scores^T
                if mul is not None:
                    np.multiply(s, mul, out=s)
                if k0 == 0:
                    np.max(s, axis=1, out=run_max)
                    np.subtract(s, run_max[:, None, :], out=s)
                    np.exp(s, out=s)
                    np.sum(s, axis=1, out=run_sum)
                    np.matmul(s.transpose(0, 2, 1), vg[:, k0:k0 + kb], out=acc)
                    continue
                # online-softmax recurrence: rescale the accumulated
                # numerator/denominator to the new running max
                np.max(s, axis=1, out=stat)
                np.maximum(stat, run_max, out=stat)  # new max
                np.subtract(run_max, stat, out=run_max)
                np.exp(run_max, out=run_max)  # rescale factor
                np.multiply(acc, run_max[:, :, None], out=acc)
                np.multiply(run_sum, run_max, out=run_sum)
                np.subtract(s, stat[:, None, :], out=s)
                np.exp(s, out=s)
                np.sum(s, axis=1, out=run_max)  # block partial sum
                np.add(run_sum, run_max, out=run_sum)
                ctx = _take_scratch(bufs, "attn-ctx", (g, qb, d), dt)
                np.matmul(s.transpose(0, 2, 1), vg[:, k0:k0 + kb], out=ctx)
                np.add(acc, ctx, out=acc)
                np.copyto(run_max, stat)
            np.reciprocal(run_sum, out=run_sum)
            np.multiply(
                acc, run_sum[:, :, None], out=out[g0:g0 + g, q0:q0 + qb]
            )
    return out


def attention_heads_infer(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    num_heads: int,
    scale: float,
    bufs: Buffers = None,
) -> np.ndarray:
    """Multi-head attention over ``(batch, seq, dim)`` projections.

    Packs each projection into contiguous ``(batch*heads, seq, head_dim)``
    operands with one copy per tensor (``scale`` rides the q copy for
    free), runs :func:`attention_blocked_infer`, and merges heads back.
    The packed copies replace the strided 4-D ``_split_heads`` views the
    interpreter feeds straight to ``@`` -- every GEMM below sees
    BLAS-contiguous blocks.
    """
    batch, seq, dim = q.shape
    hd = dim // num_heads
    dt = q.dtype
    flat = (batch * num_heads, seq, hd)
    packed = (batch, num_heads, seq, hd)
    qc = _take_scratch(bufs, "attnh-q", flat, dt)
    kc = _take_scratch(bufs, "attnh-k", flat, dt)
    vc = _take_scratch(bufs, "attnh-v", flat, dt)
    np.multiply(
        q.reshape(batch, seq, num_heads, hd).transpose(0, 2, 1, 3),
        dt.type(scale),
        out=qc.reshape(packed),
    )
    np.copyto(
        kc.reshape(packed),
        k.reshape(batch, seq, num_heads, hd).transpose(0, 2, 1, 3),
    )
    np.copyto(
        vc.reshape(packed),
        v.reshape(batch, seq, num_heads, hd).transpose(0, 2, 1, 3),
    )
    ctx = attention_blocked_infer(qc, kc, vc, bufs=bufs)
    merged = _take_scratch(bufs, "attnh-out", (batch, seq, dim), dt)
    np.copyto(
        merged.reshape(batch, seq, num_heads, hd),
        ctx.reshape(packed).transpose(0, 2, 1, 3),
    )
    return merged


def layer_norm_1pass_infer(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float,
    bufs: Buffers = None,
) -> np.ndarray:
    """Fused-moment LayerNorm for the float32 serving path.

    The mean lands in one BLAS matvec against a constant ``1/D`` vector
    and the variance in one row-dot of the centered differences
    (``einsum`` over the tile the subtraction just wrote, still hot) --
    a Welford-style fused sweep replacing :func:`layer_norm_infer`'s
    four full-array passes and its ``ln-sq`` squared-copy temporary.
    Rounding reassociates at the 1e-6 relative level, so the bit-exact
    float64 engine keeps the reference kernel.
    """
    d_model = x.shape[-1]
    x2 = x if x.flags.c_contiguous else np.ascontiguousarray(x)
    x2 = x2.reshape(-1, d_model)
    rows = x2.shape[0]
    out = _take_scratch(bufs, "ln1-out", x.shape, x.dtype)
    d2 = out.reshape(-1, d_model)
    ones = scratch(bufs, "ln1-ones", (d_model,), x.dtype)
    if ones is None:
        ones = np.full((d_model,), 1.0 / d_model, dtype=x.dtype)
    else:
        ones.fill(1.0 / d_model)
    mean = _take_scratch(bufs, "ln1-mean", (rows,), x.dtype)
    var = _take_scratch(bufs, "ln1-var", (rows,), x.dtype)
    np.dot(x2, ones, out=mean)
    np.subtract(x2, mean[:, None], out=d2)
    np.einsum("ij,ij->i", d2, d2, out=var)
    np.multiply(var, var.dtype.type(1.0 / d_model), out=var)
    np.add(var, var.dtype.type(eps), out=var)
    np.sqrt(var, out=var)
    np.reciprocal(var, out=var)
    np.multiply(d2, var[:, None], out=d2)
    np.multiply(d2, weight, out=d2)
    np.add(d2, bias, out=d2)
    return out


def relu_infer(x: np.ndarray, bufs: Buffers = None, tag: str = "relu") -> np.ndarray:
    out = scratch(bufs, tag, x.shape, x.dtype)
    if out is None:
        return np.maximum(x, 0.0)
    return np.maximum(x, 0.0, out=out)


def gelu_infer(x: np.ndarray, bufs: Buffers = None) -> np.ndarray:
    """Tanh-approximation GELU, same constants as the autograd op.

    The buffered variant computes the identical value sequence in place
    (every reordered multiply is commutative or an exact power-of-two
    scale), so it stays bit-equal to the graph op in float64.
    """
    c = np.sqrt(2.0 / np.pi)
    t = scratch(bufs, "gelu", x.shape, x.dtype)
    if t is None:
        inner = c * (x + 0.044715 * (x * x * x))
        return 0.5 * x * (1.0 + np.tanh(inner))
    np.multiply(x, x, out=t)
    np.multiply(t, x, out=t)
    np.multiply(t, 0.044715, out=t)
    np.add(t, x, out=t)
    np.multiply(t, c, out=t)
    np.tanh(t, out=t)
    np.add(t, 1.0, out=t)
    np.multiply(t, x, out=t)
    np.multiply(t, 0.5, out=t)
    return t
