"""Frozen quantized inference runtime (the deploy half of ANT).

Calibration (:mod:`repro.quant`) simulates quantization inside the
autograd graph so types and scales can be searched and fine-tuned;
this package is what runs *after* that search is over.
:meth:`repro.quant.framework.ModelQuantizer.freeze` exports every
calibrated layer into an inference-only engine:

* weights are encoded once into packed low-bit bitstreams
  (:func:`repro.dtypes.codec.pack_codes`) plus per-channel scales and
  decoded once through the codec LUT -- a "4-bit" checkpoint really
  stores 4 bits per weight;
* activation fake-quant collapses to one ``searchsorted`` + LUT gather
  (:class:`FrozenActQuant`) with no hooks and no gradient bookkeeping;
* forwards run the pure-numpy kernels of
  :mod:`repro.runtime.kernels` -- no ``Tensor`` graph at all;
* :class:`FrozenModel` serves batched traffic via
  ``predict(x, batch_size=...)`` and round-trips packed ``.npz``
  checkpoints via ``save``/``load``.

Float64 is the bit-exact validation mode (matches the hook-based
fake-quant model to <= 1e-9); ``astype(np.float32)`` switches to the
serving fast path.

How the frozen graph *executes* is pluggable
(:mod:`repro.runtime.backends`): ``backend="float"`` is the
decode-once-then-BLAS path above, ``backend="fused"``
(:mod:`repro.runtime.plan`) compiles the layer tree into fused
single-pass kernels (quantize folded into the GEMM sweep, merged
elementwise tails, shared-consumer quantize edges), and
``backend="qgemm"`` (:mod:`repro.qgemm`) runs the GEMMs directly on
packed codes via partial-product LUTs -- select with
``FrozenModel.set_backend``.
"""

from repro.runtime.backends import (
    ExecutionBackend,
    FloatBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.runtime.engine import (
    CHECKPOINT_VERSION,
    FreezeContext,
    FrozenActQuant,
    FrozenModel,
    FrozenModule,
    LayerExport,
    PackedTensor,
    export_packed_weight,
    freeze_model,
    freeze_module,
    register_freezer,
)
from repro.runtime import modules as _modules  # noqa: F401 - registers the zoo freezers
from repro.runtime import kernels

__all__ = [
    "CHECKPOINT_VERSION",
    "ExecutionBackend",
    "FloatBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "FreezeContext",
    "FrozenActQuant",
    "FrozenModel",
    "FrozenModule",
    "LayerExport",
    "PackedTensor",
    "export_packed_weight",
    "freeze_model",
    "freeze_module",
    "register_freezer",
    "kernels",
]
