"""Frozen mirrors of the model-zoo modules.

Each freezer compiles one :class:`repro.nn.module.Module` subclass into
a :class:`~repro.runtime.engine.FrozenModule` whose ``forward`` is the
original forward's array math re-expressed through the graph-free
kernels in :mod:`repro.runtime.kernels`.  Structural attributes
(strides, kernel sizes, head counts) are baked in at freeze time;
parameters are copied out of the module (quantized layers take their
decoded packed weights instead).

The registry covers every structured module the zoo uses; new
architectures extend it with
:func:`~repro.runtime.engine.register_freezer`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn import attention as A
from repro.nn import layers as L
from repro.nn import models as M
from repro.nn.functional import _pair
from repro.nn.module import Sequential
from repro.runtime import kernels as K
from repro.runtime.engine import (
    FreezeContext,
    FrozenModule,
    freeze_module,
    register_freezer,
)


# ----------------------------------------------------------------------
# Leaf layers
# ----------------------------------------------------------------------
class FrozenLinear(FrozenModule):
    _arrays = ("w_t", "bias")
    kind = "linear"

    def __init__(self, weight, bias, act_quant, export=None) -> None:
        super().__init__()
        self.w_t = np.ascontiguousarray(weight.T)
        self.bias = bias
        self.act_quant = act_quant
        self.export = export

    def forward(self, x):
        if self._exec is not None:
            return self._exec(x)
        if self.act_quant is not None:
            x = self.act_quant(x)
        return K.linear_infer(x, self.w_t, self.bias, bufs=self._bufs)


class FrozenConv2d(FrozenModule):
    _arrays = ("w_mat", "bias")
    kind = "conv2d"

    def __init__(
        self, weight, bias, kernel, stride, padding, act_quant, layout, export=None
    ) -> None:
        super().__init__()
        self.export = export
        if layout == "nhwc":
            # (C_out, C_in, KH, KW) -> (KH*KW*C_in, C_out), matching the
            # channels-last window flattening order.
            self.w_mat = np.ascontiguousarray(
                weight.transpose(2, 3, 1, 0).reshape(-1, weight.shape[0])
            )
        else:
            self.w_mat = np.ascontiguousarray(weight.reshape(weight.shape[0], -1))
        self.bias = bias
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.act_quant = act_quant
        self.layout = layout
        #: trailing batch norm folded into this conv on the float32
        #: serving path (see :func:`fold_bn_into_conv`); ``None`` keeps
        #: the conv and the norm as separate passes.
        self._bn = None
        self._fused = None

    def astype(self, dtype):
        self._fused = None
        return super().astype(dtype)

    def _fused_params(self):
        """(w_mat, bias) with the folded BN scale/shift baked in."""
        scale, shift = self._bn.affine()
        if self.layout == "nhwc":  # w_mat is (KH*KW*C_in, C_out)
            w = np.ascontiguousarray(self.w_mat * scale[None, :])
        else:  # (C_out, KH*KW*C_in)
            w = np.ascontiguousarray(self.w_mat * scale[:, None])
        bias = shift if self.bias is None else self.bias * scale + shift
        return w, np.ascontiguousarray(bias)

    def forward(self, x):
        if self._exec is not None:
            return self._exec(x)
        if self.act_quant is not None:
            x = self.act_quant(x)
        w_mat, bias = self.w_mat, self.bias
        if self._bn is not None and w_mat.dtype != np.float64:
            # serving fast path: the eval BN is an affine map per output
            # channel, so it folds into the GEMM weights once per dtype
            # (float64 keeps the separate ops for hook-path bit-exactness)
            if self._fused is None:
                self._fused = self._fused_params()
            w_mat, bias = self._fused
        if self.layout == "nhwc":
            return K.conv2d_nhwc_infer(
                x, w_mat, bias, self.kernel, self.stride, self.padding,
                bufs=self._bufs,
            )
        return K.conv2d_infer(x, w_mat, bias, self.kernel, self.stride, self.padding)


@register_freezer(L.Linear)
def _freeze_linear(module: L.Linear, ctx: FreezeContext) -> FrozenModule:
    export = ctx.export_for(module)
    weight = (
        ctx.quantized_weight(module, export) if export else module.weight.data.copy()
    )
    bias = module.bias.data.copy() if module.bias is not None else None
    return FrozenLinear(
        weight, bias, export.act_quant() if export else None, export=export
    )


@register_freezer(L.Conv2d)
def _freeze_conv2d(module: L.Conv2d, ctx: FreezeContext) -> FrozenModule:
    export = ctx.export_for(module)
    weight = (
        ctx.quantized_weight(module, export) if export else module.weight.data.copy()
    )
    bias = module.bias.data.copy() if module.bias is not None else None
    return FrozenConv2d(
        weight,
        bias,
        module.kernel_size,
        module.stride,
        module.padding,
        export.act_quant() if export else None,
        ctx.layout,
        export=export,
    )


class FrozenBatchNorm2d(FrozenModule):
    _arrays = ("mean", "inv_std", "weight", "bias")

    def __init__(self, mean, inv_std, weight, bias, channel_axis) -> None:
        super().__init__()
        self.mean = mean
        self.inv_std = inv_std
        self.weight = weight
        self.bias = bias
        self.channel_axis = channel_axis
        self._folded = None
        #: conv this norm was folded into (float32 serving path); the
        #: norm then degenerates to identity there -- the conv applies
        #: the scale/shift inside its GEMM.
        self.folded_into = None

    def astype(self, dtype):
        self._folded = None
        return super().astype(dtype)

    def affine(self):
        """The eval norm as per-channel ``(scale, shift)`` 1-D vectors.

        The single source of the fold every fast path uses -- the conv
        GEMM fold, this module's own scale+shift form, and the qgemm
        backend's output-side fold all call here.
        """
        scale = self.weight * self.inv_std
        return scale, self.bias - self.mean * scale

    def forward(self, x):
        if self.weight.dtype == np.float64:
            # bit-exact mode: same op order as the graph's eval path
            return K.batch_norm2d_infer(
                x, self.mean, self.inv_std, self.weight, self.bias, self.channel_axis
            )
        if self.folded_into is not None:
            return x  # already applied inside the conv GEMM
        if self._folded is None:
            shape = [1, 1, 1, 1]
            shape[self.channel_axis] = -1
            scale, shift = self.affine()
            self._folded = (scale.reshape(shape), shift.reshape(shape))
        return K.bn_scale_shift_infer(x, *self._folded, bufs=self._bufs)


def fold_bn_into_conv(conv, bn) -> bool:
    """Mark a (conv, batch-norm) pair for float32 GEMM folding.

    Freeze-time structural rewrite: when serving in float32, the conv
    applies ``w*scale`` / ``bias*scale + shift`` directly and the norm
    becomes identity, removing two full activation passes per pair.
    The float64 engine ignores the marking, keeping its bit-exact op
    order.  Returns whether the pair was foldable.
    """
    if not isinstance(conv, FrozenConv2d) or not isinstance(bn, FrozenBatchNorm2d):
        return False
    c_out = conv.w_mat.shape[1] if conv.layout == "nhwc" else conv.w_mat.shape[0]
    if bn.weight.shape != (c_out,):
        return False
    conv._bn = bn
    bn.folded_into = conv
    return True


@register_freezer(L.BatchNorm2d)
def _freeze_batch_norm(module: L.BatchNorm2d, ctx: FreezeContext) -> FrozenModule:
    mean = module._buffers["running_mean"].copy()
    var = module._buffers["running_var"]
    inv_std = 1.0 / np.sqrt(var + module.eps)
    return FrozenBatchNorm2d(
        mean,
        inv_std,
        module.weight.data.copy(),
        module.bias.data.copy(),
        channel_axis=3 if ctx.layout == "nhwc" else 1,
    )


class FrozenLayerNorm(FrozenModule):
    _arrays = ("weight", "bias")

    def __init__(self, weight, bias, eps) -> None:
        super().__init__()
        self.weight = weight
        self.bias = bias
        self.eps = eps

    def forward(self, x):
        return K.layer_norm_infer(x, self.weight, self.bias, self.eps, bufs=self._bufs)


@register_freezer(L.LayerNorm)
def _freeze_layer_norm(module: L.LayerNorm, ctx: FreezeContext) -> FrozenModule:
    return FrozenLayerNorm(module.weight.data.copy(), module.bias.data.copy(), module.eps)


class FrozenLambda(FrozenModule):
    """Parameter-free op (activation, flatten, pooling).

    The flags describe the wrapped function to the fused plan compiler
    (:mod:`repro.runtime.plan`): ``identity`` ops are elided outright,
    ``scale_commutes`` marks ``fn(m*x) == m*fn(x)`` for scalar ``m > 0``
    (lets a scale fold walk through), and ``relu_commutes`` marks
    ``fn(relu(x)) == relu(fn(x))`` (lets ReLU elimination see through).
    """

    def __init__(
        self, fn, identity=False, scale_commutes=False, relu_commutes=False
    ) -> None:
        super().__init__()
        self.fn = fn
        self.identity = identity
        self.scale_commutes = scale_commutes
        self.relu_commutes = relu_commutes

    def forward(self, x):
        return self.fn(x)


class FrozenReLU(FrozenModule):
    def forward(self, x):
        return K.relu_infer(x, bufs=self._bufs)


class FrozenGELU(FrozenModule):
    def forward(self, x):
        return K.gelu_infer(x, bufs=self._bufs)


@register_freezer(L.ReLU)
def _freeze_relu(module, ctx) -> FrozenModule:
    return FrozenReLU()


@register_freezer(L.GELU)
def _freeze_gelu(module, ctx) -> FrozenModule:
    return FrozenGELU()


@register_freezer(L.Flatten)
def _freeze_flatten(module, ctx) -> FrozenModule:
    return FrozenLambda(
        lambda x: x.reshape(x.shape[0], -1),
        scale_commutes=True,
        relu_commutes=True,
    )


@register_freezer(L.Dropout)
def _freeze_dropout(module, ctx) -> FrozenModule:
    return FrozenLambda(lambda x: x, identity=True)  # inference: identity


@register_freezer(L.GlobalAvgPool2d)
def _freeze_global_avg_pool(module, ctx) -> FrozenModule:
    spatial = (1, 2) if ctx.layout == "nhwc" else (2, 3)
    return FrozenLambda(lambda x: x.mean(axis=spatial), scale_commutes=True)


_POOL_KERNELS = {
    ("max", "nchw"): K.max_pool2d_infer,
    ("avg", "nchw"): K.avg_pool2d_infer,
    ("max", "nhwc"): K.max_pool2d_nhwc_infer,
    ("avg", "nhwc"): K.avg_pool2d_nhwc_infer,
}


class FrozenPool2d(FrozenModule):
    def __init__(self, kind, kernel, stride, layout) -> None:
        super().__init__()
        self.fn = _POOL_KERNELS[(kind, layout)]
        self.pool_kind = kind
        self.layout = layout
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel

    def forward(self, x):
        return self.fn(x, self.kernel, self.stride)


@register_freezer(L.MaxPool2d)
def _freeze_max_pool(module: L.MaxPool2d, ctx) -> FrozenModule:
    stride = _pair(module.stride) if module.stride is not None else None
    return FrozenPool2d("max", _pair(module.kernel_size), stride, ctx.layout)


@register_freezer(L.AvgPool2d)
def _freeze_avg_pool(module: L.AvgPool2d, ctx) -> FrozenModule:
    stride = _pair(module.stride) if module.stride is not None else None
    return FrozenPool2d("avg", _pair(module.kernel_size), stride, ctx.layout)


class FrozenEmbedding(FrozenModule):
    _arrays = ("table",)

    def __init__(self, table) -> None:
        super().__init__()
        self.table = table

    def forward(self, indices):
        return self.table[np.asarray(indices, dtype=np.int64)]


@register_freezer(L.Embedding)
def _freeze_embedding(module: L.Embedding, ctx) -> FrozenModule:
    return FrozenEmbedding(module.weight.data.copy())


# ----------------------------------------------------------------------
# Containers and composite blocks
# ----------------------------------------------------------------------
class FrozenSequential(FrozenModule):
    def __init__(self, items) -> None:
        super().__init__()
        for item in items:
            self.add(item)
        for first, second in zip(self._children, self._children[1:]):
            fold_bn_into_conv(first, second)

    def forward(self, x):
        for child in self._children:
            x = child(x)
        return x


@register_freezer(Sequential)
def _freeze_sequential(module: Sequential, ctx: FreezeContext) -> FrozenModule:
    return FrozenSequential([freeze_module(child, ctx) for child in module])


class FrozenBasicBlock(FrozenModule):
    def __init__(self, conv1, bn1, conv2, bn2, shortcut, bn_shortcut) -> None:
        super().__init__()
        self.conv1 = self.add(conv1)
        self.bn1 = self.add(bn1)
        self.conv2 = self.add(conv2)
        self.bn2 = self.add(bn2)
        self.shortcut = self.add(shortcut) if shortcut is not None else None
        self.bn_shortcut = self.add(bn_shortcut) if bn_shortcut is not None else None
        fold_bn_into_conv(conv1, bn1)
        fold_bn_into_conv(conv2, bn2)
        if shortcut is not None:
            fold_bn_into_conv(shortcut, bn_shortcut)

    def forward(self, x):
        out = K.relu_infer(self.bn1(self.conv1(x)), bufs=self._bufs, tag="relu1")
        out = self.bn2(self.conv2(out))
        if self.shortcut is not None:
            residual = self.bn_shortcut(self.shortcut(x))
        else:
            residual = x
        acc = K.scratch(self._bufs, "block-out", out.shape, out.dtype)
        np.add(out, residual, out=acc)
        return np.maximum(acc, 0.0, out=acc)


@register_freezer(M.BasicBlock)
def _freeze_basic_block(module: M.BasicBlock, ctx: FreezeContext) -> FrozenModule:
    has_shortcut = module.shortcut is not None
    return FrozenBasicBlock(
        freeze_module(module.conv1, ctx),
        freeze_module(module.bn1, ctx),
        freeze_module(module.conv2, ctx),
        freeze_module(module.bn2, ctx),
        freeze_module(module.shortcut, ctx) if has_shortcut else None,
        freeze_module(module.bn_shortcut, ctx) if has_shortcut else None,
    )


class FrozenInceptionModule(FrozenModule):
    def __init__(self, branch1, branch3, branch5, branch_pool, layout) -> None:
        super().__init__()
        self.branch1 = self.add(branch1)
        self.branch3 = self.add(branch3)
        self.branch5 = self.add(branch5)
        self.branch_pool = self.add(branch_pool)
        self.channel_axis = 3 if layout == "nhwc" else 1

    def forward(self, x):
        # The graph module's unpadded 3x3/stride-1 average pool always
        # shrinks the spatial size, so its shape guard unconditionally
        # falls back to the raw input; the serving kernel skips the
        # discarded pooling pass and feeds the pool branch directly.
        branches = [
            self.branch1(x),
            self.branch3(x),
            self.branch5(x),
            self.branch_pool(x),
        ]
        return np.concatenate(branches, axis=self.channel_axis)


@register_freezer(M.InceptionModule)
def _freeze_inception_module(module: M.InceptionModule, ctx) -> FrozenModule:
    return FrozenInceptionModule(
        freeze_module(module.branch1, ctx),
        freeze_module(module.branch3, ctx),
        freeze_module(module.branch5, ctx),
        freeze_module(module.branch_pool, ctx),
        ctx.layout,
    )


class FrozenAttention(FrozenModule):
    def __init__(self, q_proj, k_proj, v_proj, out_proj, num_heads, head_dim) -> None:
        super().__init__()
        self.q_proj = self.add(q_proj)
        self.k_proj = self.add(k_proj)
        self.v_proj = self.add(v_proj)
        self.out_proj = self.add(out_proj)
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.inv_sqrt = 1.0 / math.sqrt(head_dim)

    def _split_heads(self, x, batch, seq):
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x):
        batch, seq, dim = x.shape
        q = self.q_proj(x)
        k = self.k_proj(x)
        v = self.v_proj(x)
        scores_bytes = batch * self.num_heads * seq * seq * x.dtype.itemsize
        if x.dtype == np.float32 and scores_bytes > K.l2_budget_bytes():
            # long sequences: the full scores tensor would spill the
            # cache budget, so stream k/v blocks through the blocked
            # online-softmax kernel instead (float32 serving bar only;
            # float64 keeps the bit-exact multi-pass order below)
            return self.out_proj(
                K.attention_heads_infer(
                    q, k, v, self.num_heads, self.inv_sqrt, bufs=self._bufs
                )
            )
        q = self._split_heads(q, batch, seq)
        k = self._split_heads(k, batch, seq)
        v = self._split_heads(v, batch, seq)
        scores = (q @ k.transpose(0, 1, 3, 2)) * self.inv_sqrt
        attn = K.softmax_infer(scores, axis=-1, bufs=self._bufs)
        context = (attn @ v).transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.out_proj(context)


@register_freezer(A.MultiHeadSelfAttention)
def _freeze_attention(module: A.MultiHeadSelfAttention, ctx) -> FrozenModule:
    return FrozenAttention(
        freeze_module(module.q_proj, ctx),
        freeze_module(module.k_proj, ctx),
        freeze_module(module.v_proj, ctx),
        freeze_module(module.out_proj, ctx),
        module.num_heads,
        module.head_dim,
    )


class FrozenPreLNBlock(FrozenModule):
    def __init__(self, norm1, attn, norm2, fc1, fc2) -> None:
        super().__init__()
        self.norm1 = self.add(norm1)
        self.attn = self.add(attn)
        self.norm2 = self.add(norm2)
        self.fc1 = self.add(fc1)
        self.fc2 = self.add(fc2)

    def forward(self, x):
        a = self.attn(self.norm1(x))
        np.add(x, a, out=a)  # a is the out_proj buffer: safe to clobber
        h = self.fc2(K.gelu_infer(self.fc1(self.norm2(a)), bufs=self._bufs))
        np.add(a, h, out=h)  # h is the fc2 buffer
        return h


@register_freezer(A.TransformerEncoderBlock)
def _freeze_pre_ln_block(module: A.TransformerEncoderBlock, ctx) -> FrozenModule:
    return FrozenPreLNBlock(
        freeze_module(module.norm1, ctx),
        freeze_module(module.attn, ctx),
        freeze_module(module.norm2, ctx),
        freeze_module(module.fc1, ctx),
        freeze_module(module.fc2, ctx),
    )


class FrozenPostLNBlock(FrozenModule):
    def __init__(self, attn, norm1, fc1, fc2, norm2) -> None:
        super().__init__()
        self.attn = self.add(attn)
        self.norm1 = self.add(norm1)
        self.fc1 = self.add(fc1)
        self.fc2 = self.add(fc2)
        self.norm2 = self.add(norm2)

    def forward(self, x):
        a = self.attn(x)
        np.add(x, a, out=a)  # a is the out_proj buffer: safe to clobber
        x = self.norm1(a)
        h = self.fc2(K.gelu_infer(self.fc1(x), bufs=self._bufs))
        np.add(x, h, out=h)  # h is the fc2 buffer
        return self.norm2(h)


@register_freezer(A.PostLNEncoderBlock)
def _freeze_post_ln_block(module: A.PostLNEncoderBlock, ctx) -> FrozenModule:
    return FrozenPostLNBlock(
        freeze_module(module.attn, ctx),
        freeze_module(module.norm1, ctx),
        freeze_module(module.fc1, ctx),
        freeze_module(module.fc2, ctx),
        freeze_module(module.norm2, ctx),
    )


# ----------------------------------------------------------------------
# Whole-model architectures
# ----------------------------------------------------------------------
class _nhwc_trunk:
    """Scope under which conv/pool/norm freezers compile channels-last."""

    def __init__(self, ctx: FreezeContext) -> None:
        self.ctx = ctx

    def __enter__(self):
        self.saved = self.ctx.layout
        self.ctx.layout = "nhwc"
        return self.ctx

    def __exit__(self, *exc):
        self.ctx.layout = self.saved


def _to_nhwc(x):
    return x.transpose(0, 2, 3, 1)


def _to_nchw(x):
    return np.ascontiguousarray(x.transpose(0, 3, 1, 2))


class FrozenVGG(FrozenModule):
    def __init__(self, features, classifier) -> None:
        super().__init__()
        self.features = self.add(features)
        self.classifier = self.add(classifier)

    def forward(self, x):
        out = self.features(_to_nhwc(x))
        # back to NCHW so the classifier's Flatten sees the same
        # (C, H, W) feature order the graph model flattens
        return self.classifier(_to_nchw(out))


@register_freezer(M.VGGStyle)
def _freeze_vgg(module: M.VGGStyle, ctx) -> FrozenModule:
    with _nhwc_trunk(ctx):
        features = freeze_module(module.features, ctx)
    return FrozenVGG(features, freeze_module(module.classifier, ctx))


class FrozenResNet(FrozenModule):
    def __init__(self, stem, bn_stem, stages, fc) -> None:
        super().__init__()
        self.stem = self.add(stem)
        self.bn_stem = self.add(bn_stem)
        self.stages = self.add(stages)
        self.fc = self.add(fc)
        fold_bn_into_conv(stem, bn_stem)

    def forward(self, x):
        out = K.relu_infer(self.bn_stem(self.stem(_to_nhwc(x))), bufs=self._bufs)
        out = self.stages(out)
        return self.fc(out.mean(axis=(1, 2)))


@register_freezer(M.ResNetStyle)
def _freeze_resnet(module: M.ResNetStyle, ctx) -> FrozenModule:
    with _nhwc_trunk(ctx):
        stem = freeze_module(module.stem, ctx)
        bn_stem = freeze_module(module.bn_stem, ctx)
        stages = freeze_module(module.stages, ctx)
    return FrozenResNet(stem, bn_stem, stages, freeze_module(module.fc, ctx))


class FrozenInception(FrozenModule):
    def __init__(self, stem, block1, block2, fc) -> None:
        super().__init__()
        self.stem = self.add(stem)
        self.block1 = self.add(block1)
        self.block2 = self.add(block2)
        self.fc = self.add(fc)

    def forward(self, x):
        out = self.stem(_to_nhwc(x))
        out = self.block1(out)
        out = self.block2(out)
        return self.fc(out.mean(axis=(1, 2)))


@register_freezer(M.InceptionStyle)
def _freeze_inception(module: M.InceptionStyle, ctx) -> FrozenModule:
    with _nhwc_trunk(ctx):
        stem = freeze_module(module.stem, ctx)
        block1 = freeze_module(module.block1, ctx)
        block2 = freeze_module(module.block2, ctx)
    return FrozenInception(stem, block1, block2, freeze_module(module.fc, ctx))


class FrozenViT(FrozenModule):
    _arrays = ("pos_embed",)

    def __init__(self, patch_embed, pos_embed, blocks, norm, head) -> None:
        super().__init__()
        self.patch_embed = self.add(patch_embed)
        self.pos_embed = pos_embed
        self.blocks = self.add(blocks)
        self.norm = self.add(norm)
        self.head = self.add(head)

    def forward(self, x):
        patches = self.patch_embed(_to_nhwc(x))  # (N, H', W', D)
        n, d = patches.shape[0], patches.shape[3]
        # (H', W') raster order equals the graph model's token order;
        # the reshape aliases the conv output, which is ours to clobber
        tokens = np.ascontiguousarray(patches.reshape(n, -1, d))
        np.add(tokens, self.pos_embed, out=tokens)
        tokens = self.norm(self.blocks(tokens))
        return self.head(tokens.mean(axis=1))


@register_freezer(M.ViTStyle)
def _freeze_vit(module: M.ViTStyle, ctx) -> FrozenModule:
    with _nhwc_trunk(ctx):
        patch_embed = freeze_module(module.patch_embed, ctx)
    return FrozenViT(
        patch_embed,
        module.pos_embed.data.copy(),
        freeze_module(module.blocks, ctx),
        freeze_module(module.norm, ctx),
        freeze_module(module.head, ctx),
    )


class FrozenBERT(FrozenModule):
    _arrays = ("pos",)

    def __init__(self, embed, pos, blocks, pooler, head) -> None:
        super().__init__()
        self.embed = self.add(embed)
        self.pos = pos
        self.blocks = self.add(blocks)
        self.pooler = self.add(pooler)
        self.head = self.add(head)

    def forward(self, tokens):
        x = self.embed(tokens)  # fresh gather, safe to add into
        np.add(x, self.pos, out=x)
        x = self.blocks(x)
        pooled = self.pooler(x[:, 0, :])
        np.tanh(pooled, out=pooled)  # pooler buffer
        return self.head(pooled)


@register_freezer(M.BERTStyle)
def _freeze_bert(module: M.BERTStyle, ctx) -> FrozenModule:
    return FrozenBERT(
        freeze_module(module.embed, ctx),
        module.pos.data.copy(),
        freeze_module(module.blocks, ctx),
        freeze_module(module.pooler, ctx),
        freeze_module(module.head, ctx),
    )
