"""Fused forward-plan compiler behind the ``"fused"`` execution backend.

``compile_plan(model)`` walks a :class:`~repro.runtime.engine.FrozenModel`'s
module tree once, at ``set_backend("fused")`` / ``astype`` time, and lowers
it into a :class:`FusedPlan`: a tree of :class:`PlanNode` objects whose
``run`` methods execute the whole forward instead of interpreting
:class:`~repro.runtime.engine.FrozenModule` objects one by one.  The plan
is where cross-layer fusions live, so the shared per-layer kernels keep
their exact interpreted semantics:

* **Scale folding** -- a bit-LUT-quantized consumer (pot/flint grids,
  where the divide cannot fold into index constants) has its ``1/scale``
  folded into the producing GEMM's weights and bias, turning a full-array
  divide pass into zero passes.  Uniform grids never need this: their
  closed-form index absorbs the divide into the affine constants.
* **Quant-index + gather in one sweep** -- float32 activation quantize
  runs as a short chunk-resident pipeline (multiply/add/clip/cast/gather
  for uniform grids, the exact bit-pattern LUT kernels from
  :mod:`repro.runtime.engine` otherwise) fused with the GEMM: each
  cache-sized chunk of rows is quantized, windowed (convs pad directly
  into pooled scratch) and multiplied before the next chunk starts, so
  activation intermediates stay L2-resident instead of streaming through
  DRAM once per pass.
* **Elementwise merging** -- folded BN affine, bias and ReLU apply
  in place on each GEMM output chunk; ReLUs that feed only
  negative-killing quantizers (unsigned grids map every ``x <= 0`` to
  ``0`` exactly) are dropped outright.
* **Shared-consumer quantize** -- sibling layers that quantize the same
  tensor identically (q/k/v projections, ResNet block entries, Inception
  branch entries) read one plan-level :class:`SharedQuantNode` instead of
  relying on the per-forward memo.

Fusion policy is dtype-split: **float64 plans are conservative** -- every
node replays the interpreter's exact kernels in the interpreter's op
order (plus bit-exact consumer sharing), so the float64 ≤1e-9 parity bar
against the hook model is preserved; **float32 plans are aggressive**
(argmax-parity bar), applying the value-reassociating fusions above.

Anything the compiler does not recognize lowers to an
:class:`OpaqueNode` that simply calls the frozen module, so custom
freezers stay correct under the fused backend.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.dtypes.registry import default_registry
from repro.runtime import kernels as K
from repro.runtime import modules as FM
from repro.runtime.backends import ExecutionBackend, register_backend
from repro.runtime.engine import (
    FrozenActQuant,
    FrozenModule,
    _BitLutGridIndex,
    _fast_index_for,
)
from repro.runtime.kernels import scratch


def _grid_of(act: FrozenActQuant) -> np.ndarray:
    return default_registry.get(act.dtype_name).codec.grid


def _is_unsigned(act: Optional[FrozenActQuant]) -> bool:
    """True when the act grid maps every ``x <= 0`` to exactly ``0``.

    Unsigned grids (``int4u``/``pot4u``/``flint4u``) start at ``0`` with
    a positive first midpoint, so ``quantize(relu(x)) == quantize(x)``
    bit-exactly in both index kernels -- the condition for dropping a
    preceding ReLU.
    """
    if act is None:
        return False
    grid = _grid_of(act)
    return grid.size > 0 and grid[0] == 0.0


def _same_spec(a: Optional[FrozenActQuant], b: Optional[FrozenActQuant]) -> bool:
    return (
        a is not None
        and b is not None
        and a.dtype_name == b.dtype_name
        and a.scale == b.scale
    )


# ----------------------------------------------------------------------
# Fused float32 activation-quantize pipelines
# ----------------------------------------------------------------------
class _AffineQuant32:
    """Uniform-grid float32 quantize: mul/add/clip/cast/gather.

    The divide by the activation scale is folded into ``mul`` and the
    round-half-up plus grid origin into ``off``; clipping to the grid
    before the truncating cast makes ``trunc == floor``.  Unlike the
    exact :class:`~repro.runtime.engine._FastGridIndex` this skips the
    midpoint-compare correction pass, so decisions may flip within ~1
    ulp of a midpoint -- the fused float32 plan's argmax-parity bar, not
    the float backend's bit-identity bar.  NaN inputs must be screened
    by the caller.
    """

    __slots__ = ("mul", "off", "ftop", "lut")

    def __init__(self, act: FrozenActQuant) -> None:
        grid = _grid_of(act)
        step = float(grid[1] - grid[0])
        self.mul = np.float32(1.0 / (step * act.scale))
        self.off = np.float32(0.5 - float(grid[0]) / step)
        self.ftop = np.float32(grid.size - 1)
        self.lut = act.lut  # float32 after astype

    def write(self, x: np.ndarray, bufs: dict, out: np.ndarray) -> None:
        t = scratch(bufs, "q-t", x.shape, np.float32)
        idx = scratch(bufs, "q-idx", x.shape, np.intp)
        np.multiply(x, self.mul, out=t)
        np.add(t, self.off, out=t)
        np.clip(t, np.float32(0.0), self.ftop, out=t)  # also +-inf
        np.copyto(idx, t, casting="unsafe")  # trunc == floor on [0, top]
        np.take(self.lut, idx, out=out, mode="clip")


class _ExactQuant32:
    """Non-uniform-grid float32 quantize via the exact bit-LUT kernels.

    When ``prescaled`` the producing GEMM already divided by the
    activation scale (scale folding), so the pipeline starts at the
    index kernel: shift/gather/compare/correct, then one LUT gather.
    """

    __slots__ = ("fast", "scale", "lut", "prescaled")

    def __init__(self, act: FrozenActQuant, fast, prescaled: bool) -> None:
        self.fast = fast
        self.scale = np.float32(act.scale)
        self.lut = act.lut
        self.prescaled = prescaled

    def write(self, x: np.ndarray, bufs: dict, out: np.ndarray) -> None:
        if self.prescaled and x.flags.c_contiguous:
            scaled = x
        else:
            scaled = scratch(bufs, "q-s", x.shape, np.float32)
            if self.prescaled:
                np.copyto(scaled, x)  # bit-LUT views the raw bits
            else:
                np.divide(x, self.scale, out=scaled)
        np.take(self.lut, self.fast(scaled), out=out, mode="clip")


class _ValueLut32:
    """Single-gather float32 quantize: bucket bits -> quantized *value*.

    The quant-index + LUT-gather fusion taken to its end point: instead
    of indexing the grid and then gathering values, bucket each float32
    by its top ``32 - shift`` bits and store the quantized value per
    bucket, so the whole quantize is one shift and one gather.  Built
    only with an exactness certificate: every finite bucket must fall
    strictly on one side of every midpoint (``imin == imax``), which
    holds for the exponent-aligned pot/flint grids because their
    midpoints sit on high mantissa bits.  When no candidate shift
    certifies, the caller keeps the corrected bit-LUT chain instead --
    this class never returns approximate values.
    """

    __slots__ = ("shift", "vlut", "scale", "prescaled")

    def __init__(self, shift, vlut, scale, prescaled: bool) -> None:
        self.shift = np.uint32(shift)
        self.vlut = vlut
        self.scale = np.float32(scale)
        self.prescaled = prescaled

    @classmethod
    def build(cls, act: FrozenActQuant, prescaled: bool) -> Optional["_ValueLut32"]:
        with np.errstate(over="ignore", invalid="ignore"):
            mid32 = act.midpoints.astype(np.float32)
            if not bool(np.all(np.diff(mid32) > 0)):
                return None
        lut = act.lut
        for shift in (17, 15, 13):
            n_keys = np.uint32(1) << np.uint32(32 - shift)
            keys = np.arange(n_keys, dtype=np.uint32)
            lo_bits = keys << np.uint32(shift)
            hi_bits = lo_bits | np.uint32((1 << shift) - 1)
            lo_vals = lo_bits.view(np.float32)
            hi_vals = hi_bits.view(np.float32)
            negative = np.signbit(lo_vals)
            bucket_min = np.where(negative, hi_vals, lo_vals)
            bucket_max = np.where(negative, lo_vals, hi_vals)
            finite = np.isfinite(bucket_min) & np.isfinite(bucket_max)
            imin = np.searchsorted(mid32, bucket_min, side="right")
            imax = np.searchsorted(mid32, bucket_max, side="right")
            if not np.all((imin == imax) | ~finite):
                continue  # bucket straddles a midpoint: not exact here
            vlut = lut[np.minimum(imin, lut.size - 1)]
            # +-inf buckets saturate like searchsorted; the -inf bucket
            # shares bit space with NaNs (inputs are NaN-screened)
            vlut[bucket_min == np.inf] = lut[-1]
            vlut[np.uint32(0xFF800000) >> np.uint32(shift)] = lut[0]
            return cls(shift, vlut, act.scale, prescaled)
        return None

    def write(self, x: np.ndarray, bufs: dict, out: np.ndarray) -> None:
        if self.prescaled and x.flags.c_contiguous:
            scaled = x
        else:
            scaled = scratch(bufs, "q-s", x.shape, np.float32)
            if self.prescaled:
                np.copyto(scaled, x)  # the gather keys off the raw bits
            else:
                np.divide(x, self.scale, out=scaled)
        keys = scratch(bufs, "q-k", x.shape, np.intp)
        np.right_shift(
            scaled.view(np.uint32), self.shift, out=keys, casting="unsafe"
        )
        np.take(self.vlut, keys, out=out, mode="clip")


def _build_quant32(act: FrozenActQuant, prescaled: bool):
    """Fused float32 value-quantize for ``act``; None = no fast kernel."""
    fast = _fast_index_for(act.dtype_name)
    if fast is None:
        return None
    if isinstance(fast, _BitLutGridIndex):
        vlut = _ValueLut32.build(act, prescaled)
        if vlut is not None:
            return vlut
        return _ExactQuant32(act, fast, prescaled)
    return _AffineQuant32(act)


def _slow_quant_values(
    act: FrozenActQuant, x: np.ndarray, prescaled: bool
) -> np.ndarray:
    """NaN-propagating fallback quantize (mirrors the float backend)."""
    scaled = x if prescaled else x / act.lut.dtype.type(act.scale)
    out = act.lut[np.searchsorted(act.midpoints, scaled, side="right")]
    return np.where(np.isnan(scaled), np.nan, out)


def _has_nan(x: np.ndarray) -> bool:
    return bool(np.isnan(np.min(x, initial=np.inf)))


# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------
class PlanNode:
    """One step of a compiled forward.

    Fusion metadata consumed by :class:`SeqNode` optimization:

    * ``scale_commutes`` -- ``node(m*x) == m*node(x)`` for any scalar
      ``m > 0`` (transposes, flatten, pooling, ReLU, means).
    * ``relu_commutes`` -- ``node(relu(x)) == relu(node(x))`` (element
      permutations, max-pool, ReLU itself), used to see through a node
      when walking from a ReLU to a negative-killing consumer.
    * ``kills_negative_input`` -- the node maps any ``x <= 0`` input
      element to the same output as ``relu(x)`` would (unsigned-grid
      quantizers).
    * ``fold_output_scale(mult, dry)`` -- whether the node can multiply
      its output by ``mult`` at zero runtime cost (GEMMs fold it into
      weights+bias); ``dry=True`` probes without applying.
    """

    scale_commutes = False
    relu_commutes = False
    label = "?"
    kind_label = "op"

    def __init__(self) -> None:
        self.plan: Optional["FusedPlan"] = None
        self.children: List["PlanNode"] = []
        self._bufs: Dict[tuple, np.ndarray] = {}

    @property
    def kills_negative_input(self) -> bool:
        return False

    def fold_output_scale(self, mult: float, dry: bool) -> bool:
        return False

    def drop_trailing_relu(self) -> bool:
        return False

    def finalize(self) -> None:
        """Resolve compile-time state after all fusion passes ran."""

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        plan = self.plan
        if plan is not None and plan._profiling:
            t0 = time.perf_counter()
            out = self.run(x)
            rec = plan._times.setdefault(id(self), [0.0, 0])
            rec[0] += time.perf_counter() - t0
            rec[1] += 1
            return out
        return self.run(x)


class OpaqueNode(PlanNode):
    """Fallback: call the frozen module's own forward unchanged."""

    kind_label = "opaque"

    def __init__(self, module: FrozenModule, scale_commutes=False, relu_commutes=False):
        super().__init__()
        self.module = module
        self.scale_commutes = scale_commutes
        self.relu_commutes = relu_commutes
        self.label = type(module).__name__

    def run(self, x):
        return self.module.forward(x)


class FuncNode(PlanNode):
    """A raw array function (transpose, flatten, mean, slice)."""

    kind_label = "func"

    def __init__(self, fn, label, scale_commutes=False, relu_commutes=False):
        super().__init__()
        self.fn = fn
        self.label = label
        self.scale_commutes = scale_commutes
        self.relu_commutes = relu_commutes

    def run(self, x):
        return self.fn(x)


class ReluNode(PlanNode):
    scale_commutes = True
    relu_commutes = True
    label = "relu"
    kind_label = "relu"

    def run(self, x):
        return K.relu_infer(x, bufs=self._bufs)


class TanhNode(PlanNode):
    """In-place tanh; input must be the producing node's own buffer."""

    label = "tanh"
    kind_label = "elementwise"

    def run(self, x):
        return np.tanh(x, out=x)


class SharedQuantNode(PlanNode):
    """Quantize once for several identical consumers (plan-level edge).

    In float64 it runs the consumer's own :class:`FrozenActQuant`
    (exact searchsorted) so shared values are bit-identical to what each
    consumer would have computed alone; in float32 it runs the same
    fused quantize pipeline the consumers themselves would use.
    """

    kind_label = "shared-quant"

    def __init__(self, act: FrozenActQuant) -> None:
        super().__init__()
        self.act = act
        self._q = None
        self.label = f"shared-quant[{act.dtype_name}]"

    def finalize(self):
        self._q = None
        if self.plan is not None and self.plan.fused:
            self._q = _build_quant32(self.act, False)

    @property
    def kills_negative_input(self):
        return _is_unsigned(self.act)

    def run(self, x):
        if self._q is None or _has_nan(x):
            return self.act(x)
        out = scratch(self._bufs, "shared", x.shape, np.float32)
        self._q.write(x, self._bufs, out)
        return out


# ----------------------------------------------------------------------
# Quantized GEMM nodes
# ----------------------------------------------------------------------
class _GemmNode(PlanNode):
    """Shared machinery for fused Linear/Conv2d execution.

    ``mode`` is ``"raw"`` (quantize the incoming activations here) or
    ``"values"`` (a :class:`SharedQuantNode` already produced quantized
    values).  In float64 the node replays the interpreter's exact ops;
    in float32 it runs the fused chunk pipeline with merged post-ops.
    """

    def __init__(self, layer, fused: bool) -> None:
        super().__init__()
        self.layer = layer
        self.fused = fused
        self.mode = "raw"
        self.prescaled = False
        self.post_relu = False
        self.out_mult = 1.0
        self._q = None
        self._w = None
        self._bias = None
        act = layer.act_quant
        self.wants_prescale = (
            fused
            and act is not None
            and isinstance(_fast_index_for(act.dtype_name), _BitLutGridIndex)
        )
        name = layer.export.name if layer.export is not None else "?"
        self.label = f"{self.kind_label}[{name}]"

    @property
    def kills_negative_input(self):
        return (
            self.fused
            and self.mode == "raw"
            and _is_unsigned(self.layer.act_quant)
        )

    def fold_output_scale(self, mult, dry):
        if not self.fused:
            return False
        if not dry:
            self.out_mult *= mult
        return True

    def drop_trailing_relu(self):
        if self.post_relu:
            self.post_relu = False
            return True
        return False

    def _base_params(self):
        return self.layer.w_t, self.layer.bias

    def finalize(self):
        w, bias = self._base_params()
        if self.out_mult != 1.0:
            m = w.dtype.type(self.out_mult)
            w = np.ascontiguousarray(w * m)
            bias = None if bias is None else np.ascontiguousarray(bias * m)
        self._w, self._bias = w, bias
        act = self.layer.act_quant
        if self.fused and act is not None and self.mode == "raw":
            self._q = _build_quant32(act, self.prescaled)

    def _post(self, out: np.ndarray) -> None:
        """Bias + merged ReLU, in place on one output chunk."""
        if self._bias is not None:
            np.add(out, self._bias, out=out)
        if self.post_relu:
            np.maximum(out, 0.0, out=out)

    def _quant_input(self, x: np.ndarray):
        """Resolve the effective input and remaining quantize step.

        Returns ``(x, quant)`` where ``quant`` is the per-chunk pipeline
        (None = ``x`` already holds the values to multiply).
        """
        act = self.layer.act_quant
        if self.mode != "raw" or act is None:
            return x, None
        if self._q is None:  # exotic grid: interpreter quantize
            return act(x), None
        if _has_nan(x):  # rare: fall back to the NaN-propagating path
            return _slow_quant_values(act, x, self.prescaled), None
        return x, self._q


class LinearNode(_GemmNode):
    kind_label = "linear"

    def run(self, x):
        layer = self.layer
        if not self.fused:
            # float64 (bit-exact mode): interpreter op order
            if self.mode == "raw" and layer.act_quant is not None:
                x = layer.act_quant(x)
            return K.linear_infer(x, layer.w_t, layer.bias, bufs=self._bufs)
        x, quant = self._quant_input(x)
        w = self._w
        k = x.shape[-1]
        lead = x.shape[:-1]
        x2 = x.reshape(-1, k)
        rows = x2.shape[0]
        out = scratch(self._bufs, "out", (rows, w.shape[1]), np.float32)
        if quant is None:
            if x2.flags.c_contiguous:
                np.matmul(x2, w, out=out)
            else:
                np.matmul(np.ascontiguousarray(x2), w, out=out)
            self._post(out)
        else:
            # quantize + GEMM + post per cache-sized row chunk: the
            # quantized operand never round-trips through DRAM
            # (budget/32 elems == the old 1<<16 at the default 2 MiB)
            chunk = max(64, min(rows, (K.l2_budget_bytes() // 32) // max(k, 1)))
            qbuf = scratch(self._bufs, "qrows", (chunk, k), np.float32)
            for start in range(0, rows, chunk):
                m = min(chunk, rows - start)
                quant.write(x2[start:start + m], self._bufs, qbuf[:m])
                np.matmul(qbuf[:m], w, out=out[start:start + m])
                self._post(out[start:start + m])
        return out.reshape(lead + (w.shape[1],))


class ConvNode(_GemmNode):
    kind_label = "conv2d"

    def _base_params(self):
        layer = self.layer
        if self.fused and layer._bn is not None:
            return layer._fused_params()  # BN affine folded into the GEMM
        return layer.w_mat, layer.bias

    def run(self, x):
        layer = self.layer
        if not self.fused:
            if self.mode == "raw" and layer.act_quant is not None:
                x = layer.act_quant(x)
            return K.conv2d_nhwc_infer(
                x, layer.w_mat, layer.bias, layer.kernel, layer.stride,
                layer.padding, bufs=self._bufs,
            )
        x, quant = self._quant_input(x)
        w = self._w
        n, h, wd, c = x.shape
        kh, kw = layer.kernel
        sh, sw = layer.stride
        ph, pw = layer.padding
        out_h = (h + 2 * ph - kh) // sh + 1
        out_w = (wd + 2 * pw - kw) // sw + 1
        k_dim, c_out = w.shape
        span = out_h * out_w
        rows = n * span
        out = scratch(self._bufs, "out", (rows, c_out), np.float32)

        if kh == 1 and kw == 1:
            # pointwise: quantize only the strided subset that survives
            sub = x[:, ::sh, ::sw, :][:, :out_h, :out_w, :]
            if quant is not None:
                qbuf = scratch(
                    self._bufs, "q1x1", (n, out_h, out_w, c), np.float32
                )
                quant.write(sub, self._bufs, qbuf)
                cols = qbuf.reshape(rows, k_dim)
            else:
                cols = sub.reshape(rows, k_dim) if sub.flags.c_contiguous \
                    else np.ascontiguousarray(sub).reshape(rows, k_dim)
            chunk_rows = max(256, min(rows, K.conv_tile_elems() // max(c_out, 1)))
            for start in range(0, rows, chunk_rows):
                m = min(chunk_rows, rows - start)
                np.matmul(cols[start:start + m], w, out=out[start:start + m])
                self._post(out[start:start + m])
            return out.reshape(n, out_h, out_w, c_out)

        # windowed conv: quantize + pad + window-copy + GEMM + post-op all
        # run per cache-budget-sized sample tile (conv_tile_elems, env
        # REPRO_L2_BYTES), so neither the quantized activations nor the
        # im2col cols scratch round-trip through DRAM between passes
        per_sample = span * k_dim
        chunk = max(1, min(n, K.conv_tile_elems() // max(per_sample, 1)))
        pad_h, pad_w = h + 2 * ph, wd + 2 * pw
        cols = scratch(
            self._bufs, "cols", (chunk, out_h, out_w, kh, kw, c), np.float32
        )
        padded = ptile = qtile = None
        if quant is None:
            if not (ph or pw):
                padded = x if x.flags.c_contiguous else np.ascontiguousarray(x)
            else:
                padded = scratch(
                    self._bufs, "pad", (n, pad_h, pad_w, c), np.float32
                )
                if ph:
                    padded[:, :ph] = 0
                    padded[:, h + ph:] = 0
                if pw:
                    padded[:, :, :pw] = 0
                    padded[:, :, wd + pw:] = 0
                np.copyto(padded[:, ph:ph + h, pw:pw + wd, :], x)
        else:
            ptile = scratch(
                self._bufs, "ptile", (chunk, pad_h, pad_w, c), np.float32
            )
            if ph or pw:
                # interior writes below never touch the borders, so one
                # zero fill covers every tile of this forward
                if ph:
                    ptile[:, :ph] = 0
                    ptile[:, h + ph:] = 0
                if pw:
                    ptile[:, :, :pw] = 0
                    ptile[:, :, wd + pw:] = 0
                qtile = scratch(
                    self._bufs, "qtile", (chunk, h, wd, c), np.float32
                )
        for start in range(0, n, chunk):
            m = min(chunk, n - start)
            if quant is None:
                src = padded[start:start + m]
            else:
                src = ptile[:m]
                if qtile is None:
                    quant.write(x[start:start + m], self._bufs, src)
                else:
                    quant.write(x[start:start + m], self._bufs, qtile[:m])
                    np.copyto(src[:, ph:ph + h, pw:pw + wd, :], qtile[:m])
            s = src.strides
            windows = np.lib.stride_tricks.as_strided(
                src,
                shape=(m, out_h, out_w, kh, kw, c),
                strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
                writeable=False,
            )
            np.copyto(cols[:m], windows)
            np.matmul(
                cols[:m].reshape(m * span, k_dim), w,
                out=out[start * span:(start + m) * span],
            )
            self._post(out[start * span:(start + m) * span])
        return out.reshape(n, out_h, out_w, c_out)


# ----------------------------------------------------------------------
# Structural nodes and fusion passes
# ----------------------------------------------------------------------
class SeqNode(PlanNode):
    """A straight chain of nodes; the home of the fusion passes.

    Chains guarantee single-consumer dataflow, which is what makes the
    rewrites safe: (a) ReLUs whose downstream consumer kills negatives
    are dropped, (b) a bit-LUT consumer's ``1/scale`` folds back through
    scale-commuting nodes into the nearest foldable producer, (c) a
    ReLU directly after a GEMM merges into its per-chunk post-op.
    Nested chains are flattened first so fusion crosses freeze-time
    container boundaries (e.g. VGG features -> classifier).
    """

    kind_label = "seq"
    label = "seq"

    def __init__(self, nodes, fused: bool) -> None:
        super().__init__()
        flat: List[PlanNode] = []
        for node in nodes:
            if node is None:
                continue
            if isinstance(node, SeqNode):
                flat.extend(node.nodes)
            else:
                flat.append(node)
        self.nodes = flat
        if fused:
            self._optimize()
        self.children = list(self.nodes)

    @property
    def kills_negative_input(self):
        for node in self.nodes:
            if node.kills_negative_input:
                return True
            if not node.relu_commutes:
                return False
        return False

    def drop_trailing_relu(self):
        if not self.nodes:
            return False
        last = self.nodes[-1]
        if isinstance(last, ReluNode):
            del self.nodes[-1]
            self.children = list(self.nodes)
            return True
        return last.drop_trailing_relu()

    def _optimize(self) -> None:
        nodes = self.nodes
        # (a) ReLU elimination before negative-killing quantizers
        i = 0
        while i < len(nodes):
            j = i + 1
            while j < len(nodes) and nodes[j].relu_commutes:
                j += 1
            if j < len(nodes) and nodes[j].kills_negative_input:
                if isinstance(nodes[i], ReluNode):
                    del nodes[i]
                    continue
                nodes[i].drop_trailing_relu()
            i += 1
        # (b) fold 1/scale of bit-LUT consumers into their producer
        for i, node in enumerate(nodes):
            if not getattr(node, "wants_prescale", False):
                continue
            if node.mode != "raw" or node.prescaled:
                continue
            j = i - 1
            while j >= 0 and nodes[j].scale_commutes:
                j -= 1
            mult = 1.0 / node.layer.act_quant.scale
            if j >= 0 and nodes[j].fold_output_scale(mult, dry=True):
                nodes[j].fold_output_scale(mult, dry=False)
                node.prescaled = True
        # (c) merge ReLU into the preceding GEMM's post-op
        i = 1
        while i < len(nodes):
            if isinstance(nodes[i], ReluNode) and isinstance(
                nodes[i - 1], _GemmNode
            ):
                nodes[i - 1].post_relu = True
                del nodes[i]
                continue
            i += 1

    def run(self, x):
        for node in self.nodes:
            x = node(x)
        return x


class BasicBlockNode(PlanNode):
    """ResNet block: main/shortcut paths + one-pass residual add-ReLU."""

    kind_label = "basic-block"
    label = "basic-block"

    def __init__(self, block: FM.FrozenBasicBlock, fused: bool) -> None:
        super().__init__()
        self.block = block
        self.shared = None
        self.residual = None
        if block.shortcut is not None:
            a1 = block.conv1.act_quant
            a2 = block.shortcut.act_quant
            if _same_spec(a1, a2):
                self.shared = SharedQuantNode(a1)
        self.main = SeqNode(
            [
                _lower(block.conv1, fused),
                _lower(block.bn1, fused),
                ReluNode(),
                _lower(block.conv2, fused),
                _lower(block.bn2, fused),
            ],
            fused,
        )
        if block.shortcut is not None:
            self.residual = SeqNode(
                [
                    _lower(block.shortcut, fused),
                    _lower(block.bn_shortcut, fused),
                ],
                fused,
            )
        if self.shared is not None:
            for seq in (self.main, self.residual):
                first = seq.nodes[0]
                if isinstance(first, _GemmNode):
                    first.mode = "values"
        self.final_relu = True
        self.children = [
            n for n in (self.shared, self.main, self.residual) if n is not None
        ]

    @property
    def kills_negative_input(self):
        if self.shared is not None:
            return self.shared.kills_negative_input
        if self.residual is None:
            return False  # identity residual consumes the raw input
        return (
            self.main.kills_negative_input
            and self.residual.kills_negative_input
        )

    def drop_trailing_relu(self):
        if self.final_relu:
            self.final_relu = False
            return True
        return False

    def run(self, x):
        src = self.shared(x) if self.shared is not None else x
        out = self.main(src)
        residual = self.residual(src) if self.residual is not None else x
        acc = scratch(self._bufs, "block-out", out.shape, out.dtype)
        np.add(out, residual, out=acc)
        if self.final_relu:
            np.maximum(acc, 0.0, out=acc)
        return acc


class InceptionModuleNode(PlanNode):
    """Four parallel branches; branch-entry quantizes share one run."""

    kind_label = "inception"
    label = "inception"

    def __init__(self, mod: FM.FrozenInceptionModule, fused: bool) -> None:
        super().__init__()
        self.mod = mod
        self.branches = [
            SeqNode([_lower(b, fused)], fused)
            for b in (mod.branch1, mod.branch3, mod.branch5, mod.branch_pool)
        ]
        self.uses_shared = [False] * len(self.branches)
        self.shared = None
        entries = []
        for branch in self.branches:
            first = branch.nodes[0] if branch.nodes else None
            if (
                isinstance(first, _GemmNode)
                and first.mode == "raw"
                and first.layer.act_quant is not None
            ):
                entries.append(first)
            else:
                entries.append(None)
        groups: Dict[tuple, list] = {}
        for k, first in enumerate(entries):
            if first is not None:
                act = first.layer.act_quant
                groups.setdefault((act.dtype_name, act.scale), []).append(k)
        best = max(groups.values(), key=len, default=[])
        if len(best) >= 2:
            act = entries[best[0]].layer.act_quant
            self.shared = SharedQuantNode(act)
            for k in best:
                entries[k].mode = "values"
                self.uses_shared[k] = True
        self.children = ([self.shared] if self.shared else []) + self.branches

    @property
    def kills_negative_input(self):
        for branch, used in zip(self.branches, self.uses_shared):
            killed = (
                self.shared.kills_negative_input
                if used
                else branch.kills_negative_input
            )
            if not killed:
                return False
        return True

    def drop_trailing_relu(self):
        dropped = False
        for branch in self.branches:
            dropped = branch.drop_trailing_relu() or dropped
        return dropped

    def run(self, x):
        q = self.shared(x) if self.shared is not None else None
        outs = [
            branch(q if used else x)
            for branch, used in zip(self.branches, self.uses_shared)
        ]
        return np.concatenate(outs, axis=self.mod.channel_axis)


class LayerNormNode(PlanNode):
    """LayerNorm: fused-moment kernel at float32, exact replay at float64.

    Not ``scale_commutes``: LayerNorm is scale-*invariant* -- a folded
    multiplier would be silently erased, not commuted -- so scale folds
    stop here exactly as they did at the old opaque node.
    """

    kind_label = "layer-norm"
    label = "layer-norm"

    def __init__(self, ln: FM.FrozenLayerNorm, fused: bool) -> None:
        super().__init__()
        self.ln = ln
        self.fused = fused
        if fused:
            self.kind_label = "ln-1pass"
            self.label = "ln-1pass"

    def run(self, x):
        ln = self.ln
        if self.fused:
            return K.layer_norm_1pass_infer(
                x, ln.weight, ln.bias, ln.eps, bufs=self._bufs
            )
        return K.layer_norm_infer(x, ln.weight, ln.bias, ln.eps, bufs=self._bufs)


class AttentionNode(PlanNode):
    """Multi-head self-attention with one shared q/k/v quantize.

    Float64 replays the interpreter's strided op order bit-identically.
    Float32 runs the cache-resident path: when q/k/v share one quantize
    edge their finalized weights concatenate into a single ``(k, 3*dim)``
    GEMM, heads pack into contiguous ``(batch*heads, seq, head_dim)``
    operands once, and :func:`~repro.runtime.kernels.attention_blocked_infer`
    streams k/v blocks through the online-softmax recurrence so the
    score tile stays inside the cache budget.
    """

    kind_label = "attention"
    label = "attention"

    def __init__(self, attn: FM.FrozenAttention, fused: bool) -> None:
        super().__init__()
        self.attn = attn
        self.fused = fused
        self.qn = LinearNode(attn.q_proj, fused)
        self.kn = LinearNode(attn.k_proj, fused)
        self.vn = LinearNode(attn.v_proj, fused)
        self.on = LinearNode(attn.out_proj, fused)
        self.shared = None
        self._qkv_w = None
        self._qkv_bias = None
        if fused:
            self.kind_label = "attn-blocked"
            self.label = "attn-blocked"
        acts = [p.act_quant for p in (attn.q_proj, attn.k_proj, attn.v_proj)]
        if all(a is not None for a in acts) and all(
            _same_spec(acts[0], a) for a in acts[1:]
        ):
            self.shared = SharedQuantNode(acts[0])
            for node in (self.qn, self.kn, self.vn):
                node.mode = "values"
        self.children = [
            n
            for n in (self.shared, self.qn, self.kn, self.vn, self.on)
            if n is not None
        ]

    def finalize(self):
        self._qkv_w = None
        self._qkv_bias = None
        if not (self.fused and self.shared is not None):
            return
        nodes = (self.qn, self.kn, self.vn)
        for node in nodes:
            node.finalize()  # runs again later in plan order; idempotent
        if any(n.post_relu for n in nodes):
            return
        biases = [n._bias for n in nodes]
        if any(b is None for b in biases) != all(b is None for b in biases):
            return  # mixed bias layout: keep the separate GEMMs
        self._qkv_w = np.ascontiguousarray(
            np.concatenate([n._w for n in nodes], axis=1)
        )
        if biases[0] is not None:
            self._qkv_bias = np.concatenate(biases)

    def run(self, x):
        attn = self.attn
        batch, seq, dim = x.shape
        src = self.shared(x) if self.shared is not None else x
        if not self.fused:
            # float64 (bit-exact mode): interpreter op order
            q = attn._split_heads(self.qn(src), batch, seq)
            k = attn._split_heads(self.kn(src), batch, seq)
            v = attn._split_heads(self.vn(src), batch, seq)
            scores = (q @ k.transpose(0, 1, 3, 2)) * attn.inv_sqrt
            weights = K.softmax_infer(scores, axis=-1, bufs=self._bufs)
            context = (
                (weights @ v).transpose(0, 2, 1, 3).reshape(batch, seq, dim)
            )
            return self.on(context)
        if self._qkv_w is not None:
            src2 = src.reshape(batch * seq, dim)
            if not src2.flags.c_contiguous:
                src2 = np.ascontiguousarray(src2)
            qkv = scratch(
                self._bufs, "qkv", (batch * seq, 3 * dim), np.float32
            )
            np.matmul(src2, self._qkv_w, out=qkv)
            if self._qkv_bias is not None:
                np.add(qkv, self._qkv_bias, out=qkv)
            q3 = qkv.reshape(batch, seq, 3 * dim)
            q, k, v = q3[..., :dim], q3[..., dim:2 * dim], q3[..., 2 * dim:]
        else:
            q, k, v = self.qn(src), self.kn(src), self.vn(src)
        context = K.attention_heads_infer(
            q, k, v, attn.num_heads, attn.inv_sqrt, bufs=self._bufs
        )
        return self.on(context)


class PreLNBlockNode(PlanNode):
    kind_label = "preln-block"
    label = "preln-block"

    def __init__(self, block: FM.FrozenPreLNBlock, fused: bool) -> None:
        super().__init__()
        self.norm1 = _lower(block.norm1, fused)
        self.attn = _lower(block.attn, fused)
        self.norm2 = _lower(block.norm2, fused)
        self.fc1 = _lower(block.fc1, fused)
        self.fc2 = _lower(block.fc2, fused)
        self.children = [self.norm1, self.attn, self.norm2, self.fc1, self.fc2]

    def run(self, x):
        a = self.attn(self.norm1(x))
        np.add(x, a, out=a)  # a is the out_proj node's buffer
        h = self.fc2(K.gelu_infer(self.fc1(self.norm2(a)), bufs=self._bufs))
        np.add(a, h, out=h)  # h is the fc2 node's buffer
        return h


class PostLNBlockNode(PlanNode):
    kind_label = "postln-block"
    label = "postln-block"

    def __init__(self, block: FM.FrozenPostLNBlock, fused: bool) -> None:
        super().__init__()
        self.attn = _lower(block.attn, fused)
        self.norm1 = _lower(block.norm1, fused)
        self.fc1 = _lower(block.fc1, fused)
        self.fc2 = _lower(block.fc2, fused)
        self.norm2 = _lower(block.norm2, fused)
        self.children = [self.attn, self.norm1, self.fc1, self.fc2, self.norm2]

    def run(self, x):
        a = self.attn(x)
        np.add(x, a, out=a)  # a is the out_proj node's buffer
        x = self.norm1(a)
        h = self.fc2(K.gelu_infer(self.fc1(x), bufs=self._bufs))
        np.add(x, h, out=h)  # h is the fc2 node's buffer
        return self.norm2(h)


class VitTokensNode(PlanNode):
    """Patch grid -> token sequence + position embedding (in place)."""

    kind_label = "tokens"
    label = "vit-tokens"

    def __init__(self, vit: FM.FrozenViT) -> None:
        super().__init__()
        self.vit = vit

    def run(self, patches):
        n, d = patches.shape[0], patches.shape[3]
        tokens = np.ascontiguousarray(patches.reshape(n, -1, d))
        np.add(tokens, self.vit.pos_embed, out=tokens)
        return tokens


class BertEmbedNode(PlanNode):
    kind_label = "embed"
    label = "bert-embed"

    def __init__(self, bert: FM.FrozenBERT) -> None:
        super().__init__()
        self.bert = bert

    def run(self, tokens):
        x = self.bert.embed(tokens)  # fresh gather, safe to add into
        np.add(x, self.bert.pos, out=x)
        return x


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------
def _lower_vgg(m: FM.FrozenVGG, fused: bool) -> PlanNode:
    return SeqNode(
        [
            FuncNode(FM._to_nhwc, "to-nhwc", scale_commutes=True, relu_commutes=True),
            _lower(m.features, fused),
            FuncNode(FM._to_nchw, "to-nchw", scale_commutes=True, relu_commutes=True),
            _lower(m.classifier, fused),
        ],
        fused,
    )


def _lower_resnet(m: FM.FrozenResNet, fused: bool) -> PlanNode:
    return SeqNode(
        [
            FuncNode(FM._to_nhwc, "to-nhwc", scale_commutes=True, relu_commutes=True),
            _lower(m.stem, fused),
            _lower(m.bn_stem, fused),
            ReluNode(),
            _lower(m.stages, fused),
            FuncNode(lambda x: x.mean(axis=(1, 2)), "mean-hw", scale_commutes=True),
            _lower(m.fc, fused),
        ],
        fused,
    )


def _lower_inception(m: FM.FrozenInception, fused: bool) -> PlanNode:
    return SeqNode(
        [
            FuncNode(FM._to_nhwc, "to-nhwc", scale_commutes=True, relu_commutes=True),
            _lower(m.stem, fused),
            _lower(m.block1, fused),
            _lower(m.block2, fused),
            FuncNode(lambda x: x.mean(axis=(1, 2)), "mean-hw", scale_commutes=True),
            _lower(m.fc, fused),
        ],
        fused,
    )


def _lower_vit(m: FM.FrozenViT, fused: bool) -> PlanNode:
    return SeqNode(
        [
            FuncNode(FM._to_nhwc, "to-nhwc", scale_commutes=True, relu_commutes=True),
            _lower(m.patch_embed, fused),
            VitTokensNode(m),
            _lower(m.blocks, fused),
            _lower(m.norm, fused),
            FuncNode(lambda x: x.mean(axis=1), "mean-tokens", scale_commutes=True),
            _lower(m.head, fused),
        ],
        fused,
    )


def _lower_bert(m: FM.FrozenBERT, fused: bool) -> PlanNode:
    return SeqNode(
        [
            BertEmbedNode(m),
            _lower(m.blocks, fused),
            FuncNode(lambda x: x[:, 0, :], "cls-token"),
            _lower(m.pooler, fused),
            TanhNode(),
            _lower(m.head, fused),
        ],
        fused,
    )


def _lower(module: FrozenModule, fused: bool) -> Optional[PlanNode]:
    """Lower one frozen module into a plan node (None = elide)."""
    if isinstance(module, FM.FrozenLinear):
        return LinearNode(module, fused)
    if isinstance(module, FM.FrozenConv2d):
        if module.layout != "nhwc":
            return OpaqueNode(module)  # bare NCHW conv: interpreter path
        return ConvNode(module, fused)
    if isinstance(module, FM.FrozenSequential):
        return SeqNode([_lower(c, fused) for c in module._children], fused)
    if isinstance(module, FM.FrozenBatchNorm2d):
        if fused and module.folded_into is not None:
            return None  # applied inside the conv GEMM
        return OpaqueNode(module)
    if isinstance(module, FM.FrozenReLU):
        return ReluNode()
    if isinstance(module, FM.FrozenPool2d):
        return OpaqueNode(
            module,
            scale_commutes=True,
            relu_commutes=module.pool_kind == "max",
        )
    if isinstance(module, FM.FrozenLambda):
        if module.identity:
            return None
        return OpaqueNode(
            module,
            scale_commutes=module.scale_commutes,
            relu_commutes=module.relu_commutes,
        )
    if isinstance(module, FM.FrozenLayerNorm):
        return LayerNormNode(module, fused)
    if isinstance(module, FM.FrozenBasicBlock):
        return BasicBlockNode(module, fused)
    if isinstance(module, FM.FrozenInceptionModule):
        return InceptionModuleNode(module, fused)
    if isinstance(module, FM.FrozenAttention):
        return AttentionNode(module, fused)
    if isinstance(module, FM.FrozenPreLNBlock):
        return PreLNBlockNode(module, fused)
    if isinstance(module, FM.FrozenPostLNBlock):
        return PostLNBlockNode(module, fused)
    if isinstance(module, FM.FrozenVGG):
        return _lower_vgg(module, fused)
    if isinstance(module, FM.FrozenResNet):
        return _lower_resnet(module, fused)
    if isinstance(module, FM.FrozenInception):
        return _lower_inception(module, fused)
    if isinstance(module, FM.FrozenViT):
        return _lower_vit(module, fused)
    if isinstance(module, FM.FrozenBERT):
        return _lower_bert(module, fused)
    return OpaqueNode(module)


# ----------------------------------------------------------------------
# The compiled plan + backend registration
# ----------------------------------------------------------------------
class FusedPlan:
    """A compiled whole-forward executor for one (model, dtype) pair."""

    def __init__(self, model, root: PlanNode) -> None:
        self.dtype = model.dtype
        self.fused = model.dtype == np.float32
        self.root = root
        self.nodes: List[PlanNode] = []
        self._collect(root)
        for node in self.nodes:
            node.plan = self
        for node in self.nodes:
            node.finalize()
        self._profiling = False
        self._times: Dict[int, list] = {}

    def _collect(self, node: PlanNode) -> None:
        self.nodes.append(node)
        for child in node.children:
            self._collect(child)

    def run(self, x: np.ndarray) -> np.ndarray:
        return self.root(x)

    # ------------------------------------------------------------------
    def profile(self, x: np.ndarray, repeats: int = 1) -> dict:
        """Per-node wall times for ``repeats`` forwards over ``x``."""
        FrozenActQuant.new_generation()
        self.root(x)  # warm buffers outside the timed region
        self._times = {}
        self._profiling = True
        try:
            t0 = time.perf_counter()
            for _ in range(repeats):
                FrozenActQuant.new_generation()
                self.root(x)
            total = time.perf_counter() - t0
        finally:
            self._profiling = False
        return {"total_seconds": total, "ops": self._exclusive_ops(self._times)}

    def _exclusive_ops(self, times: Dict[int, list]) -> List[dict]:
        """Convert raw per-node times into exclusive per-op rows.

        A container's seconds exclude its children's.  Shared by
        :meth:`profile` and the persistent region timing the serving
        workers install (``FrozenModel.start_region_timing``), so both
        report identical rows for the same forward.
        """
        ops = []
        for node in self.nodes:
            rec = times.get(id(node))
            if rec is None:
                continue
            child_time = sum(
                times.get(id(c), [0.0, 0])[0] for c in node.children
            )
            ops.append(
                {
                    "label": node.label,
                    "kind": node.kind_label,
                    "seconds": max(rec[0] - child_time, 0.0),
                    "calls": rec[1],
                }
            )
        return ops

    def describe(self) -> List[str]:
        """Flat op labels, for tests asserting a fusion happened."""
        return [node.label for node in self.nodes]


@register_backend("fused")
class FusedBackend(ExecutionBackend):
    """Whole-forward plan compilation; per-layer hooks stay float.

    ``compile_linear``/``compile_conv2d`` return ``None`` so direct
    calls into individual frozen layers keep the interpreted float
    kernels; the fusion value is all in :meth:`compile_plan`.
    """

    def compile_plan(self, model) -> Optional[FusedPlan]:
        root = _lower(model.root, model.dtype == np.float32)
        if root is None:
            return None
        return FusedPlan(model, root)
