"""Frozen-model engine: packed exports, freezing, checkpoints, serving.

This module turns a calibrated :class:`~repro.quant.framework.ModelQuantizer`
into an inference-only artifact (the deploy half of the train/deploy
split):

* **Weights** are quantized once into packed low-bit code words
  (:class:`PackedTensor`: a :func:`repro.dtypes.codec.pack_codes`
  bitstream plus per-channel scales) and decoded once through the
  codec LUT into a cached dequantized matrix -- no per-forward
  re-quantization.
* **Activation quantizers** are exported to :class:`FrozenActQuant`: a
  scalar scale plus the type's scaled value LUT, so runtime fake-quant
  is one divide, one nearest-grid-index kernel (``searchsorted``, or a
  closed form in float32) and one gather -- no ``Tensor`` graph, no
  hooks, no STE mask.
* **The module tree** is compiled by :func:`freeze_module` into
  :class:`FrozenModule` mirrors (see :mod:`repro.runtime.modules`)
  whose forwards are the pure-numpy kernels of
  :mod:`repro.runtime.kernels`.
* :class:`FrozenModel` wraps the compiled tree with a batched
  ``predict`` serving API and ``save``/``load`` of packed ``.npz``
  checkpoints, where a 4-bit weight really occupies 4 bits (plus scale
  metadata) instead of a float64.

In float64 the frozen forward matches the hook-based fake-quant model
to well under 1e-9 (the weight cache is bit-exact by the codec
round-trip property; activation LUTs share the fake-quant multiplies).
``astype(np.float32)`` switches the whole tree to the float32 serving
fast path.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.dtypes.codec import pack_codes, unpack_codes
from repro.dtypes.registry import default_registry
from repro.runtime.kernels import scratch

#: checkpoint format version written by :meth:`FrozenModel.save`.
CHECKPOINT_VERSION = 1


def iter_chunks(batches, chunk_size: int):
    """Re-chunk an iterable of sample arrays into exact-size chunks.

    ``batches`` yields arrays with a leading sample axis (any sizes,
    including single-sample ``x[None]`` items); this generator yields
    arrays of exactly ``chunk_size`` samples, plus one short trailing
    chunk -- the boundaries a bulk ``np.array_split``-free consumer
    needs to reproduce fixed-position batching over a stream.  Memory
    is bounded by ``chunk_size`` plus one incoming item: nothing is
    materialized beyond the carry buffer, which is what lets the
    serving layer (`repro.serve`) stream datasets larger than RAM.
    Slices are views; only chunks spanning an input boundary copy.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    parts: List[np.ndarray] = []
    buffered = 0
    for batch in batches:
        batch = np.asarray(batch)
        if batch.ndim == 0:
            raise ValueError(
                "iter_chunks() items need a leading sample axis; wrap "
                "single samples as sample[None]"
            )
        if batch.shape[0] == 0:
            continue
        parts.append(batch)
        buffered += batch.shape[0]
        while buffered >= chunk_size:
            take: List[np.ndarray] = []
            got = 0
            while got < chunk_size:
                head = parts[0]
                need = chunk_size - got
                if head.shape[0] <= need:
                    take.append(head)
                    got += head.shape[0]
                    parts.pop(0)
                else:
                    take.append(head[:need])
                    parts[0] = head[need:]
                    got = chunk_size
            buffered -= chunk_size
            yield take[0] if len(take) == 1 else np.concatenate(take, axis=0)
    if buffered:
        yield parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)


# ----------------------------------------------------------------------
# Quantized tensor exports
# ----------------------------------------------------------------------
@dataclass
class PackedTensor:
    """A weight tensor stored as a packed low-bit bitstream + scales."""

    #: registry name of the numeric type, e.g. ``"flint4"``.
    dtype_name: str
    #: original tensor shape.
    shape: Tuple[int, ...]
    #: packed code words, ``ceil(size*bits/8)`` bytes.
    packed: np.ndarray
    #: per-channel scales (1-D) or a scalar 0-d array (per-tensor).
    scales: np.ndarray
    #: channel axis for per-channel scales; ``None`` for per-tensor.
    channel_axis: Optional[int]

    @property
    def bits(self) -> int:
        return default_registry.get(self.dtype_name).bits

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def packed_nbytes(self) -> int:
        """Bytes of code-word payload (excludes scales/metadata)."""
        return int(self.packed.nbytes)

    def _scale_broadcast(self) -> np.ndarray:
        if self.channel_axis is None:
            return self.scales
        shape = [1] * len(self.shape)
        shape[self.channel_axis] = -1
        return self.scales.reshape(shape)

    def dequantize(self) -> np.ndarray:
        """Decode the bitstream back to real values (float64).

        Bit-exactly equal to ``quantize_dequantize`` of the original
        tensor: the codes are the canonical ``grid_codes`` and
        ``decode(encode(grid)) == grid`` holds exactly for every
        registered type (property-tested), so decode-LUT gather times
        scale reproduces the fake-quant multiplies.
        """
        dtype = default_registry.get(self.dtype_name)
        codes = unpack_codes(self.packed, dtype.bits, self.size).reshape(self.shape)
        return dtype.codec.decode_lut[codes] * self._scale_broadcast()


def export_packed_weight(quantizer, weight: np.ndarray) -> PackedTensor:
    """Encode a calibrated weight tensor into a :class:`PackedTensor`."""
    from repro.quant.quantizer import Granularity

    dtype = quantizer.dtype
    weight = np.asarray(weight, dtype=np.float64)
    if quantizer.granularity is Granularity.PER_CHANNEL:
        axis: Optional[int] = quantizer.channel_axis
        scales = np.asarray(quantizer.scales, dtype=np.float64)
        shape = [1] * weight.ndim
        shape[axis] = -1
        scale_b = scales.reshape(shape)
    else:
        axis = None
        scales = np.asarray(quantizer.choice.scale, dtype=np.float64)
        scale_b = scales
    codes = dtype.codec.quantize_to_codes(weight, scale_b)
    return PackedTensor(
        dtype_name=dtype.name,
        shape=tuple(weight.shape),
        packed=pack_codes(codes, dtype.bits),
        scales=scales,
        channel_axis=axis,
    )


class _ScratchPool:
    """Reusable scratch buffers keyed by (tag, shape, dtype).

    Fresh numpy allocations of activation-sized temporaries are the
    dominant cost of cheap elementwise passes (page faults on every
    multi-MB array), so the serving fast path runs its kernels in-place
    over pooled buffers.  The pool is process-global and NOT
    thread-safe; concurrent serving should shard models per worker
    process (see ROADMAP "multi-process serving").
    """

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        return scratch(self._buffers, tag, shape, dtype)

    def clear(self) -> None:
        self._buffers.clear()


#: shared scratch for activation-quantize intermediates (never escape).
_SCRATCH = _ScratchPool()


class _FastGridIndex:
    """Closed-form nearest-grid-index kernel for uniform grids (float32).

    ``searchsorted`` against the midpoint table is exact but runs a
    per-element binary search.  For a *uniform* grid -- every int type,
    which is what Algorithm 2 overwhelmingly assigns to activations --
    round-to-nearest collapses to a fused multiply-add plus a floor:
    ``idx0 = floor(scaled*inv_step + offset)``.  The offset folds the
    grid origin, the +0.5 of round-half-up, and a 2^-12 downward bias
    that dominates the float32 rounding error of the multiply-add, so
    ``idx0`` is always the true index or one below; a single exact
    compare against the next midpoint then corrects it.  The result is
    *identical* to ``searchsorted(midpoints, x, side="right")`` for
    every non-NaN float32, ties included.

    All intermediates are in-place ops over pooled scratch buffers;
    fresh multi-MB allocations cost more than the arithmetic.  Index
    buffers are ``np.intp`` and gathers run ``mode="clip"``: any other
    index dtype makes ``np.take`` allocate and cast a full-size index
    copy per call, and the default bounds-checking gather is several
    times slower than the clip kernel (indices are in range by
    construction -- the build gate proves it, so clip never bites).
    """

    __slots__ = ("inv_step", "offset", "midhigh", "top", "ftop")

    def __init__(self, inv_step, offset, midhigh, top) -> None:
        self.inv_step = np.float32(inv_step)
        self.offset = np.float32(offset)
        self.midhigh = midhigh
        self.top = int(top)
        self.ftop = np.float32(top)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, grid: np.ndarray, midpoints: np.ndarray) -> Optional["_FastGridIndex"]:
        """Derive the affine map from a float64 grid; None when non-uniform."""
        if grid.size < 2:
            return None
        steps = np.diff(grid)
        step = steps[0]
        if not np.allclose(steps, step, rtol=1e-12, atol=0.0):
            return None
        with np.errstate(over="ignore", invalid="ignore"):
            mid32 = midpoints.astype(np.float32)
            distinct = bool(np.all(np.diff(mid32) > 0))
        if not distinct:
            return None  # grid exceeds float32 range/precision
        index = cls(
            inv_step=1.0 / step,
            offset=0.5 - grid[0] / step - 2.0 ** -12,
            # NaN sentinel: a >= compare against it is always False, so
            # idx0 == top can never be pushed past the grid even for
            # +inf inputs (which made an inf sentinel compare True)
            midhigh=np.concatenate([mid32, [np.float32(np.nan)]]),
            top=grid.size - 1,
        )
        return index if _agrees_with_searchsorted(index, mid32) else None

    # ------------------------------------------------------------------
    def __call__(self, scaled: np.ndarray) -> np.ndarray:
        """Nearest-grid indices of non-NaN float32 ``scaled``.

        Allocation-free; the returned index buffer is only valid until
        the next call.
        """
        shape = scaled.shape
        t = _SCRATCH.get("fgi-t", shape, np.float32)
        idx = _SCRATCH.get("fgi-idx", shape, np.intp)
        bound = _SCRATCH.get("fgi-bound", shape, np.float32)
        above = _SCRATCH.get("fgi-above", shape, np.bool_)
        np.multiply(scaled, self.inv_step, out=t)
        np.add(t, self.offset, out=t)
        np.floor(t, out=t)
        np.clip(t, np.float32(0.0), self.ftop, out=t)  # also +-inf
        np.copyto(idx, t, casting="unsafe")
        np.take(self.midhigh, idx, out=bound, mode="clip")
        np.greater_equal(scaled, bound, out=above)  # exact; ties go right
        # idx0 == top compares against the NaN sentinel (always False),
        # so the +1 can never push past top: no upper clamp pass needed
        np.add(idx, above, out=idx)
        return idx


class _BitLutGridIndex:
    """Exact float32 nearest-grid index via a bit-pattern bucket LUT.

    For non-uniform grids (pot/flint/float), bucket every float32 by
    its top ``32 - shift`` bits (sign + exponent + leading mantissa
    bits).  The table stores, per bucket, the midpoint-count of the
    bucket's minimum value; construction verifies every finite bucket
    spans at most one midpoint, so a single exact compare against the
    next midpoint corrects the candidate.  The result is *identical* to
    ``searchsorted(midpoints, x, side="right")`` for every finite
    non-NaN float32 -- including ties -- in ~6 allocation-free passes
    with one L2-resident gather instead of a per-element binary search.
    """

    __slots__ = ("shift", "table", "midhigh", "top")

    def __init__(self, shift: int, table: np.ndarray, midhigh: np.ndarray, top: int) -> None:
        self.shift = np.uint32(shift)
        self.table = table
        self.midhigh = midhigh
        self.top = np.int32(top)

    @classmethod
    def build(cls, grid: np.ndarray, midpoints: np.ndarray) -> Optional["_BitLutGridIndex"]:
        with np.errstate(over="ignore", invalid="ignore"):
            mid32 = midpoints.astype(np.float32)
            distinct = bool(np.all(np.diff(mid32) > 0))
        if not distinct:
            return None  # grid too fine/wide for float32 midpoints
        for shift in (17, 15, 13):
            n_keys = np.uint32(1) << np.uint32(32 - shift)
            keys = np.arange(n_keys, dtype=np.uint32)
            lo_bits = keys << np.uint32(shift)
            hi_bits = lo_bits | np.uint32((1 << shift) - 1)
            lo_vals = lo_bits.view(np.float32)
            hi_vals = hi_bits.view(np.float32)
            negative = np.signbit(lo_vals)  # sign bit set (incl. -0.0 bucket)
            bucket_min = np.where(negative, hi_vals, lo_vals)
            bucket_max = np.where(negative, lo_vals, hi_vals)
            finite = np.isfinite(bucket_min) & np.isfinite(bucket_max)
            imin = np.searchsorted(mid32, bucket_min, side="right")
            imax = np.searchsorted(mid32, bucket_max, side="right")
            if not np.all(((imax - imin) <= 1) | ~finite):
                continue  # bucket too wide for this grid; refine
            # intp so the per-call gathers never cast the index array
            table = imin.astype(np.intp)
            # the -inf bucket also contains NaN bit patterns, which
            # poisoned its searchsorted entry; -inf must saturate low
            # (NaN inputs never reach the fast path)
            table[np.uint32(0xFF800000) >> np.uint32(shift)] = 0
            # NaN sentinel (not inf): keeps the +1 correction from
            # escaping the grid on +inf inputs without an extra clamp
            midhigh = np.concatenate([mid32, [np.float32(np.nan)]])
            index = cls(
                shift=shift,
                table=table,
                midhigh=midhigh,
                top=grid.size - 1,
            )
            if _agrees_with_searchsorted(index, mid32):
                return index
        return None

    def __call__(self, scaled: np.ndarray) -> np.ndarray:
        """Indices for finite non-NaN float32 ``scaled`` (in scratch).

        Index buffers are ``np.intp`` and gathers use ``mode="clip"``
        for the same reason as :class:`_FastGridIndex`: any other
        combination makes ``np.take`` cast (and allocate) a full index
        copy and run the slower bounds-checked kernel per call.
        """
        shape = scaled.shape
        keys = _SCRATCH.get("blt-keys", shape, np.intp)
        idx = _SCRATCH.get("fgi-idx", shape, np.intp)
        bound = _SCRATCH.get("blt-bound", shape, np.float32)
        above = _SCRATCH.get("blt-above", shape, np.bool_)
        # the unsafe cast folds uint32 -> intp into the shift pass
        np.right_shift(scaled.view(np.uint32), self.shift, out=keys, casting="unsafe")
        np.take(self.table, keys, out=idx, mode="clip")
        np.take(self.midhigh, idx, out=bound, mode="clip")
        np.greater_equal(scaled, bound, out=above)  # ties go right
        # table entries are <= top and idx == top sees the NaN sentinel,
        # so the +1 correction cannot escape the grid (gate-verified)
        np.add(idx, above, out=idx)
        return idx


def _agrees_with_searchsorted(index, mid32: np.ndarray) -> bool:
    """Exact agreement of a fast index kernel with float32 searchsorted.

    Construction-time gate shared by both kernel classes: grid points,
    both float32 neighbours of every midpoint (the tie boundaries),
    uniform and normal random sweeps, zeros, subnormals, and ±inf.
    """
    rng = np.random.default_rng(0)
    span = float(mid32[-1] - mid32[0]) + 1.0
    probes = np.concatenate([
        mid32.astype(np.float64),
        np.nextafter(mid32, -np.inf).astype(np.float64),
        np.nextafter(mid32, np.inf).astype(np.float64),
        rng.uniform(mid32[0] - span, mid32[-1] + span, size=8192),
        rng.normal(size=8192) * float(np.abs(mid32).max() or 1.0),
        [0.0, -0.0, np.inf, -np.inf, 1e-40, -1e-40,
         np.float64(np.finfo(np.float32).max)],
    ]).astype(np.float32)
    ref = np.searchsorted(mid32, probes, side="right")
    return np.array_equal(index(probes).copy(), ref)


#: per-type cache of fast index kernels (None = searchsorted fallback).
_FAST_INDEX_CACHE: Dict[str, Optional[object]] = {}


def _fast_index_for(dtype_name: str) -> Optional[object]:
    if dtype_name not in _FAST_INDEX_CACHE:
        codec = default_registry.get(dtype_name).codec
        index = _FastGridIndex.build(codec.grid, codec.midpoints)
        if index is None:
            index = _BitLutGridIndex.build(codec.grid, codec.midpoints)
        _FAST_INDEX_CACHE[dtype_name] = index
    return _FAST_INDEX_CACHE[dtype_name]


class FrozenActQuant:
    """Graph-free activation fake-quantizer: scale + scaled value LUT.

    ``__call__`` is the whole runtime quantization path: one divide,
    one nearest-grid-index kernel, one LUT gather.  The LUT is
    ``grid * scale`` precomputed at freeze time, which performs the
    same elementwise multiplies as the calibration-time kernel, so
    float64 outputs are bit-identical to the hook path.  In float32
    mode the index kernel switches from ``searchsorted`` to
    :class:`_FastGridIndex` (uniform grids) or :class:`_BitLutGridIndex`
    (pot/flint/float) when the type supports it.
    """

    __slots__ = (
        "dtype_name", "scale", "lut", "midpoints", "_fast", "_bufs", "_last_gen"
    )

    #: per-forward memo of quantized tensors, keyed by input identity
    #: plus (type, scale): sibling layers that quantize the same
    #: activation identically (q/k/v projections, inception branches)
    #: share one kernel run.  The memo holds a reference to the input
    #: array, so its id cannot be recycled within a generation; cleared
    #: by :meth:`new_generation` at the start of every model forward.
    _memo: Dict[tuple, tuple] = {}
    #: generation counter; each model forward is one generation.
    _generation: int = 0

    @classmethod
    def new_generation(cls) -> None:
        cls._generation += 1
        cls._memo.clear()

    def __init__(self, dtype_name: str, scale: float) -> None:
        dtype = default_registry.get(dtype_name)
        self.dtype_name = dtype_name
        self.scale = float(scale)
        codec = dtype.codec
        self.lut = codec.grid * self.scale
        self.midpoints = codec.midpoints
        self._fast: Optional[object] = None
        self._bufs: Dict[tuple, np.ndarray] = {}
        self._last_gen = -1

    def astype(self, dtype: np.dtype) -> "FrozenActQuant":
        # rebuild from the float64 grid so astype round trips restore
        # full precision instead of compounding casts
        codec = default_registry.get(self.dtype_name).codec
        self.lut = np.asarray(codec.grid * self.scale, dtype=dtype)
        self.midpoints = np.asarray(codec.midpoints, dtype=dtype)
        self._fast = _fast_index_for(self.dtype_name) if dtype == np.float32 else None
        self._bufs.clear()
        return self

    #: memo entries allowed before a wholesale clear; bounds memory for
    #: direct users who call quantizers outside FrozenModel.forward
    #: (which starts a fresh generation every pass).
    _MEMO_LIMIT = 256

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self._fast is not None:
            if len(self._memo) >= self._MEMO_LIMIT:
                self._memo.clear()
            key = (id(x), self.dtype_name, self.scale)
            hit = self._memo.get(key)
            if hit is not None and hit[0] is x:
                return hit[1]
            scaled = _SCRATCH.get("faq-scaled", x.shape, np.float32)
            np.divide(x, np.float32(self.scale), out=scaled)
            if not np.isnan(np.min(scaled, initial=np.inf)):
                if self._last_gen == FrozenActQuant._generation:
                    # second invocation within one forward (module reuse/
                    # weight tying): don't clobber the buffer an earlier
                    # call may still be feeding downstream
                    out = np.empty(x.shape, dtype=np.float32)
                else:
                    out = scratch(self._bufs, "faq-out", x.shape, np.float32)
                    self._last_gen = FrozenActQuant._generation
                np.take(self.lut, self._fast(scaled), out=out, mode="clip")
                self._memo[key] = (x, out)
                return out
        scaled = x / self.scale
        out = self.lut[np.searchsorted(self.midpoints, scaled, side="right")]
        if np.isnan(np.min(scaled, initial=np.inf)):
            out = np.where(np.isnan(scaled), np.nan, out)
        return out

    def indices(self, x: np.ndarray) -> np.ndarray:
        """Nearest-grid *indices* of ``x`` (the code-domain half of
        :meth:`__call__`).

        Same index kernels as the value path -- ``searchsorted`` against
        the midpoints in float64, the exact fast kernels in float32 --
        so a code-domain backend quantizes to precisely the grid points
        the value path would have gathered.  The returned array is
        **read-only and shared**: sibling layers quantizing the same
        tensor identically (q/k/v projections) receive the same memoized
        array, so callers must not mutate it (it is marked
        non-writeable).  NaN has no code word, so non-finite-safe
        callers must mask beforehand; this raises ``ValueError`` on NaN
        input (+-inf saturates to the grid extremes, as in the value
        path).
        """
        key = (id(x), self.dtype_name, self.scale, "idx")
        hit = self._memo.get(key)
        if hit is not None and hit[0] is x:
            return hit[1]
        if self._fast is not None:
            scaled = _SCRATCH.get("faq-scaled", x.shape, np.float32)
            np.divide(x, np.float32(self.scale), out=scaled)
            if np.isnan(np.min(scaled, initial=np.inf)):
                raise ValueError(
                    f"cannot map NaN activations onto the {self.dtype_name} grid"
                )
            idx = np.array(self._fast(scaled), copy=True)
        else:
            scaled = x / self.scale
            if np.isnan(np.min(scaled, initial=np.inf)):
                raise ValueError(
                    f"cannot map NaN activations onto the {self.dtype_name} grid"
                )
            idx = np.searchsorted(self.midpoints, scaled, side="right")
        idx.setflags(write=False)  # shared via the memo: no mutation
        if len(self._memo) >= self._MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = (x, idx)
        return idx


# ----------------------------------------------------------------------
# Module freezing
# ----------------------------------------------------------------------
class FrozenModule:
    """Base class for compiled inference modules.

    Subclasses set ``_arrays`` (names of float ndarray attributes to
    cast with :meth:`astype`) and append children to ``_children``.
    ``_bufs`` holds the module's private scratch buffers (see
    :func:`repro.runtime.kernels.scratch`); it is cleared on dtype
    changes so stale-dtype buffers cannot leak through.

    Buffered modules assume each frozen instance runs **at most once
    per model forward** (the freeze compiler mirrors the module tree
    1:1, so this holds for every zoo architecture).  A custom freezer
    that invokes one frozen instance twice in a forward must not reuse
    ``_bufs``-backed outputs across the two calls.

    ``kind`` marks layers an execution backend may override
    (``"linear"``/``"conv2d"``, see :mod:`repro.runtime.backends`);
    such layers carry their :class:`LayerExport` in ``export`` and an
    installed executor in ``_exec`` (``None`` = built-in float path).
    """

    _arrays: Tuple[str, ...] = ()
    #: backend-overridable layer kind; ``None`` for structural modules.
    kind: Optional[str] = None

    def __init__(self) -> None:
        self._children: List[FrozenModule] = []
        self._bufs: Dict[tuple, np.ndarray] = {}
        self._masters: Dict[str, np.ndarray] = {}
        self.act_quant: Optional[FrozenActQuant] = None
        #: export bundle for quantized GEMM layers (set by their freezer).
        self.export = None
        #: backend-compiled executor replacing the forward body.
        self._exec: Optional[Callable] = None

    def add(self, child: "FrozenModule") -> "FrozenModule":
        self._children.append(child)
        return child

    def iter_modules(self):
        """Yield this module and every descendant, depth-first."""
        yield self
        for child in self._children:
            yield from child.iter_modules()

    def astype(self, dtype: np.dtype) -> "FrozenModule":
        if not self._masters:
            # snapshot the float64 construction-time arrays once, so
            # astype(float32) -> astype(float64) restores the bit-exact
            # originals instead of round-tripped float32 values
            self._masters = {
                name: getattr(self, name)
                for name in self._arrays
                if getattr(self, name) is not None
            }
        for name, master in self._masters.items():
            setattr(self, name, np.asarray(master, dtype=dtype))
        self._bufs.clear()
        if self.act_quant is not None:
            self.act_quant.astype(dtype)
        for child in self._children:
            child.astype(dtype)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


@dataclass
class LayerExport:
    """Export bundle for one quantized Conv2d/Linear layer.

    ``act_dtype_name`` of ``None`` marks a weight-only export: packed
    low-bit weights with float activations (no runtime activation
    fake-quant at all) -- the GOBO-style serving mode for workloads
    where activation quantization is accuracy-critical.
    """

    name: str
    weight: PackedTensor
    act_dtype_name: Optional[str]
    act_scale: Optional[float]

    def act_quant(self) -> Optional[FrozenActQuant]:
        if self.act_dtype_name is None:
            return None
        return FrozenActQuant(self.act_dtype_name, self.act_scale)

    def without_act_quant(self) -> "LayerExport":
        """The same weight export with activation quantization dropped."""
        return dataclasses.replace(self, act_dtype_name=None, act_scale=None)


class FreezeContext:
    """Per-freeze state: quantized exports keyed by module identity.

    ``layout`` is the activation memory layout conv/pool/norm freezers
    compile for.  Whole-model freezers switch it to ``"nhwc"`` around
    their convolutional trunk (channels-last windows copy contiguous
    channel runs, the serving fast path) and insert boundary
    transposes; the default ``"nchw"`` compiles bare layers exactly as
    the graph computes them.
    """

    def __init__(
        self,
        exports: Optional[Dict[int, LayerExport]] = None,
        weights_predequantized: bool = False,
    ) -> None:
        self.exports = exports or {}
        self.consumed: List[str] = []
        self.layout = "nchw"
        #: True when the skeleton's weights already hold the decoded
        #: values (checkpoint load), so freezers can read them instead
        #: of unpacking every bitstream a second time.
        self.weights_predequantized = weights_predequantized

    def export_for(self, module) -> Optional[LayerExport]:
        export = self.exports.get(id(module))
        if export is not None:
            self.consumed.append(export.name)
        return export

    def quantized_weight(self, module, export: LayerExport) -> np.ndarray:
        if self.weights_predequantized:
            return module.weight.data.copy()
        return export.weight.dequantize()


_FREEZERS: Dict[Type, Callable] = {}


def register_freezer(*module_types: Type) -> Callable:
    """Class decorator/function registering a freezer for module types."""

    def decorator(fn: Callable) -> Callable:
        for module_type in module_types:
            _FREEZERS[module_type] = fn
        return fn

    return decorator


def freeze_module(module, ctx: FreezeContext) -> FrozenModule:
    """Compile one module (and its subtree) into frozen form."""
    for cls in type(module).__mro__:
        if cls in _FREEZERS:
            return _FREEZERS[cls](module, ctx)
    raise TypeError(
        f"no freezer registered for {type(module).__name__}; "
        "register one with repro.runtime.register_freezer"
    )


# ----------------------------------------------------------------------
# The frozen model: serving API + packed checkpoints
# ----------------------------------------------------------------------
class FrozenModel:
    """An inference-only quantized model.

    Built by :meth:`repro.quant.framework.ModelQuantizer.freeze` (or
    :meth:`load`).  Holds the compiled :class:`FrozenModule` tree, the
    per-layer packed exports (the checkpoint payload), and the float
    parameters of non-quantized modules via the skeleton's state dict.
    """

    def __init__(
        self,
        root: FrozenModule,
        exports: List[LayerExport],
        float_state: Dict[str, np.ndarray],
        model_name: Optional[str] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self.root = root
        self.exports = {export.name: export for export in exports}
        self.float_state = float_state
        self.model_name = model_name
        self.meta = dict(meta or {})
        self.dtype = np.dtype(np.float64)
        self._backend = None  # None == built-in float path everywhere
        self._plan = None  # backend-compiled whole-forward plan

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the active execution backend (``"float"`` default)."""
        return "float" if self._backend is None else self._backend.name

    def set_backend(self, backend, **options) -> "FrozenModel":
        """Select how quantized GEMM layers execute.

        ``backend`` is a registered backend name (``"float"``,
        ``"qgemm"``; see :mod:`repro.runtime.backends`) or an
        :class:`~repro.runtime.backends.ExecutionBackend` instance --
        pass an instance to share state with the caller, e.g. a
        ``qgemm`` backend carrying a :class:`~repro.qgemm.CostMeter`.
        The compiled executors are installed on the frozen layers;
        structural modules and layers the backend declines (returns
        ``None`` for) keep the built-in float kernels.  Re-applied
        automatically on :meth:`astype`, since executors bake in the
        compute dtype.
        """
        from repro.runtime.backends import ExecutionBackend, get_backend

        if isinstance(backend, ExecutionBackend):
            if options:
                raise TypeError(
                    "backend options only apply when selecting by name"
                )
        else:
            backend = get_backend(str(backend), **options)
        self._backend = None if backend.name == "float" else backend
        self._apply_backend()
        return self

    def _apply_backend(self) -> None:
        for module in self.root.iter_modules():
            if module.kind == "linear":
                module._exec = (
                    None
                    if self._backend is None
                    else self._backend.compile_linear(module)
                )
            elif module.kind == "conv2d":
                module._exec = (
                    None
                    if self._backend is None
                    else self._backend.compile_conv2d(module)
                )
        # whole-forward plans bake in dtype-specific kernels and fusion
        # decisions, so they are recompiled (not patched) on every
        # backend or dtype change -- the single rebuild path shared by
        # set_backend() and astype()
        self._plan = (
            None if self._backend is None else self._backend.compile_plan(self)
        )

    # ------------------------------------------------------------------
    def astype(self, dtype) -> "FrozenModel":
        """Cast all cached arrays (weights, LUTs, norm params) in place.

        ``np.float64`` is the bit-exact mode matching the fake-quant
        graph; ``np.float32`` is the serving fast path.
        """
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise ValueError(f"compute dtype must be floating, got {dtype}")
        self.dtype = dtype
        self.root.astype(self.dtype)
        # backend executors bake in dtype-cast LUTs; recompile them
        self._apply_backend()
        return self

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """One batched forward pass; returns logits.

        In float32 mode the result may alias an internal buffer that is
        reused by the next forward -- copy it if you keep it.  The
        batched :meth:`predict` API always returns a fresh array.
        """
        FrozenActQuant.new_generation()
        x = np.asarray(x)
        if x.dtype.kind == "f" and x.dtype != self.dtype:
            x = x.astype(self.dtype)
        if self._plan is not None:
            return self._plan.run(x)
        return self.root(x)

    __call__ = forward

    def predict(
        self, x: np.ndarray, batch_size: int = 256, pad_batches: bool = False
    ) -> np.ndarray:
        """Batched serving entry point: logits for ``x`` in minibatches.

        With ``pad_batches=True`` every forward pass runs at exactly
        ``batch_size`` rows: a short final batch is zero-padded and the
        padding rows are sliced off the result.  Fixing the batch shape
        makes each sample's logits a pure function of that sample alone
        -- BLAS kernel selection depends on the GEMM row count, so
        *unpadded* partial batches can differ at the reassociation
        level.  The parallel serving pool (:mod:`repro.serve`) pads all
        its dispatches, which is what makes pooled results bit-identical
        to this method regardless of how requests were coalesced or
        sharded.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        x = np.asarray(x)
        if x.shape[0] == 0:
            raise ValueError("predict() needs at least one sample")
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            batch = x[start: start + batch_size]
            short = batch_size - batch.shape[0]
            if pad_batches and short > 0:
                pad = np.zeros((short,) + batch.shape[1:], dtype=batch.dtype)
                batch = np.concatenate([batch, pad], axis=0)
            out = self.forward(batch)
            if short > 0:
                out = out[: batch_size - short]
            # forward() may return a view into a reused internal buffer,
            # so copy each batch out before the next forward overwrites it
            outputs.append(np.array(out, copy=True))
        return np.concatenate(outputs, axis=0)

    def predict_stream(
        self, batches, batch_size: int = 256, pad_batches: bool = False
    ):
        """Streaming :meth:`predict`: iterator of sample arrays in,
        logits rows out, with O(``batch_size``) resident memory.

        ``batches`` yields arrays with a leading sample axis in any
        chunking; the stream is re-chunked into exact ``batch_size``
        forwards (:func:`iter_chunks`), so the yielded rows equal the
        rows of ``predict(concatenated_input, batch_size, pad_batches)``
        -- including bit-identity under ``pad_batches=True`` -- without
        ever materializing the concatenated input or output.  This is
        the single-process reference for the serving pool's
        ``map_predict_stream``.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for batch in iter_chunks(batches, batch_size):
            n = batch.shape[0]
            if pad_batches and n < batch_size:
                pad = np.zeros(
                    (batch_size - n,) + batch.shape[1:], dtype=batch.dtype
                )
                batch = np.concatenate([batch, pad], axis=0)
            out = self.forward(batch)
            # forward() may return a view into a reused internal buffer;
            # copy the batch out before the next forward overwrites it
            out = np.array(out[:n], copy=True)
            yield from out

    def predict_classes(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Argmax labels of :meth:`predict`."""
        return np.argmax(self.predict(x, batch_size=batch_size), axis=1)

    # ------------------------------------------------------------------
    def profile(self, x: np.ndarray, repeats: int = 3) -> dict:
        """Per-layer / per-fused-op wall-time breakdown of ``forward(x)``.

        Runs one untimed warm-up forward, then ``repeats`` timed
        forwards over ``x`` as a single batch.  With a compiled plan
        active (e.g. ``backend="fused"``) each plan node is timed;
        otherwise every module of the frozen tree is.  Reported seconds
        are *exclusive* -- a container's time excludes its children --
        summed over the repeats.  Returns a dict with ``backend``,
        ``dtype``, ``total_seconds``, ``ops`` (label/kind/seconds/share/
        calls rows, sorted by seconds), ``by_kind`` aggregation, and a
        pretty-printed ``table`` string.
        """
        if repeats <= 0:
            raise ValueError(f"repeats must be positive, got {repeats}")
        x = np.asarray(x)
        if self._plan is not None:
            raw = self._plan.profile(x, repeats=repeats)
            total, ops = raw["total_seconds"], raw["ops"]
        else:
            total, ops = self._profile_tree(x, repeats)
        ops.sort(key=lambda op: op["seconds"], reverse=True)
        for op in ops:
            op["share"] = op["seconds"] / total if total else 0.0
        by_kind: Dict[str, float] = {}
        for op in ops:
            by_kind[op["kind"]] = by_kind.get(op["kind"], 0.0) + op["seconds"]
        by_kind = dict(sorted(by_kind.items(), key=lambda kv: -kv[1]))
        width = max([len(op["label"]) for op in ops[:30]] + [5])
        lines = [f"{'op':<{width}}  {'kind':<16}  {'seconds':>9}  {'share':>6}"]
        for op in ops[:30]:
            lines.append(
                f"{op['label']:<{width}}  {op['kind']:<16}  "
                f"{op['seconds']:>9.5f}  {op['share']:>6.1%}"
            )
        return {
            "backend": self.backend,
            "dtype": self.dtype.name,
            "total_seconds": total,
            "ops": ops,
            "by_kind": by_kind,
            "table": "\n".join(lines),
        }

    def _profile_tree(self, x: np.ndarray, repeats: int):
        """Instrument every frozen module's forward and time a run.

        Kinds come from the shared :mod:`repro.obs.labels` vocabulary,
        so a tree profile's ``by_kind`` aggregates under the same keys a
        fused-plan profile does -- and a layer running a compiled qgemm
        executor reports the executed kernel family
        (``qgemm-pair-stat``), matching the cost meter's labels.
        """
        import time

        from repro.obs import labels as obs_labels

        records: List[dict] = []
        wrapped: List[FrozenModule] = []
        child_ids: Dict[int, List[int]] = {}

        def instrument(module: FrozenModule, label: str) -> None:
            rec = {
                "label": label,
                "kind": obs_labels.module_kind(module),
                "seconds": 0.0,
                "calls": 0,
                "_id": id(module),
            }
            records.append(rec)
            orig = module.forward

            def timed(inp, _orig=orig, _rec=rec):
                t0 = time.perf_counter()
                out = _orig(inp)
                _rec["seconds"] += time.perf_counter() - t0
                _rec["calls"] += 1
                return out

            module.forward = timed
            wrapped.append(module)

        def walk(module: FrozenModule, path: str) -> None:
            label = path
            if module.export is not None:
                label = f"{path}[{module.export.name}]"
            instrument(module, label)
            child_ids[id(module)] = [id(c) for c in module._children]
            for i, child in enumerate(module._children):
                walk(child, f"{path}.{i}:{type(child).__name__}")

        walk(self.root, type(self.root).__name__)
        try:
            self.forward(x)  # warm-up: buffer allocation stays untimed
            for rec in records:
                rec["seconds"] = 0.0
                rec["calls"] = 0
            t0 = time.perf_counter()
            for _ in range(repeats):
                self.forward(x)
            total = time.perf_counter() - t0
        finally:
            for module in wrapped:
                del module.__dict__["forward"]
        by_id = {rec["_id"]: rec for rec in records}
        ops = []
        for rec in records:
            child_time = sum(
                by_id[cid]["seconds"] for cid in child_ids.get(rec["_id"], [])
            )
            ops.append(
                {
                    "label": rec["label"],
                    "kind": rec["kind"],
                    "seconds": max(rec["seconds"] - child_time, 0.0),
                    "calls": rec["calls"],
                }
            )
        return total, ops

    def start_region_timing(self) -> "RegionTiming":
        """Install persistent per-region timers over future forwards.

        Unlike :meth:`profile` (run N timed forwards now), this leaves
        lightweight accumulation on so *serving* forwards are
        attributed: call :meth:`RegionTiming.read` after any number of
        forwards to get the exclusive per-region rows since the last
        read.  The serving pool's workers install one of these and ship
        each job's region split back on the reply (see
        :mod:`repro.serve.pool`).  Call after :meth:`astype` /
        :meth:`set_backend` -- both recompile the plan the timers hook.
        """
        return RegionTiming(self)

    # ------------------------------------------------------------------
    def size_report(self) -> dict:
        """Storage accounting: packed payload vs the float64 original."""
        packed_bytes = sum(e.weight.packed_nbytes for e in self.exports.values())
        scale_bytes = sum(e.weight.scales.nbytes for e in self.exports.values())
        quant_elements = sum(e.weight.size for e in self.exports.values())
        float_bytes = sum(v.nbytes for v in self.float_state.values())
        weighted_bits = sum(
            e.weight.bits * e.weight.size for e in self.exports.values()
        )
        return {
            "packed_weight_bytes": packed_bytes,
            "scale_bytes": scale_bytes,
            "float_param_bytes": float_bytes,
            "quantized_elements": quant_elements,
            "quantized_weight_bits_per_element": (
                weighted_bits / quant_elements if quant_elements else 0.0
            ),
            "float64_equivalent_bytes": quant_elements * 8,
        }

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write a packed ``.npz`` checkpoint.

        Quantized weights are stored only as packed code words plus
        scales; everything else (biases, norms, embeddings) is stored
        as float arrays from the skeleton state dict.
        """
        arrays: Dict[str, np.ndarray] = {}
        layer_meta = {}
        for name, export in self.exports.items():
            arrays[f"wcodes/{name}"] = export.weight.packed
            arrays[f"wscales/{name}"] = export.weight.scales
            layer_meta[name] = {
                "weight_dtype": export.weight.dtype_name,
                "shape": list(export.weight.shape),
                "channel_axis": export.weight.channel_axis,
                "act_dtype": export.act_dtype_name,
                "act_scale": export.act_scale,
            }
        for name, value in self.float_state.items():
            arrays[f"param/{name}"] = value
        # reserved keys merge last so user meta cannot corrupt them
        meta = {
            **self.meta,
            "version": CHECKPOINT_VERSION,
            "model_name": self.model_name,
            "layers": layer_meta,
        }
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)

    @classmethod
    def load(
        cls,
        path,
        model=None,
        weight_only: bool = False,
        backend: str = "float",
    ) -> "FrozenModel":
        """Rebuild a frozen model from a packed checkpoint.

        ``model`` is an architecture skeleton (an untrained module of
        the right structure); when omitted, the checkpoint's
        ``model_name`` is instantiated via the zoo model builders.
        ``weight_only=True`` drops the checkpoint's activation
        quantizers at load time: packed low-bit weights, float
        activations (checkpoints frozen with ``weight_only=True`` have
        no activation quantizers to begin with).  ``backend`` selects
        the execution backend (see :meth:`set_backend`).
        """
        from repro.quant.framework import quantizable_layers

        with np.load(path) as blob:
            meta = json.loads(bytes(blob["__meta__"]).decode("utf-8"))
            if meta.get("version") != CHECKPOINT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint version {meta.get('version')!r}"
                )
            state: Dict[str, np.ndarray] = {
                key[len("param/"):]: blob[key]
                for key in blob.files
                if key.startswith("param/")
            }
            exports = []
            for name, spec in meta["layers"].items():
                packed = PackedTensor(
                    dtype_name=spec["weight_dtype"],
                    shape=tuple(spec["shape"]),
                    packed=blob[f"wcodes/{name}"],
                    scales=blob[f"wscales/{name}"],
                    channel_axis=spec["channel_axis"],
                )
                export = LayerExport(
                    name=name,
                    weight=packed,
                    act_dtype_name=spec["act_dtype"],
                    act_scale=spec["act_scale"],
                )
                if weight_only:
                    export = export.without_act_quant()
                exports.append(export)
                state[f"{name}.weight"] = packed.dequantize()
        if model is None:
            if not meta.get("model_name"):
                raise ValueError(
                    "checkpoint has no model_name; pass an architecture "
                    "skeleton via load(path, model=...)"
                )
            from repro.nn.models import build_model

            model = build_model(meta["model_name"])
        model.load_state_dict(state)
        model.eval()

        by_name = quantizable_layers(model)
        export_map = {}
        for export in exports:
            if export.name not in by_name:
                raise KeyError(
                    f"checkpoint layer {export.name!r} not found in model"
                )
            export_map[id(by_name[export.name])] = export
        ctx = FreezeContext(export_map, weights_predequantized=True)
        root = freeze_module(model, ctx)
        packed_keys = {f"{name}.weight" for name in meta["layers"]}
        engine_meta = {
            k: v for k, v in meta.items()
            if k not in ("version", "model_name", "layers")
        }
        if weight_only:
            # the load-time override changes the engine's mode, so the
            # recorded mode (and any re-save of it) must follow
            engine_meta["weight_only"] = True
        frozen = cls(
            root,
            exports,
            float_state={k: v for k, v in state.items() if k not in packed_keys},
            model_name=meta.get("model_name"),
            meta=engine_meta,
        )
        if backend != "float":
            frozen.set_backend(backend)
        return frozen


class RegionTiming:
    """Persistent per-region timing over a model's serving forwards.

    Created by :meth:`FrozenModel.start_region_timing`.  With a
    compiled plan active the plan's own per-node accumulation is left
    on (the per-node cost is one ``perf_counter`` pair); on the
    interpreted tree every module forward gets a permanent timing
    wrapper (removed by :meth:`stop`).  Either way :meth:`read` drains
    the accumulators into exclusive per-region rows
    (``{label, kind, seconds, calls}`` -- a container's seconds exclude
    its children's) and resets them, so successive reads partition the
    time stream per job.
    """

    def __init__(self, model: FrozenModel) -> None:
        import time

        from repro.obs import labels as obs_labels

        self.model = model
        self._perf_counter = time.perf_counter
        self._module_kind = obs_labels.module_kind
        self._records: List[dict] = []
        self._child_ids: Dict[int, List[int]] = {}
        self._wrapped: List[FrozenModule] = []
        self._plan = model._plan
        if self._plan is not None:
            self._plan._times = {}
            self._plan._profiling = True
        else:
            self._instrument_tree()

    def _instrument_tree(self) -> None:
        perf_counter = self._perf_counter

        def walk(module: FrozenModule, path: str) -> None:
            label = path
            if module.export is not None:
                label = f"{path}[{module.export.name}]"
            rec = {
                "label": label,
                "module": module,
                "seconds": 0.0,
                "calls": 0,
                "_id": id(module),
            }
            self._records.append(rec)
            orig = module.forward

            def timed(inp, _orig=orig, _rec=rec):
                t0 = perf_counter()
                out = _orig(inp)
                _rec["seconds"] += perf_counter() - t0
                _rec["calls"] += 1
                return out

            module.forward = timed
            self._wrapped.append(module)
            self._child_ids[id(module)] = [id(c) for c in module._children]
            for i, child in enumerate(module._children):
                walk(child, f"{path}.{i}:{type(child).__name__}")

        walk(self.model.root, type(self.model.root).__name__)

    def read(self) -> List[dict]:
        """Exclusive per-region rows since the last read; resets."""
        if self._plan is not None:
            times = self._plan._times
            self._plan._times = {}
            return self._plan._exclusive_ops(times)
        by_id = {rec["_id"]: rec for rec in self._records}
        ops = []
        for rec in self._records:
            if not rec["calls"]:
                continue
            child_time = sum(
                by_id[cid]["seconds"]
                for cid in self._child_ids.get(rec["_id"], [])
            )
            ops.append(
                {
                    "label": rec["label"],
                    # resolved at read time: a layer's kind follows the
                    # executor currently installed (qgemm-<kernel>)
                    "kind": self._module_kind(rec["module"]),
                    "seconds": max(rec["seconds"] - child_time, 0.0),
                    "calls": rec["calls"],
                }
            )
            rec["seconds"] = 0.0
            rec["calls"] = 0
        return ops

    def stop(self) -> None:
        """Remove the instrumentation (tree wrappers / plan flag)."""
        if self._plan is not None:
            self._plan._profiling = False
            self._plan._times = {}
            return
        for module in self._wrapped:
            module.__dict__.pop("forward", None)
        self._wrapped = []


def freeze_model(
    model,
    exports: Optional[List[LayerExport]] = None,
    model_name: Optional[str] = None,
    meta: Optional[dict] = None,
) -> FrozenModel:
    """Compile ``model`` into a :class:`FrozenModel`.

    With ``exports`` (from a calibrated quantizer), Conv2d/Linear
    layers named there run quantized; without, every layer is frozen
    at full precision -- useful for benchmarking the graph-free
    kernels in isolation.  The model's train/eval state is restored
    afterwards, so freezing mid-QAT does not perturb fine-tuning.
    """
    saved_modes = [(m, m.training) for m in model.modules()]
    model.eval()
    export_map = {}
    if exports:
        from repro.quant.framework import quantizable_layers

        by_name = quantizable_layers(model)
        for export in exports:
            if export.name not in by_name:
                raise KeyError(f"export {export.name!r} matches no model layer")
            export_map[id(by_name[export.name])] = export
    ctx = FreezeContext(export_map)
    try:
        root = freeze_module(model, ctx)
    finally:
        for module, mode in saved_modes:
            object.__setattr__(module, "training", mode)
    missing = set(e.name for e in (exports or [])) - set(ctx.consumed)
    if missing:
        raise RuntimeError(
            f"exports never reached during freezing: {sorted(missing)}"
        )
    packed_keys = {f"{e.name}.weight" for e in (exports or [])}
    float_state = {
        key: value
        for key, value in model.state_dict().items()
        if key not in packed_keys
    }
    return FrozenModel(
        root,
        list(exports or []),
        float_state=float_state,
        model_name=model_name,
        meta=meta,
    )
