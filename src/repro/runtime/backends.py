"""Pluggable execution backends for the frozen runtime.

The frozen module tree is a *structure* (layer graph + packed exports);
an :class:`ExecutionBackend` decides how the quantized GEMM layers in
that structure actually compute.  The contract is deliberately small:

* ``compile_linear(layer)`` / ``compile_conv2d(layer)`` receive a
  frozen layer (which carries its :class:`~repro.runtime.engine.LayerExport`
  in ``layer.export``) and return either a callable ``run(x) -> out``
  that replaces the layer's built-in forward body, or ``None`` to keep
  the built-in float kernels for that layer.
* :meth:`repro.runtime.engine.FrozenModel.set_backend` walks the tree
  and installs the compiled executors; layer code never branches on
  which backend is active -- it only checks "do I have an installed
  executor".

Three backends ship with the repo:

* ``"float"`` (:class:`FloatBackend`) -- the default decode-once path:
  weights are dequantized into a cached float matrix and BLAS runs the
  GEMM.  ``compile_*`` returns ``None`` for every layer.
* ``"fused"`` (:class:`repro.runtime.plan.FusedBackend`, lazily
  imported) -- whole-forward plan compilation: the frozen tree is
  lowered once into a fused kernel sequence (scale folding, single-
  sweep quantize+gather, merged elementwise post-ops, shared-consumer
  quantize) via :meth:`ExecutionBackend.compile_plan`.
* ``"qgemm"`` (:class:`repro.qgemm.QGemmBackend`, lazily imported) --
  code-domain execution: GEMMs run directly on packed low-bit codes via
  per-(weight-code x activation-code) partial-product LUTs, modeling
  the paper's decode-in-front-of-MAC dataflow in software.

Backends are addressed by name so checkpoints, serving pools, and
worker processes can select one with a plain string.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable, Dict, Optional, Type

#: registered backend classes by name.
_BACKENDS: Dict[str, Type["ExecutionBackend"]] = {}

#: backends resolved by importing a module on first use, so
#: ``set_backend("qgemm")`` works without the caller importing
#: :mod:`repro.qgemm` (and the runtime package stays import-light).
_LAZY_BACKENDS: Dict[str, str] = {
    "qgemm": "repro.qgemm",
    "fused": "repro.runtime.plan",
}


class ExecutionBackend:
    """How quantized GEMM layers execute; see the module docstring.

    Subclasses set ``name`` and override the ``compile_*`` hooks.  A
    hook returning ``None`` keeps the layer on the built-in float
    kernels (the universal fallback -- e.g. weight-only exports have no
    activation codes for a code-domain backend to execute on).
    """

    name: str = "?"

    def compile_linear(self, layer) -> Optional[Callable]:
        """Executor for a :class:`~repro.runtime.modules.FrozenLinear`."""
        return None

    def compile_conv2d(self, layer) -> Optional[Callable]:
        """Executor for a :class:`~repro.runtime.modules.FrozenConv2d`."""
        return None

    def compile_plan(self, model) -> Optional[object]:
        """Whole-forward plan for a :class:`~repro.runtime.engine.FrozenModel`.

        The wide end of the contract: instead of (or in addition to)
        per-layer executors, a backend may compile the entire frozen
        tree into one plan object exposing ``run(x) -> logits``;
        :meth:`FrozenModel.forward` then dispatches to the plan and the
        module tree is bypassed entirely.  ``None`` (the default) keeps
        per-layer dispatch.  Recompiled alongside the per-layer
        executors on every ``astype``/``set_backend``, since plans bake
        in dtype-specific kernels and fusion decisions.
        """
        return None


def register_backend(name: str) -> Callable:
    """Class decorator registering an execution backend under ``name``."""

    def decorator(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
        cls.name = name
        _BACKENDS[name] = cls
        return cls

    return decorator


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a registered backend by name.

    ``options`` are forwarded to the backend constructor (e.g.
    ``get_backend("qgemm", mode="bincount")``).
    """
    if name not in _BACKENDS and name in _LAZY_BACKENDS:
        import_module(_LAZY_BACKENDS[name])  # registers itself on import
    if name not in _BACKENDS:
        raise KeyError(
            f"unknown execution backend {name!r}; "
            f"registered: {sorted(set(_BACKENDS) | set(_LAZY_BACKENDS))}"
        )
    return _BACKENDS[name](**options)


def backend_names() -> list:
    """All resolvable backend names (registered plus lazy)."""
    return sorted(set(_BACKENDS) | set(_LAZY_BACKENDS))


@register_backend("float")
class FloatBackend(ExecutionBackend):
    """The default decode-then-BLAS path: no layer overrides at all."""
