"""Layer-wise mixed-precision escalation (Sec. IV-C "Mixed Precision").

The paper's procedure: quantize everything at 4 bits and fine-tune;
while the quantized accuracy is below the preset threshold of the
original model, escalate the layer with the greatest quantization MSE
to 8-bit int and fine-tune again.  The result is the ANT4-8
configuration whose 4-bit tensor ratios appear in Fig. 13 (top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.quant.framework import ModelQuantizer


@dataclass
class PrecisionDecision:
    """Record of one escalation round."""

    escalated_layer: Optional[str]
    accuracy: float
    accuracy_loss: float
    layers_at_8bit: int


@dataclass
class MixedPrecisionResult:
    """Final state of the mixed-precision search."""

    accuracy: float
    accuracy_loss: float
    decisions: List[PrecisionDecision] = field(default_factory=list)
    #: layer names escalated to 8 bits, in escalation order
    escalated: List[str] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.decisions)


class MixedPrecisionSearch:
    """Escalate highest-MSE layers to 8 bits until accuracy recovers.

    Parameters
    ----------
    quantizer:
        A calibrated-and-applied :class:`ModelQuantizer`.
    evaluate_fn:
        Callable returning current quantized accuracy in [0, 1].
    finetune_fn:
        Optional callable run after every escalation (the paper
        fine-tunes between rounds); may be ``None`` for PTQ-style search.
    baseline_accuracy:
        The original full-precision accuracy.
    threshold:
        Maximum tolerated accuracy loss (paper: <0.1% CNN, <1%
        Transformer).
    """

    def __init__(
        self,
        quantizer: ModelQuantizer,
        evaluate_fn: Callable[[], float],
        baseline_accuracy: float,
        threshold: float = 0.01,
        finetune_fn: Optional[Callable[[], None]] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        self.quantizer = quantizer
        self.evaluate_fn = evaluate_fn
        self.finetune_fn = finetune_fn
        self.baseline_accuracy = baseline_accuracy
        self.threshold = threshold
        self.max_rounds = max_rounds if max_rounds is not None else len(quantizer.layers)

    def run(self) -> MixedPrecisionResult:
        decisions: List[PrecisionDecision] = []
        escalated: List[str] = []

        if self.finetune_fn is not None:
            self.finetune_fn()
        accuracy = self.evaluate_fn()
        loss = self.baseline_accuracy - accuracy
        decisions.append(PrecisionDecision(None, accuracy, loss, 0))

        # Escalation order: layers sorted by descending calibration MSE,
        # recomputed each round as the paper prescribes.
        while loss > self.threshold and len(escalated) < self.max_rounds:
            candidates = {
                name: mse
                for name, mse in self.quantizer.layer_mse().items()
                if name not in escalated
            }
            if not candidates:
                break
            worst = max(candidates, key=candidates.get)
            self.quantizer.escalate_layer(worst, bits=8)
            escalated.append(worst)
            if self.finetune_fn is not None:
                self.finetune_fn()
            accuracy = self.evaluate_fn()
            loss = self.baseline_accuracy - accuracy
            decisions.append(
                PrecisionDecision(worst, accuracy, loss, len(escalated))
            )

        return MixedPrecisionResult(
            accuracy=accuracy,
            accuracy_loss=loss,
            decisions=decisions,
            escalated=escalated,
        )
