"""Layer-wise mixed-precision escalation (Sec. IV-C "Mixed Precision").

The paper's procedure: quantize everything at 4 bits and fine-tune;
while the quantized accuracy is below the preset threshold of the
original model, escalate the most quantization-sensitive layer (the
one whose quantization perturbs the model output the most on the
calibration batch) to 8-bit int and fine-tune again.  The result is
the ANT4-8 configuration whose 4-bit tensor ratios appear in Fig. 13
(top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.quant.framework import ModelQuantizer


@dataclass
class PrecisionDecision:
    """Record of one escalation round."""

    escalated_layer: Optional[str]
    accuracy: float
    accuracy_loss: float
    layers_at_8bit: int


@dataclass
class MixedPrecisionResult:
    """Final state of the mixed-precision search."""

    accuracy: float
    accuracy_loss: float
    decisions: List[PrecisionDecision] = field(default_factory=list)
    #: layer names escalated to 8 bits, in escalation order
    escalated: List[str] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.decisions)


class MixedPrecisionSearch:
    """Escalate the most sensitive layers to 8 bits until accuracy recovers.

    Parameters
    ----------
    quantizer:
        A calibrated-and-applied :class:`ModelQuantizer`.
    evaluate_fn:
        Callable returning current quantized accuracy in [0, 1].
    finetune_fn:
        Optional callable run after every escalation (the paper
        fine-tunes between rounds); may be ``None`` for PTQ-style search.
    baseline_accuracy:
        The original full-precision accuracy.
    threshold:
        Maximum tolerated accuracy loss (paper: <0.1% CNN, <1%
        Transformer).
    """

    def __init__(
        self,
        quantizer: ModelQuantizer,
        evaluate_fn: Callable[[], float],
        baseline_accuracy: float,
        threshold: float = 0.01,
        finetune_fn: Optional[Callable[[], None]] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        self.quantizer = quantizer
        self.evaluate_fn = evaluate_fn
        self.finetune_fn = finetune_fn
        self.baseline_accuracy = baseline_accuracy
        self.threshold = threshold
        self.max_rounds = max_rounds if max_rounds is not None else len(quantizer.layers)

    def run(self) -> MixedPrecisionResult:
        """Escalate until the threshold is met, keeping the best-seen state.

        Escalating a layer (plus fine-tuning) is not guaranteed to help,
        so the search tracks the best configuration observed across
        rounds.  If the final round ends worse than an earlier one, the
        model parameters and the quantizers of the extra escalations are
        reverted so the returned result matches the model's state.
        """
        decisions: List[PrecisionDecision] = []
        escalated: List[str] = []
        model = self.quantizer.model

        if self.finetune_fn is not None:
            self.finetune_fn()
        accuracy = self.evaluate_fn()
        loss = self.baseline_accuracy - accuracy
        decisions.append(PrecisionDecision(None, accuracy, loss, 0))

        best_loss, best_accuracy = loss, accuracy
        best_rounds = 0
        best_model_state = model.state_dict()
        pre_escalation_states = {}

        # Escalation order: most quantization-sensitive layer first
        # (largest end-to-end output error on the calibration batch),
        # recomputed each round as the paper prescribes.
        while loss > self.threshold and len(escalated) < self.max_rounds:
            candidates = {
                name: score
                for name, score in self.quantizer.layer_sensitivity().items()
                if name not in escalated
            }
            if not candidates:
                break
            worst = max(candidates, key=candidates.get)
            pre_escalation_states[worst] = self.quantizer.layer_state(worst)
            self.quantizer.escalate_layer(worst, bits=8)
            escalated.append(worst)
            if self.finetune_fn is not None:
                self.finetune_fn()
            accuracy = self.evaluate_fn()
            loss = self.baseline_accuracy - accuracy
            decisions.append(
                PrecisionDecision(worst, accuracy, loss, len(escalated))
            )
            if loss < best_loss:
                best_loss, best_accuracy = loss, accuracy
                best_rounds = len(escalated)
                best_model_state = model.state_dict()

        if loss > best_loss:
            model.load_state_dict(best_model_state)
            for name in escalated[best_rounds:]:
                self.quantizer.restore_layer_state(name, pre_escalation_states[name])
            escalated = escalated[:best_rounds]
            accuracy, loss = best_accuracy, best_loss

        return MixedPrecisionResult(
            accuracy=accuracy,
            accuracy_loss=loss,
            decisions=decisions,
            escalated=escalated,
        )
