"""Quantization-aware training with the straight-through estimator.

The paper fine-tunes quantized models using STE [Bengio et al. 2013]
with PACT-style clipping [Choi et al. 2018] (Sec. VII-A): in the
forward pass tensors go through the fake-quantizer; in the backward
pass the gradient flows unchanged wherever the value landed inside the
clipping range and is zeroed where it was clipped.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.autograd import Tensor, cross_entropy
from repro.nn.layers import set_dropout_seed
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.quant.quantizer import Granularity, TensorQuantizer


class FakeQuantOp:
    """Graph-preserving fake-quantize closure around a TensorQuantizer.

    The forward pass runs the quantizer's codec-backed kernel (one
    searchsorted plus a gather per tensor); the STE mask below is the
    only extra per-step work.
    """

    def __init__(self, quantizer: TensorQuantizer) -> None:
        self.quantizer = quantizer

    def _clip_limit(self, ndim: int):
        """Clipping threshold(s), broadcastable against the input tensor."""
        quantizer = self.quantizer
        top = quantizer.dtype.max_value
        if quantizer.granularity is Granularity.PER_CHANNEL:
            shape = [1] * ndim
            shape[quantizer.channel_axis] = -1
            return quantizer.scales.reshape(shape) * top
        return quantizer.choice.scale * top

    def _pass_mask(self, data: np.ndarray) -> np.ndarray:
        """1.0 where STE passes the gradient, 0.0 where the value clipped."""
        limit = self._clip_limit(data.ndim)
        if self.quantizer.dtype.signed:
            return (np.abs(data) <= limit).astype(np.float64)
        return ((data >= 0.0) & (data <= limit)).astype(np.float64)

    def __call__(self, x: Tensor) -> Tensor:
        quantized = self.quantizer(x.data)
        mask = self._pass_mask(x.data)

        def make(out: Tensor):
            def backward():
                if x.requires_grad:
                    x._accumulate(out.grad * mask)

            return backward

        return Tensor._make(quantized, (x,), make)


def attach_fake_quant(
    model: Module,
    weight_quantizers: Dict[str, TensorQuantizer],
    input_quantizers: Dict[str, TensorQuantizer],
) -> None:
    """Install fake-quant hooks on quantizable layers by module name."""
    for name, module in model.named_modules():
        if name in weight_quantizers:
            object.__setattr__(module, "weight_fake_quant", FakeQuantOp(weight_quantizers[name]))
        if name in input_quantizers:
            object.__setattr__(module, "input_fake_quant", FakeQuantOp(input_quantizers[name]))


def detach_fake_quant(model: Module) -> None:
    """Remove any fake-quant hooks from the model."""
    for _, module in model.named_modules():
        if hasattr(module, "weight_fake_quant"):
            object.__setattr__(module, "weight_fake_quant", None)
        if hasattr(module, "input_fake_quant"):
            object.__setattr__(module, "input_fake_quant", None)


#: probe the keep-best checkpoint metric every this many steps
KEEP_BEST_PROBE_EVERY = 10
#: cap on the samples the keep-best probe evaluates
KEEP_BEST_PROBE_SAMPLES = 512


def _probe_loss(model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> float:
    """Mean cross-entropy over a fixed data slice, in eval mode."""
    from repro.nn.autograd import no_grad

    model.eval()
    total = 0.0
    with no_grad():
        for start in range(0, x.shape[0], batch_size):
            batch_x, batch_y = x[start: start + batch_size], y[start: start + batch_size]
            logits = model(batch_x) if batch_x.dtype.kind in "iu" else model(Tensor(batch_x))
            total += cross_entropy(logits, batch_y).item() * batch_x.shape[0]
    model.train()
    return total / x.shape[0]


def finetune(
    model: Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    steps: int = 50,
    batch_size: int = 64,
    lr: float = 5e-4,
    seed: int = 0,
    loss_hook: Optional[Callable[[int, float], None]] = None,
    keep_best: bool = True,
) -> float:
    """Fine-tune a (fake-quantized) model.

    Returns the training loss describing the parameters the model is
    left with: the best probe loss when ``keep_best`` is on (the
    restored checkpoint), the final batch loss otherwise.

    Uses the same recipe for every format under comparison, matching the
    paper's fair-comparison protocol (identical hyper-parameters for all
    types, Sec. VII-A).  The dropout-mask RNG is reseeded too, so every
    fine-tuning run sees identical stochasticity regardless of what ran
    before it — otherwise format comparisons would depend on combo
    ordering.

    With ``keep_best`` (the default) the training-set loss is probed on a
    fixed slice every few steps and the best-seen parameters are restored
    at the end, so fine-tuning never returns a state worse than its
    starting point: QAT on an already-converged model can diverge instead
    of recovering, and a comparison harness must not report that
    divergence as the format's accuracy.
    """
    set_dropout_seed(seed)
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    model.train()
    n = x_train.shape[0]
    probe_x = x_train[:KEEP_BEST_PROBE_SAMPLES]
    probe_y = y_train[:KEEP_BEST_PROBE_SAMPLES]
    best_loss = _probe_loss(model, probe_x, probe_y) if keep_best else float("inf")
    best_state = model.state_dict() if keep_best else None
    loss_value = float("nan")
    for step in range(steps):
        idx = rng.choice(n, size=min(batch_size, n), replace=False)
        batch_x, batch_y = x_train[idx], y_train[idx]
        optimizer.zero_grad()
        logits = model(batch_x) if batch_x.dtype.kind in "iu" else model(Tensor(batch_x))
        loss = cross_entropy(logits, batch_y)
        loss.backward()
        optimizer.step()
        loss_value = loss.item()
        if loss_hook is not None:
            loss_hook(step, loss_value)
        if keep_best and ((step + 1) % KEEP_BEST_PROBE_EVERY == 0 or step == steps - 1):
            probe = _probe_loss(model, probe_x, probe_y)
            if probe < best_loss:
                best_loss = probe
                best_state = model.state_dict()
    if keep_best:
        model.load_state_dict(best_state)
    model.eval()
    return best_loss if keep_best else loss_value
