"""Stateful per-tensor quantizer with per-tensor / per-channel scales.

Follows the paper's memory-aligned granularity rules (Sec. II-B):
weights use **per-channel** symmetric scales (one per output channel,
free in hardware because it folds into the output scale), activations
use **per-tensor** scales, and post-ReLU activations use **unsigned**
types.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

import numpy as np

from repro.dtypes.base import NumericType
from repro.quant.functional import quantize_dequantize
from repro.quant.scale_search import search_scale, search_scale_per_channel
from repro.quant.selection import TypeChoice, select_type

#: default cap on calibration elements per MSE sweep; keeps Algorithm 2
#: cheap on large activation tensors while the scale stays anchored to
#: the full tensor's peak (see :func:`repro.quant.scale_search.subsample_tensor`).
DEFAULT_MAX_CALIBRATION_SAMPLES = 1 << 16


class Granularity(enum.Enum):
    """Scale-factor granularity."""

    PER_TENSOR = "per_tensor"
    PER_CHANNEL = "per_channel"


class TensorQuantizer:
    """Quantizer bound to one tensor role (a weight or an activation).

    Lifecycle: construct with candidate types -> :meth:`calibrate` on
    real data (runs Algorithm 2) -> :meth:`__call__` to fake-quantize.

    Parameters
    ----------
    candidates:
        Numeric types to choose from (Algorithm 2 candidate list).
    granularity:
        Per-tensor or per-channel scaling.
    channel_axis:
        Output-channel axis for per-channel mode.
    max_calibration_samples:
        Cap on the elements used per MSE sweep during calibration
        (``None`` sweeps the full tensor).
    """

    def __init__(
        self,
        candidates: Iterable[NumericType],
        granularity: Granularity = Granularity.PER_TENSOR,
        channel_axis: int = 0,
        max_calibration_samples: Optional[int] = DEFAULT_MAX_CALIBRATION_SAMPLES,
    ) -> None:
        self.candidates = list(candidates)
        if not self.candidates:
            raise ValueError("candidates must not be empty")
        self.granularity = granularity
        self.channel_axis = int(channel_axis)
        self.max_calibration_samples = max_calibration_samples
        self.choice: Optional[TypeChoice] = None
        self.scales: Optional[np.ndarray] = None  # per-channel scales

    # ------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        return self.choice is not None

    @property
    def dtype(self) -> NumericType:
        self._require_calibrated()
        return self.choice.dtype

    @property
    def bits(self) -> int:
        self._require_calibrated()
        return self.choice.dtype.bits

    def _require_calibrated(self) -> None:
        if self.choice is None:
            raise RuntimeError("quantizer has not been calibrated")

    # ------------------------------------------------------------------
    def calibrate(self, x: np.ndarray) -> TypeChoice:
        """Select the type and scale(s) from a calibration tensor.

        For per-channel granularity the type is selected once on the
        whole tensor (tensors have a single fixed primitive type in ANT)
        and an MSE-optimal scale is then searched per channel.
        """
        x = np.asarray(x, dtype=np.float64)
        self.choice = select_type(
            x, self.candidates, max_samples=self.max_calibration_samples
        )
        if self.granularity is Granularity.PER_CHANNEL:
            self.scales, _ = search_scale_per_channel(
                x,
                self.choice.dtype,
                axis=self.channel_axis,
                max_samples=self.max_calibration_samples,
            )
        else:
            self.scales = None
        return self.choice

    def set_dtype(self, dtype: NumericType, x: np.ndarray) -> None:
        """Force a specific type (used by mixed-precision escalation).

        Re-searches the scale(s) for the new type on ``x``.
        """
        x = np.asarray(x, dtype=np.float64)
        result = search_scale(x, dtype, max_samples=self.max_calibration_samples)
        self.choice = TypeChoice(
            dtype=dtype,
            scale=result.scale,
            mse=result.mse,
            per_type_mse={dtype.name: result.mse},
        )
        if self.granularity is Granularity.PER_CHANNEL:
            self.scales, _ = search_scale_per_channel(
                x,
                dtype,
                axis=self.channel_axis,
                max_samples=self.max_calibration_samples,
            )

    def get_state(self) -> tuple:
        """Snapshot of the calibrated configuration (choice + scales).

        ``set_dtype``/``calibrate`` replace rather than mutate both
        fields, so holding references is sufficient for a later
        :meth:`set_state` revert (used by mixed-precision search to
        de-escalate back to the best-seen configuration).
        """
        return (self.choice, self.scales)

    def set_state(self, state: tuple) -> None:
        """Restore a configuration captured by :meth:`get_state`."""
        self.choice, self.scales = state

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantize ``x`` with the calibrated type and scales."""
        self._require_calibrated()
        if self.granularity is Granularity.PER_CHANNEL:
            return quantize_dequantize(
                x, self.choice.dtype, self.scales, axis=self.channel_axis
            )
        return quantize_dequantize(x, self.choice.dtype, self.choice.scale)

    def observed_mse(self, x: np.ndarray) -> float:
        """MSE of quantizing ``x`` with the current configuration."""
        q = self(x)
        err = np.asarray(x, dtype=np.float64) - q
        return float(np.mean(err * err))

    def __repr__(self) -> str:
        state = self.choice.name if self.choice else "uncalibrated"
        return f"TensorQuantizer({state}, {self.granularity.value})"
