"""Per-tensor primitive-type selection (Algorithm 2 of the paper).

Given a tensor and a candidate list of numeric types, pick the type
whose MSE-optimal quantization is lowest.  This is the inter-tensor
adaptivity of ANT: uniform-like tensors choose ``int``, Gaussian-like
tensors choose ``flint``, long-tailed (Laplace-like) tensors choose
``PoT`` or ``float`` (Sec. IV-B, Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.dtypes.base import NumericType
from repro.quant.functional import tensor_peak
from repro.quant.scale_search import (
    ScaleSearchResult,
    ensure_finite,
    search_scale_prepared,
    subsample_tensor,
)


@dataclass(frozen=True)
class TypeChoice:
    """Selected type for one tensor, with its scale and achieved MSE."""

    dtype: NumericType
    scale: float
    mse: float
    #: MSE achieved by every candidate, keyed by type name (for Fig. 14).
    per_type_mse: Dict[str, float]

    @property
    def name(self) -> str:
        return self.dtype.name

    @property
    def kind(self) -> str:
        return self.dtype.kind

    @property
    def bits(self) -> int:
        return self.dtype.bits


def select_type(
    x: np.ndarray,
    candidates: Iterable[NumericType],
    num_coarse: int = 24,
    num_fine: int = 12,
    min_ratio: float = 0.01,
    max_samples: Optional[int] = None,
) -> TypeChoice:
    """Algorithm 2: choose the candidate with minimum quantization MSE.

    Ties break in candidate-list order, so putting the cheapest hardware
    type first makes it win exact ties (the paper's candidate lists are
    ordered int, PoT, flint).

    The per-tensor work shared by all candidates -- flattening, the
    finite check, the signed/unsigned peak magnitudes, and the optional
    deterministic subsample bounded by ``max_samples`` -- is computed
    once, so every candidate's batched sweep scores the exact same
    elements.
    """
    x = np.asarray(x, dtype=np.float64)
    candidates = list(candidates)
    if not candidates:
        raise ValueError("candidate list must not be empty")
    if x.size == 0:
        raise ValueError("cannot select a type for an empty tensor")
    ensure_finite(x)

    peak_abs = tensor_peak(x, signed=True)
    peak_pos = tensor_peak(x, signed=False)
    flat = subsample_tensor(x, max_samples)

    best_dtype = None
    best_result: ScaleSearchResult = None
    per_type: Dict[str, float] = {}
    for dtype in candidates:
        peak = peak_abs if dtype.signed else peak_pos
        base = peak / dtype.max_value
        result = search_scale_prepared(
            flat, dtype, base, num_coarse, num_fine, min_ratio=min_ratio
        )
        per_type[dtype.name] = result.mse
        if best_result is None or result.mse < best_result.mse:
            best_dtype = dtype
            best_result = result

    return TypeChoice(
        dtype=best_dtype,
        scale=best_result.scale,
        mse=best_result.mse,
        per_type_mse=per_type,
    )


def selection_histogram(choices: Iterable[TypeChoice]) -> Dict[str, int]:
    """Count how many tensors picked each primitive kind (Fig. 13 top)."""
    counts: Dict[str, int] = {}
    for choice in choices:
        counts[choice.kind] = counts.get(choice.kind, 0) + 1
    return counts
