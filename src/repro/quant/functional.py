"""Stateless quantization kernels (Equation (2) of the paper).

The simulated quantize-dequantize of a value ``w`` with scale ``s`` is

    w_hat = s * Dequant[Clamp(Quant(w / s), min, max)]

For the grid-based types in :mod:`repro.dtypes`, ``Quant``, ``Clamp``
and ``Dequant`` collapse into nearest-grid-value rounding with
saturation, which :meth:`repro.dtypes.NumericType.quantize` provides.
This module adds the tensor-level conveniences: per-channel scaling and
broadcast-safe application.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.dtypes.base import NumericType

ArrayLike = Union[np.ndarray, Sequence[float]]


def quantize_dequantize(
    x: ArrayLike,
    dtype: NumericType,
    scale: Union[float, np.ndarray],
    axis: Optional[int] = None,
) -> np.ndarray:
    """Simulated quantization of ``x`` under ``dtype``.

    Parameters
    ----------
    x:
        Input tensor.
    dtype:
        Numeric type to simulate.
    scale:
        Scalar scale (per-tensor) or a 1-D array of per-channel scales.
    axis:
        Channel axis when ``scale`` is an array.  Required in that case.
    """
    x = np.asarray(x, dtype=np.float64)
    if np.isscalar(scale) or np.ndim(scale) == 0:
        return dtype.quantize(x, float(scale))
    scale = np.asarray(scale, dtype=np.float64)
    if axis is None:
        raise ValueError("axis is required for per-channel scales")
    if scale.ndim != 1 or scale.shape[0] != x.shape[axis]:
        raise ValueError(
            f"scale shape {scale.shape} does not match axis {axis} of {x.shape}"
        )
    shape = [1] * x.ndim
    shape[axis] = -1
    # The codec kernel broadcasts the scale directly: one searchsorted
    # plus one gather, no separate normalise/rescale passes.
    return dtype.quantize(x, scale.reshape(shape))


def channel_scales(
    x: ArrayLike,
    dtype: NumericType,
    axis: int,
    clip_ratio: float = 1.0,
) -> np.ndarray:
    """Max-based per-channel scales along ``axis``.

    Each channel's clipping range is ``clip_ratio * max|x_channel|`` and
    the scale maps that range onto the top of the type's grid.  Used as
    the starting point for the MSE search in
    :mod:`repro.quant.scale_search`.
    """
    x = np.asarray(x, dtype=np.float64)
    if not 0 < clip_ratio <= 1.0 + 1e-12:
        raise ValueError(f"clip_ratio must be in (0, 1], got {clip_ratio}")
    reduce_axes = tuple(i for i in range(x.ndim) if i != axis)
    if dtype.signed:
        peaks = np.max(np.abs(x), axis=reduce_axes)
    else:
        peaks = np.max(np.clip(x, 0.0, None), axis=reduce_axes)
    peaks = np.maximum(peaks, np.finfo(np.float64).tiny)
    return clip_ratio * peaks / dtype.max_value


def tensor_peak(x: ArrayLike, signed: bool) -> float:
    """Clipping-peak magnitude of a tensor under the library's convention.

    Signed types clip at the absolute peak, unsigned types at the
    positive peak; the result is floored at the smallest normal double
    so downstream scales stay strictly positive.  Single definition
    shared by :func:`tensor_scale` and the type-selection fast path.
    """
    x = np.asarray(x, dtype=np.float64)
    if signed:
        peak = float(np.max(np.abs(x), initial=0.0))
    else:
        peak = float(np.max(np.clip(x, 0.0, None), initial=0.0))
    return max(peak, np.finfo(np.float64).tiny)


def tensor_scale(
    x: ArrayLike,
    dtype: NumericType,
    clip_ratio: float = 1.0,
) -> float:
    """Max-based per-tensor scale (see :func:`channel_scales`)."""
    if not 0 < clip_ratio <= 1.0 + 1e-12:
        raise ValueError(f"clip_ratio must be in (0, 1], got {clip_ratio}")
    return clip_ratio * tensor_peak(x, dtype.signed) / dtype.max_value
