"""MSE-minimising scale-factor (clipping range) search.

This is the ``ArgminMSE`` inner step of Algorithm 2: for a given numeric
type, sweep the clipping threshold and keep the scale with the lowest
mean squared quantization error [Banner et al. 2019; Choukroun et al.
2019].  A coarse geometric sweep is refined with a local linear sweep
around the best coarse point -- cheap, derivative-free, and robust for
the highly non-convex MSE landscape of non-uniform grids such as PoT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dtypes.base import NumericType
from repro.quant.functional import quantize_dequantize, tensor_scale


def mse_for_scale(
    x: np.ndarray,
    dtype: NumericType,
    scale: float,
    axis: Optional[int] = None,
) -> float:
    """Mean squared error of quantizing ``x`` at the given scale."""
    q = quantize_dequantize(x, dtype, scale, axis=axis)
    err = np.asarray(x, dtype=np.float64) - q
    return float(np.mean(err * err))


@dataclass(frozen=True)
class ScaleSearchResult:
    """Outcome of a scale search for one tensor/type pair."""

    scale: float
    mse: float
    clip_ratio: float


def search_scale(
    x: np.ndarray,
    dtype: NumericType,
    num_coarse: int = 24,
    num_fine: int = 12,
    min_ratio: float = 0.01,
) -> ScaleSearchResult:
    """Find the per-tensor scale minimising quantization MSE.

    Parameters
    ----------
    x:
        Calibration tensor.
    dtype:
        Target numeric type.
    num_coarse:
        Points in the geometric coarse sweep of clip ratios
        ``[min_ratio, 1.0]``.
    num_fine:
        Points in the linear refinement around the best coarse ratio.
    min_ratio:
        Smallest clip ratio considered (as a fraction of the tensor's
        peak magnitude).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot search scale of an empty tensor")
    base = tensor_scale(x, dtype, clip_ratio=1.0)

    ratios = np.geomspace(min_ratio, 1.0, num_coarse)
    best_ratio, best_mse = _sweep(x, dtype, base, ratios)

    if num_fine > 0:
        lo = max(min_ratio, best_ratio * 0.7)
        hi = min(1.0, best_ratio * 1.4)
        fine = np.linspace(lo, hi, num_fine)
        fine_ratio, fine_mse = _sweep(x, dtype, base, fine)
        if fine_mse < best_mse:
            best_ratio, best_mse = fine_ratio, fine_mse

    return ScaleSearchResult(scale=base * best_ratio, mse=best_mse, clip_ratio=best_ratio)


def _sweep(
    x: np.ndarray,
    dtype: NumericType,
    base_scale: float,
    ratios: np.ndarray,
) -> tuple:
    """Evaluate MSE at each clip ratio; return (best_ratio, best_mse)."""
    best_ratio = float(ratios[-1])
    best_mse = np.inf
    for ratio in ratios:
        mse = mse_for_scale(x, dtype, base_scale * float(ratio))
        if mse < best_mse:
            best_mse = mse
            best_ratio = float(ratio)
    return best_ratio, best_mse
