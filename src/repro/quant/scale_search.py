"""MSE-minimising scale-factor (clipping range) search.

This is the ``ArgminMSE`` inner step of Algorithm 2: for a given numeric
type, sweep the clipping threshold and keep the scale with the lowest
mean squared quantization error [Banner et al. 2019; Choukroun et al.
2019].  A coarse geometric sweep is refined with a local linear sweep
around the best coarse point -- cheap, derivative-free, and robust for
the highly non-convex MSE landscape of non-uniform grids such as PoT.

All sweeps are evaluated in one broadcasted pass over the codec's
midpoint tables (a ``(ratios, elements)`` searchsorted + gather),
optionally on a deterministic subsample of the calibration tensor, so
the cost per (tensor, type) pair is a handful of numpy kernels instead
of ~36 Python-level quantize calls.  :func:`search_scale_per_channel`
extends the same broadcasted pass over all channels of a tensor at
once.  The pre-codec sequential implementation survives as
:func:`search_scale_reference` for cross-checks and perf baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dtypes.base import NumericType
from repro.quant.functional import channel_scales, quantize_dequantize, tensor_scale

#: soft cap on elements materialised per broadcasted sweep chunk.
_CHUNK_ELEMENTS = 1 << 22


def mse_for_scale(
    x: np.ndarray,
    dtype: NumericType,
    scale: float,
    axis: Optional[int] = None,
) -> float:
    """Mean squared error of quantizing ``x`` at the given scale."""
    q = quantize_dequantize(x, dtype, scale, axis=axis)
    err = np.asarray(x, dtype=np.float64) - q
    return float(np.mean(err * err))


@dataclass(frozen=True)
class ScaleSearchResult:
    """Outcome of a scale search for one tensor/type pair."""

    scale: float
    mse: float
    clip_ratio: float


def subsample_tensor(
    x: np.ndarray, max_samples: Optional[int], seed: int = 0
) -> np.ndarray:
    """Deterministic flat subsample of a calibration tensor.

    Returns the flattened tensor itself when it already fits in
    ``max_samples`` (or when ``max_samples`` is ``None``).  Sampling is
    without replacement from a fixed-seed generator so repeated searches
    see the same subsample and MSE comparisons across candidate types
    stay consistent.
    """
    flat = np.asarray(x, dtype=np.float64).ravel()
    if max_samples is None or flat.size <= max_samples:
        return flat
    rng = np.random.default_rng(seed)
    idx = rng.choice(flat.size, size=int(max_samples), replace=False)
    return flat[idx]


def ensure_finite(x: np.ndarray) -> None:
    """Reject calibration tensors containing NaN or inf."""
    if not np.all(np.isfinite(x)):
        raise ValueError("calibration tensor contains NaN or inf")


def _sweep_mse(flat: np.ndarray, dtype: NumericType, scales: np.ndarray) -> np.ndarray:
    """MSE of quantizing ``flat`` at each scale, one broadcasted pass."""
    codec = dtype.codec
    n = flat.size
    out = np.empty(scales.size, dtype=np.float64)
    chunk = max(1, _CHUNK_ELEMENTS // max(n, 1))
    for start in range(0, scales.size, chunk):
        s = scales[start : start + chunk, None]
        q = codec.grid[codec.nearest_indices(flat[None, :] / s)] * s
        err = flat[None, :] - q
        out[start : start + s.shape[0]] = np.mean(err * err, axis=1)
    return out


def search_scale(
    x: np.ndarray,
    dtype: NumericType,
    num_coarse: int = 24,
    num_fine: int = 12,
    min_ratio: float = 0.01,
    max_samples: Optional[int] = None,
) -> ScaleSearchResult:
    """Find the per-tensor scale minimising quantization MSE.

    Parameters
    ----------
    x:
        Calibration tensor.
    dtype:
        Target numeric type.
    num_coarse:
        Points in the geometric coarse sweep of clip ratios
        ``[min_ratio, 1.0]``.
    num_fine:
        Points in the linear refinement around the best coarse ratio.
    min_ratio:
        Smallest clip ratio considered (as a fraction of the tensor's
        peak magnitude).
    max_samples:
        Optional cap on the elements used to estimate the MSE.  The
        peak (and hence the candidate scales) is always taken from the
        full tensor; only the error estimate is subsampled.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot search scale of an empty tensor")
    ensure_finite(x)
    base = tensor_scale(x, dtype, clip_ratio=1.0)
    flat = subsample_tensor(x, max_samples)
    return search_scale_prepared(flat, dtype, base, num_coarse, num_fine, min_ratio)


def search_scale_prepared(
    flat: np.ndarray,
    dtype: NumericType,
    base_scale: float,
    num_coarse: int = 24,
    num_fine: int = 12,
    min_ratio: float = 0.01,
) -> ScaleSearchResult:
    """Core sweep on a pre-flattened (and finite-checked, possibly
    subsampled) tensor with a caller-supplied base scale.

    Public entry point for callers such as :func:`repro.quant.selection.
    select_type` that precompute the shared per-tensor work once and
    run the sweep for several candidate types.
    """
    ratios = np.geomspace(min_ratio, 1.0, num_coarse)
    mses = _sweep_mse(flat, dtype, base_scale * ratios)
    best = int(np.argmin(mses))
    best_ratio, best_mse = float(ratios[best]), float(mses[best])

    if num_fine > 0:
        lo = max(min_ratio, best_ratio * 0.7)
        hi = min(1.0, best_ratio * 1.4)
        fine = np.linspace(lo, hi, num_fine)
        fine_mses = _sweep_mse(flat, dtype, base_scale * fine)
        k = int(np.argmin(fine_mses))
        if fine_mses[k] < best_mse:
            best_ratio, best_mse = float(fine[k]), float(fine_mses[k])

    return ScaleSearchResult(
        scale=base_scale * best_ratio, mse=best_mse, clip_ratio=best_ratio
    )


# ----------------------------------------------------------------------
# Batched per-channel search
# ----------------------------------------------------------------------
def _sweep_mse_channels(
    mat: np.ndarray, dtype: NumericType, scales: np.ndarray
) -> np.ndarray:
    """Per-channel MSE matrix: ``mat`` is ``(C, M)``, ``scales`` ``(C, R)``.

    Returns ``(C, R)`` MSEs from chunked ``(C, R, M)`` broadcasted
    passes, so no Python loop runs per channel or per ratio.
    """
    n_channels, n_elem = mat.shape
    n_ratios = scales.shape[1]
    out = np.empty((n_channels, n_ratios), dtype=np.float64)
    chunk = max(1, _CHUNK_ELEMENTS // max(n_ratios * n_elem, 1))
    codec = dtype.codec
    for start in range(0, n_channels, chunk):
        x = mat[start : start + chunk, None, :]
        s = scales[start : start + chunk, :, None]
        q = codec.grid[codec.nearest_indices(x / s)] * s
        err = x - q
        out[start : start + x.shape[0]] = np.mean(err * err, axis=2)
    return out


def search_scale_per_channel(
    x: np.ndarray,
    dtype: NumericType,
    axis: int = 0,
    num_coarse: int = 24,
    num_fine: int = 12,
    min_ratio: float = 0.01,
    max_samples: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel MSE-optimal scales in one batched sweep.

    Equivalent to running :func:`search_scale` independently on every
    channel slice along ``axis`` (same ratio grids, same tie rules),
    but evaluated as ``(channels, ratios, elements)`` broadcasted
    passes.  Returns ``(scales, mses)`` arrays of length
    ``x.shape[axis]``.  ``max_samples`` caps the per-channel element
    count used for the MSE estimate.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot search scales of an empty tensor")
    ensure_finite(x)
    mat = np.moveaxis(x, axis, 0).reshape(x.shape[axis], -1)
    base = channel_scales(x, dtype, axis, clip_ratio=1.0)

    if max_samples is not None and mat.shape[1] > max_samples:
        rng = np.random.default_rng(0)
        cols = rng.choice(mat.shape[1], size=int(max_samples), replace=False)
        mat = mat[:, cols]

    ratios = np.geomspace(min_ratio, 1.0, num_coarse)
    coarse = _sweep_mse_channels(mat, dtype, base[:, None] * ratios[None, :])
    best = np.argmin(coarse, axis=1)
    rows = np.arange(mat.shape[0])
    best_ratio = ratios[best]
    best_mse = coarse[rows, best]

    if num_fine > 0:
        lo = np.maximum(min_ratio, best_ratio * 0.7)
        hi = np.minimum(1.0, best_ratio * 1.4)
        t = np.linspace(0.0, 1.0, num_fine)
        fine = lo[:, None] + (hi - lo)[:, None] * t[None, :]
        fine_mses = _sweep_mse_channels(mat, dtype, base[:, None] * fine)
        k = np.argmin(fine_mses, axis=1)
        better = fine_mses[rows, k] < best_mse
        best_ratio = np.where(better, fine[rows, k], best_ratio)
        best_mse = np.where(better, fine_mses[rows, k], best_mse)

    return base * best_ratio, best_mse


# ----------------------------------------------------------------------
# Pre-codec reference path
# ----------------------------------------------------------------------
def search_scale_reference(
    x: np.ndarray,
    dtype: NumericType,
    num_coarse: int = 24,
    num_fine: int = 12,
    min_ratio: float = 0.01,
) -> ScaleSearchResult:
    """Seed implementation: one Python-level quantize pass per ratio.

    Kept verbatim (driving the pre-codec two-gather quantize) so tests
    can cross-check the batched sweep and the perf benchmark can
    measure the speedup against it.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot search scale of an empty tensor")
    base = tensor_scale(x, dtype, clip_ratio=1.0)

    ratios = np.geomspace(min_ratio, 1.0, num_coarse)
    best_ratio, best_mse = _sweep_reference(x, dtype, base, ratios)

    if num_fine > 0:
        lo = max(min_ratio, best_ratio * 0.7)
        hi = min(1.0, best_ratio * 1.4)
        fine = np.linspace(lo, hi, num_fine)
        fine_ratio, fine_mse = _sweep_reference(x, dtype, base, fine)
        if fine_mse < best_mse:
            best_ratio, best_mse = fine_ratio, fine_mse

    return ScaleSearchResult(scale=base * best_ratio, mse=best_mse, clip_ratio=best_ratio)


def _sweep_reference(
    x: np.ndarray,
    dtype: NumericType,
    base_scale: float,
    ratios: np.ndarray,
) -> tuple:
    """Evaluate MSE at each clip ratio; return (best_ratio, best_mse)."""
    best_ratio = float(ratios[-1])
    best_mse = np.inf
    for ratio in ratios:
        q = dtype._quantize_reference(x, base_scale * float(ratio))
        err = x - q
        mse = float(np.mean(err * err))
        if mse < best_mse:
            best_mse = mse
            best_ratio = float(ratio)
    return best_ratio, best_mse
