"""ANT quantization framework (the paper's primary contribution).

Layered as follows:

* :mod:`repro.quant.functional` -- stateless quantize/dequantize kernels
  implementing Equation (2) of the paper.
* :mod:`repro.quant.scale_search` -- MSE-minimising clipping-range (scale
  factor) search, the ``ArgminMSE`` of Algorithm 2.
* :mod:`repro.quant.selection` -- per-tensor primitive-type selection
  (Algorithm 2).
* :mod:`repro.quant.quantizer` -- stateful :class:`TensorQuantizer`
  supporting per-tensor and per-channel granularity.
* :mod:`repro.quant.framework` -- whole-model quantization: calibrate,
  select types, wrap layers with fake-quant, report type ratios and
  average bits.
* :mod:`repro.quant.qat` -- quantization-aware training with the
  straight-through estimator (PACT-style clipping).
* :mod:`repro.quant.mixed_precision` -- layer-wise 4->8-bit escalation
  (Sec. IV-C "Mixed Precision").
"""

from repro.quant.functional import quantize_dequantize, channel_scales
from repro.quant.scale_search import (
    ScaleSearchResult,
    mse_for_scale,
    search_scale,
    search_scale_per_channel,
    subsample_tensor,
)
from repro.quant.selection import TypeChoice, select_type
from repro.quant.quantizer import Granularity, TensorQuantizer
from repro.quant.framework import (
    LayerQuantConfig,
    ModelQuantizer,
    QuantReport,
)
from repro.quant.mixed_precision import MixedPrecisionSearch, PrecisionDecision
from repro.quant.qat import FakeQuantOp, attach_fake_quant, finetune

__all__ = [
    "quantize_dequantize",
    "channel_scales",
    "search_scale",
    "search_scale_per_channel",
    "subsample_tensor",
    "ScaleSearchResult",
    "mse_for_scale",
    "TypeChoice",
    "select_type",
    "Granularity",
    "TensorQuantizer",
    "LayerQuantConfig",
    "ModelQuantizer",
    "QuantReport",
    "MixedPrecisionSearch",
    "PrecisionDecision",
    "FakeQuantOp",
    "attach_fake_quant",
    "finetune",
]
