"""Streaming calibration statistics (Algorithm 2 past memory limits).

``ModelQuantizer.calibrate`` classically captures one in-memory batch
per layer.  For calibration sets that do not fit in memory,
:class:`StreamingTensorStats` folds the per-layer statistics Algorithm
2 actually consumes incrementally, one batch at a time:

* **running extrema** -- the exact stream min/max.  The scale sweep's
  candidate grid is anchored to the tensor peak, so the peak must be
  exact regardless of how the MSE estimate is subsampled (the same
  invariant :func:`repro.quant.scale_search.search_scale` keeps via
  ``tensor_scale`` on the full tensor);
* **running moments** -- count, sum, sum of squares (distribution
  shape reporting and sanity checks);
* **a bounded reservoir** -- a uniform sample of stream elements
  (vectorized reservoir sampling from a fixed-seed generator, so a
  given stream order always yields the same sample) that stands in for
  the full tensor in the MSE sweeps.

With an *unbounded* reservoir (``capacity=None``) the accumulated
sample is the concatenated stream itself, and streaming calibration
selects exactly the types and scales the single-batch path would --
the equivalence the tests pin down.  With a bounded reservoir the MSE
estimate is subsampled (as the single-batch path already does via
``max_calibration_samples``) while the peak stays exact through
:meth:`StreamingTensorStats.anchored_sample`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class StreamingTensorStats:
    """Incremental per-tensor calibration statistics.

    Parameters
    ----------
    capacity:
        Reservoir size in elements; ``None`` keeps every element (the
        sample then *is* the stream, and memory grows with it).
    seed:
        Generator seed; a fixed seed makes the reservoir a
        deterministic function of the stream order.
    """

    def __init__(self, capacity: Optional[int] = 1 << 16, seed: int = 0) -> None:
        if capacity is not None and capacity < 2:
            raise ValueError(f"capacity must be >= 2 (or None), got {capacity}")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self.count = 0
        self.minimum = np.inf
        self.maximum = -np.inf
        self.total = 0.0
        self.total_sq = 0.0
        self._reservoir: Optional[np.ndarray] = None
        self._filled = 0
        self._chunks: List[np.ndarray] = []  # unbounded mode

    # ------------------------------------------------------------------
    def update(self, x: np.ndarray) -> "StreamingTensorStats":
        """Fold one batch of values into the running statistics."""
        flat = np.asarray(x, dtype=np.float64).ravel()
        if flat.size == 0:
            return self
        if not np.all(np.isfinite(flat)):
            raise ValueError("calibration batch contains NaN or inf")
        self.minimum = min(self.minimum, float(flat.min()))
        self.maximum = max(self.maximum, float(flat.max()))
        self.total += float(flat.sum())
        self.total_sq += float(np.dot(flat, flat))
        if self.capacity is None:
            self._chunks.append(flat.copy())
            self.count += flat.size
            return self
        start = 0
        if self._reservoir is None:
            self._reservoir = np.empty(self.capacity, dtype=np.float64)
        if self._filled < self.capacity:
            take = min(self.capacity - self._filled, flat.size)
            self._reservoir[self._filled: self._filled + take] = flat[:take]
            self._filled += take
            start = take
        if start < flat.size:
            # vectorized reservoir sampling: element with global index i
            # replaces a uniform slot with probability capacity/(i+1)
            rest = flat[start:]
            global_idx = self.count + start + np.arange(rest.size, dtype=np.float64)
            accept = self._rng.random(rest.size) < self.capacity / (global_idx + 1.0)
            n_accept = int(accept.sum())
            if n_accept:
                slots = self._rng.integers(0, self.capacity, size=n_accept)
                self._reservoir[slots] = rest[accept]
        self.count += flat.size
        return self

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def second_moment(self) -> float:
        return self.total_sq / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        return max(0.0, self.second_moment - self.mean ** 2)

    def sample(self) -> np.ndarray:
        """The reservoir contents (or the full stream when unbounded)."""
        if self.count == 0:
            raise ValueError("no calibration data was streamed")
        if self.capacity is None:
            return self._chunks[0] if len(self._chunks) == 1 else np.concatenate(self._chunks)
        return self._reservoir[: self._filled]

    def anchored_sample(self) -> np.ndarray:
        """Reservoir sample with the exact stream extrema appended.

        The appended min/max anchor the scale sweep's base scale to the
        true stream peak, exactly as the non-streaming path anchors to
        the full tensor's peak while subsampling only the MSE estimate.
        An unbounded reservoir already contains the extrema, so it is
        returned as-is (keeping the streamed-equals-single-batch
        equivalence exact).
        """
        base = self.sample()
        if self.capacity is None:
            return base
        return np.concatenate([base, [self.minimum, self.maximum]])
