"""Whole-model ANT quantization (the paper's Fig. 4 inference flow).

``ModelQuantizer`` orchestrates, for every quantizable layer (Conv2d /
Linear):

1. **Calibration** -- capture each layer's input activation on a small
   calibration set (the paper uses ~100 samples, Sec. IV-C), then run
   Algorithm 2 to pick a primitive type per weight tensor (per-channel
   scales) and per input-activation tensor (per-tensor scale, unsigned
   when the activation is non-negative, e.g. post-ReLU).
2. **Fake-quantization** -- install STE hooks so both inference and
   fine-tuning see quantized weights/inputs while accumulation stays in
   high precision.
3. **Reporting** -- tensor type ratios and size-weighted average bits,
   the quantities plotted in Fig. 13 (top) and Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.dtypes.registry import ANT_COMBINATION, default_registry
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quant.qat import FakeQuantOp, detach_fake_quant
from repro.quant.quantizer import (
    DEFAULT_MAX_CALIBRATION_SAMPLES,
    Granularity,
    TensorQuantizer,
)


def quantizable_layers(model: Module) -> Dict[str, Module]:
    """Name -> module for every Conv2d/Linear in the model."""
    return {
        name: module
        for name, module in model.named_modules()
        if isinstance(module, (Conv2d, Linear))
    }


@dataclass
class LayerQuantConfig:
    """Quantization state of one layer."""

    name: str
    module: Module
    weight_quantizer: TensorQuantizer
    input_quantizer: TensorQuantizer
    #: calibration copies used when re-searching scales on escalation;
    #: ``None`` until :meth:`ModelQuantizer.calibrate` stores them.
    weight_sample: Optional[np.ndarray] = None
    input_sample: Optional[np.ndarray] = None

    @property
    def weight_size(self) -> int:
        return int(self.module.weight.data.size)

    @property
    def input_size(self) -> int:
        return int(np.asarray(self.input_sample).size) if self.input_sample is not None else 0


@dataclass
class QuantReport:
    """Aggregate statistics over all quantized tensors."""

    #: tensor count per primitive kind+bits label, e.g. "flint4"
    type_counts: Dict[str, int]
    #: element-weighted average storage bits across weights+activations
    average_bits: float
    #: fraction of tensors (by count) that stayed at the low bit width
    low_bit_tensor_fraction: float
    #: per-layer detail rows
    layers: List[dict] = field(default_factory=list)

    def ratio(self, label: str) -> float:
        total = sum(self.type_counts.values())
        return self.type_counts.get(label, 0) / total if total else 0.0


class ModelQuantizer:
    """Quantize a :class:`repro.nn.Module` with the ANT framework.

    Parameters
    ----------
    model:
        The float model to quantize (modified in place via hooks).
    combination:
        Candidate-type combination name (default the paper's final
        ``ip-f`` = int + PoT + flint).
    bits:
        Bit width of the low-precision types (the paper's default 4).
    registry:
        Type registry supplying candidate instances.
    max_calibration_samples:
        Cap on the elements each calibration MSE sweep sees (``None``
        sweeps full tensors); forwarded to every
        :class:`TensorQuantizer`.
    """

    def __init__(
        self,
        model: Module,
        combination: str = ANT_COMBINATION,
        bits: int = 4,
        registry=default_registry,
        max_calibration_samples: Optional[int] = DEFAULT_MAX_CALIBRATION_SAMPLES,
    ) -> None:
        self.model = model
        self.combination = combination
        self.bits = bits
        self.registry = registry
        self.max_calibration_samples = max_calibration_samples
        self.layers: Dict[str, LayerQuantConfig] = {}
        self._calibration_batch = None

    # ------------------------------------------------------------------
    def _capture_inputs(self, batch) -> Dict[str, np.ndarray]:
        """Run one forward pass recording every quantizable layer input."""
        captured: Dict[str, np.ndarray] = {}
        modules = quantizable_layers(self.model)

        def recorder(name: str):
            def hook(x: Tensor) -> Tensor:
                captured[name] = np.asarray(x.data, dtype=np.float64).copy()
                return x

            return hook

        for name, module in modules.items():
            object.__setattr__(module, "input_fake_quant", recorder(name))
        try:
            self.model.eval()
            with no_grad():
                if isinstance(batch, np.ndarray) and batch.dtype.kind in "iu":
                    self.model(batch)
                else:
                    self.model(Tensor(batch))
        finally:
            for module in modules.values():
                object.__setattr__(module, "input_fake_quant", None)
        return captured

    # ------------------------------------------------------------------
    def _calibrate_weight(self, module) -> TensorQuantizer:
        weight_q = TensorQuantizer(
            self.registry.candidates(self.combination, self.bits, signed=True),
            granularity=Granularity.PER_CHANNEL,
            channel_axis=0,
            max_calibration_samples=self.max_calibration_samples,
        )
        weight_q.calibrate(module.weight.data)
        return weight_q

    def _calibrate_input(self, act: np.ndarray, act_signed: bool) -> TensorQuantizer:
        input_q = TensorQuantizer(
            self.registry.candidates(self.combination, self.bits, signed=act_signed),
            Granularity.PER_TENSOR,
            max_calibration_samples=self.max_calibration_samples,
        )
        input_q.calibrate(act)
        return input_q

    def calibrate(self, calibration_batch) -> "ModelQuantizer":
        """Select per-tensor types and scales from calibration data.

        ``calibration_batch`` is either one in-memory batch (an
        ``np.ndarray`` -- or a nested list/tuple, coerced as before --
        the classic single-batch path, numerically untouched) or a
        non-sequence iterable of batches (generator, iterator), which
        routes to :meth:`calibrate_streaming` so calibration scales
        past memory.
        """
        if isinstance(calibration_batch, (list, tuple)):
            # sequences were always one batch; only true iterators stream
            calibration_batch = np.asarray(calibration_batch)
        if not isinstance(calibration_batch, np.ndarray):
            return self.calibrate_streaming(calibration_batch)
        self._calibration_batch = calibration_batch
        captured = self._capture_inputs(calibration_batch)
        modules = quantizable_layers(self.model)
        self.layers = {}
        for name, module in modules.items():
            weight_q = self._calibrate_weight(module)

            act = captured.get(name)
            if act is None:
                raise RuntimeError(
                    f"layer {name!r} received no input during calibration"
                )
            act_signed = bool(np.min(act) < 0.0)
            input_q = self._calibrate_input(act, act_signed)

            self.layers[name] = LayerQuantConfig(
                name=name,
                module=module,
                weight_quantizer=weight_q,
                input_quantizer=input_q,
                weight_sample=module.weight.data.copy(),
                input_sample=act,
            )
        return self

    def calibrate_streaming(self, batches) -> "ModelQuantizer":
        """Calibrate from an iterator of batches, one batch in memory
        at a time.

        Algorithm 2's per-layer statistics fold incrementally
        (:class:`repro.quant.streaming.StreamingTensorStats`): exact
        running extrema anchor the scale sweeps, and a bounded
        deterministic reservoir (``max_calibration_samples`` elements;
        ``None`` keeps everything, making the result identical to
        single-batch calibration on the concatenated stream) stands in
        for the full activation in the MSE sweeps.  Weight statistics
        never stream -- weights do not depend on the data.

        The first batch is retained as the representative batch for
        :meth:`layer_sensitivity`.
        """
        from repro.quant.streaming import StreamingTensorStats

        stats: Dict[str, StreamingTensorStats] = {}
        first_batch = None
        n_batches = 0
        for batch in batches:
            batch = np.asarray(batch)
            if first_batch is None:
                first_batch = batch
            captured = self._capture_inputs(batch)
            for name, act in captured.items():
                if name not in stats:
                    stats[name] = StreamingTensorStats(
                        capacity=self.max_calibration_samples
                    )
                stats[name].update(act)
            n_batches += 1
        if n_batches == 0:
            raise ValueError("calibration stream yielded no batches")
        self._calibration_batch = first_batch

        modules = quantizable_layers(self.model)
        self.layers = {}
        for name, module in modules.items():
            layer_stats = stats.get(name)
            if layer_stats is None:
                raise RuntimeError(
                    f"layer {name!r} received no input during calibration"
                )
            weight_q = self._calibrate_weight(module)
            act = layer_stats.anchored_sample()
            input_q = self._calibrate_input(act, layer_stats.minimum < 0.0)
            self.layers[name] = LayerQuantConfig(
                name=name,
                module=module,
                weight_quantizer=weight_q,
                input_quantizer=input_q,
                weight_sample=module.weight.data.copy(),
                input_sample=act,
            )
        return self

    # ------------------------------------------------------------------
    @staticmethod
    def _install_hooks(config: LayerQuantConfig) -> None:
        """(Re)wrap one layer's hooks around its current quantizers."""
        object.__setattr__(
            config.module, "weight_fake_quant", FakeQuantOp(config.weight_quantizer)
        )
        object.__setattr__(
            config.module, "input_fake_quant", FakeQuantOp(config.input_quantizer)
        )

    def apply(self) -> "ModelQuantizer":
        """Install fake-quant hooks on all calibrated layers."""
        if not self.layers:
            raise RuntimeError("calibrate() must run before apply()")
        for config in self.layers.values():
            self._install_hooks(config)
        return self

    def remove(self) -> None:
        """Detach all fake-quant hooks, restoring the float model."""
        detach_fake_quant(self.model)

    # ------------------------------------------------------------------
    def freeze(
        self,
        model_name: Optional[str] = None,
        dtype=np.float64,
        weight_only: bool = False,
        backend: str = "float",
    ):
        """Export the calibrated model as an inference-only engine.

        Every quantized layer's weight is encoded **once** into a packed
        low-bit bitstream plus scales (and decoded once into the frozen
        kernels' weight cache); activation quantizers are exported as
        scale + LUT.  The result is a
        :class:`repro.runtime.FrozenModel`: graph-free pure-numpy
        forwards, a batched ``predict`` serving API, and packed ``.npz``
        ``save``/``load``.  The live model and its hooks are untouched,
        so calibration-time experiments can continue after freezing.

        Parameters
        ----------
        model_name:
            Zoo workload name recorded in checkpoints so
            :meth:`repro.runtime.FrozenModel.load` can rebuild the
            architecture skeleton without the original model object.
        dtype:
            Compute dtype of the frozen engine.  ``np.float64``
            (default) matches the fake-quant graph bit-for-bit;
            ``np.float32`` is the serving fast path.
        weight_only:
            Skip activation quantization entirely: the engine serves
            packed low-bit weights with float activations (the
            GOBO-style weight-only mode for workloads where activation
            quantization is accuracy-critical).  In float64 this
            matches the hook model with input fake-quant detached.
        backend:
            Execution backend: ``"float"`` (decode once, BLAS, layer
            by layer), ``"fused"`` (the forward-plan compiler of
            :mod:`repro.runtime.plan` -- the whole layer tree is
            compiled into fused single-pass kernels at freeze time),
            or ``"qgemm"`` (code-domain LUT execution,
            :mod:`repro.qgemm`).  See
            :meth:`repro.runtime.FrozenModel.set_backend`.
        """
        from repro.runtime import LayerExport, export_packed_weight, freeze_model

        if not self.layers:
            raise RuntimeError("calibrate() must run before freeze()")
        exports = []
        for name, config in self.layers.items():
            exports.append(
                LayerExport(
                    name=name,
                    weight=export_packed_weight(
                        config.weight_quantizer, config.module.weight.data
                    ),
                    act_dtype_name=(
                        None if weight_only else config.input_quantizer.dtype.name
                    ),
                    act_scale=(
                        None
                        if weight_only
                        else float(config.input_quantizer.choice.scale)
                    ),
                )
            )
        frozen = freeze_model(
            self.model,
            exports,
            model_name=model_name,
            meta={
                "combination": self.combination,
                "bits": self.bits,
                "weight_only": weight_only,
            },
        )
        if np.dtype(dtype) != np.float64:
            frozen.astype(dtype)
        if backend != "float":
            frozen.set_backend(backend)
        return frozen

    # ------------------------------------------------------------------
    def escalate_layer(self, name: str, bits: int = 8) -> None:
        """Raise one layer to a higher-precision int (mixed precision).

        Matches the paper's mixed-precision rule: escalated layers use
        plain ``int8``, which the 4-bit ANT PE natively supports by
        fusing four PEs (Sec. V-D).
        """
        config = self.layers[name]
        if config.weight_sample is None or config.input_sample is None:
            raise RuntimeError(
                f"layer {name!r} has no calibration samples; run calibrate() "
                "before escalating precision"
            )
        int_w = self.registry.get(f"int{bits}")
        config.weight_quantizer.set_dtype(int_w, config.weight_sample)
        act_signed = config.input_quantizer.dtype.signed
        int_a = self.registry.get(f"int{bits}" if act_signed else f"int{bits}u")
        config.input_quantizer.set_dtype(int_a, config.input_sample)
        # installed FakeQuantOp hooks read choice/scales live off the same
        # quantizer objects, so no hook refresh is needed

    def layer_state(self, name: str) -> dict:
        """Snapshot one layer's quantizer configuration (for later revert)."""
        config = self.layers[name]
        return {
            "weight": config.weight_quantizer.get_state(),
            "input": config.input_quantizer.get_state(),
        }

    def restore_layer_state(self, name: str, state: dict) -> None:
        """Revert a layer to a configuration captured by :meth:`layer_state`."""
        config = self.layers[name]
        config.weight_quantizer.set_state(state["weight"])
        config.input_quantizer.set_state(state["input"])

    # ------------------------------------------------------------------
    def layer_mse(self) -> Dict[str, float]:
        """Relative calibration MSE per layer (weight + input), for escalation order.

        Each tensor's MSE is normalized by its mean square: activation
        magnitudes grow by orders of magnitude through a network, so raw
        MSE would always rank the last layers as the most sensitive even
        when their *relative* quantization error is tiny (while e.g. a
        first conv's low-magnitude image input, whose absolute MSE is
        small but information-critical, would never be escalated).
        """
        scores = {}
        for name, config in self.layers.items():
            scores[name] = 0.0
            for quantizer, sample in (
                (config.weight_quantizer, config.weight_sample),
                (config.input_quantizer, config.input_sample),
            ):
                sample = np.asarray(sample, dtype=np.float64)
                power = float(np.mean(sample * sample))
                scores[name] += quantizer.observed_mse(sample) / (power + 1e-12)
        return scores

    def layer_sensitivity(self) -> Dict[str, float]:
        """End-to-end quantization sensitivity per layer, for escalation order.

        For each layer, fake-quantizes *only* that layer and measures the
        relative MSE of the model output on the calibration batch against
        the all-float output.  Unlike tensor-local MSE (see
        :meth:`layer_mse`), this captures how much a layer's quantization
        error actually perturbs the prediction: MSE-optimal scale search
        leaves every tensor with a similar ~constant relative error, so
        tensor-local metrics cannot distinguish an information-critical
        tensor (e.g. a first conv's image input) from a redundant one.

        Falls back to :meth:`layer_mse` when no calibration batch is
        stored.  Layers already escalated to a wider type naturally score
        low and stop being re-picked.
        """
        if self._calibration_batch is None:
            return self.layer_mse()

        saved = {
            name: (config.module.weight_fake_quant, config.module.input_fake_quant)
            for name, config in self.layers.items()
        }

        def _forward() -> np.ndarray:
            self.model.eval()
            batch = self._calibration_batch
            with no_grad():
                if isinstance(batch, np.ndarray) and batch.dtype.kind in "iu":
                    return np.asarray(self.model(batch).data, dtype=np.float64)
                return np.asarray(self.model(Tensor(batch)).data, dtype=np.float64)

        def _set_hooks(config, weight_hook, input_hook) -> None:
            object.__setattr__(config.module, "weight_fake_quant", weight_hook)
            object.__setattr__(config.module, "input_fake_quant", input_hook)

        try:
            for config in self.layers.values():
                _set_hooks(config, None, None)
            reference = _forward()
            power = float(np.mean(reference * reference)) + 1e-12
            scores = {}
            for name, config in self.layers.items():
                self._install_hooks(config)
                err = _forward() - reference
                scores[name] = float(np.mean(err * err)) / power
                _set_hooks(config, None, None)
        finally:
            for name, config in self.layers.items():
                _set_hooks(config, *saved[name])
        return scores

    def report(self) -> QuantReport:
        """Type ratios and size-weighted average bits (Fig. 13 top, Tbl. I)."""
        counts: Dict[str, int] = {}
        weighted_bits = 0.0
        total_elements = 0
        low_bit = 0
        rows: List[dict] = []
        for name, config in self.layers.items():
            for role, quantizer, size in (
                ("weight", config.weight_quantizer, config.weight_size),
                ("input", config.input_quantizer, config.input_size),
            ):
                dtype = quantizer.dtype
                label = f"{dtype.kind}{dtype.bits}"
                counts[label] = counts.get(label, 0) + 1
                weighted_bits += dtype.bits * size
                total_elements += size
                if dtype.bits <= self.bits:
                    low_bit += 1
                rows.append(
                    {
                        "layer": name,
                        "role": role,
                        "dtype": dtype.name,
                        "bits": dtype.bits,
                        "elements": size,
                    }
                )
        n_tensors = sum(counts.values())
        return QuantReport(
            type_counts=counts,
            average_bits=weighted_bits / total_elements if total_elements else 0.0,
            low_bit_tensor_fraction=low_bit / n_tensors if n_tensors else 0.0,
            layers=rows,
        )


def evaluate(model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> float:
    """Top-1 accuracy of a model on arrays ``x``/``y``."""
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, x.shape[0], batch_size):
            batch = x[start: start + batch_size]
            if isinstance(batch, np.ndarray) and batch.dtype.kind in "iu":
                logits = model(batch)
            else:
                logits = model(Tensor(batch))
            preds = np.argmax(logits.data, axis=1)
            correct += int(np.sum(preds == y[start: start + batch_size]))
    return correct / x.shape[0]
