"""Trained-model zoo with on-disk caching.

The paper's artifact ships fine-tuned checkpoints so experiments run in
an hour instead of days; this module plays the same role.  The first
request for a workload trains the scaled-down model on its synthetic
dataset (seeded, deterministic) and caches parameters plus metadata
under ``REPRO_CACHE`` (default ``<repo>/.cache``); later requests load
the checkpoint.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data import Dataset, dataset_for_workload
from repro.nn import models
from repro.nn.autograd import Tensor, cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.quant.framework import evaluate

#: training schedule per model family (steps, lr, batch size)
_SCHEDULES: Dict[str, Tuple[int, float, int]] = {
    "vgg": (400, 2e-3, 32),
    "resnet": (400, 2e-3, 32),
    "inception": (700, 2e-3, 32),
    "vit": (1200, 2e-3, 32),
    "bert": (600, 2e-3, 32),
}


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[2] / ".cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class ZooEntry:
    """A trained workload: model, dataset, and FP32 reference accuracy."""

    name: str
    model: Module
    dataset: Dataset
    fp32_accuracy: float


def _train(model: Module, dataset: Dataset, steps: int, lr: float, batch: int, seed: int) -> None:
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    model.train()
    for _ in range(steps):
        idx = rng.choice(dataset.n_train, size=min(batch, dataset.n_train), replace=False)
        batch_x, batch_y = dataset.x_train[idx], dataset.y_train[idx]
        optimizer.zero_grad()
        if dataset.input_kind == "tokens":
            logits = model(batch_x)
        else:
            logits = model(Tensor(batch_x))
        loss = cross_entropy(logits, batch_y)
        loss.backward()
        optimizer.step()
    model.eval()


def trained_model(
    name: str,
    seed: int = 0,
    force_retrain: bool = False,
    n_train: Optional[int] = None,
    n_test: Optional[int] = None,
) -> ZooEntry:
    """Return a trained model for a workload, training and caching on miss."""
    dataset_kwargs = {}
    if n_train is not None:
        dataset_kwargs["n_train"] = n_train
    if n_test is not None:
        dataset_kwargs["n_test"] = n_test
    dataset = dataset_for_workload(name, seed=seed, **dataset_kwargs)
    model = models.build_model(name, seed=seed)

    stamp = f"{name}_seed{seed}_tr{dataset.n_train}_te{dataset.n_test}"
    params_path = cache_dir() / f"{stamp}.npz"
    meta_path = cache_dir() / f"{stamp}.json"

    if not force_retrain and params_path.exists() and meta_path.exists():
        blob = np.load(params_path)
        state = {key: blob[key] for key in blob.files}
        model.load_state_dict(state)
        model.eval()
        meta = json.loads(meta_path.read_text())
        return ZooEntry(name, model, dataset, float(meta["fp32_accuracy"]))

    family = getattr(model, "family", "vgg")
    steps, lr, batch = _SCHEDULES.get(family, (200, 2e-3, 32))
    _train(model, dataset, steps, lr, batch, seed)
    accuracy = evaluate(model, dataset.x_test, dataset.y_test)

    np.savez(params_path, **model.state_dict())
    meta_path.write_text(json.dumps({"fp32_accuracy": accuracy, "steps": steps}))
    return ZooEntry(name, model, dataset, accuracy)


def calibration_batch(dataset: Dataset, n: int = 100, seed: int = 0):
    """~100 training samples, the paper's calibration budget (Sec. IV-C)."""
    rng = np.random.default_rng(seed)
    idx = rng.choice(dataset.n_train, size=min(n, dataset.n_train), replace=False)
    return dataset.x_train[idx]
