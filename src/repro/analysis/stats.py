"""Tensor distribution statistics (the Fig. 1 / Fig. 14 analysis).

``classify_distribution`` implements the paper's qualitative taxonomy
-- uniform-like, Gaussian-like, Laplace-like -- using excess kurtosis
as the discriminator: a uniform distribution has kurtosis -1.2, a
Gaussian 0, a Laplace +3, and outlier-heavy tensors shoot far above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats


@dataclass(frozen=True)
class TensorStats:
    """Summary statistics of one tensor."""

    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    min: float
    max: float
    #: ratio of the 99.9th-percentile magnitude to the 50th
    tail_ratio: float


def tensor_stats(x: np.ndarray) -> TensorStats:
    """Compute the summary statistics used for distribution classing."""
    flat = np.asarray(x, dtype=np.float64).ravel()
    if flat.size < 8:
        raise ValueError("need at least 8 elements for stable statistics")
    mags = np.abs(flat)
    p50 = float(np.quantile(mags, 0.5))
    p999 = float(np.quantile(mags, 0.999))
    return TensorStats(
        mean=float(flat.mean()),
        std=float(flat.std()),
        skewness=float(sp_stats.skew(flat)),
        excess_kurtosis=float(sp_stats.kurtosis(flat)),
        min=float(flat.min()),
        max=float(flat.max()),
        tail_ratio=p999 / p50 if p50 > 0 else np.inf,
    )


def classify_distribution(x: np.ndarray) -> str:
    """Bucket a tensor into the paper's three families.

    Returns ``"uniform-like"``, ``"gaussian-like"`` or
    ``"laplace-like"``; heavy-tailed tensors beyond Laplace are also
    reported as laplace-like (the family that prefers PoT).
    """
    stats = tensor_stats(x)
    if stats.excess_kurtosis < -0.6:
        return "uniform-like"
    if stats.excess_kurtosis < 1.5:
        return "gaussian-like"
    return "laplace-like"
