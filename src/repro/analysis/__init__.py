"""Tensor statistics and table/figure rendering helpers."""

from repro.analysis.stats import (
    tensor_stats,
    classify_distribution,
    TensorStats,
)
from repro.analysis.reporting import format_table, normalize_series

__all__ = [
    "tensor_stats",
    "classify_distribution",
    "TensorStats",
    "format_table",
    "normalize_series",
]
