"""Plain-text table/series rendering for benchmark output.

Benchmarks print the same rows/series the paper reports; these helpers
keep that output consistent and diff-able (EXPERIMENTS.md records it).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_fmt.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def normalize_series(values: Dict[str, Number], baseline: str) -> Dict[str, float]:
    """Divide every entry by the baseline entry (Fig. 13 normalisation)."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from series")
    reference = float(values[baseline])
    if reference == 0:
        raise ZeroDivisionError("baseline value is zero")
    return {key: float(value) / reference for key, value in values.items()}


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's cross-workload aggregate)."""
    import numpy as np

    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
