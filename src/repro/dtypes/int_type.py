"""Fixed-point integer type (the ``int`` primitive of the paper).

The most hardware-friendly format: a uniform grid.  Signed variants use
a symmetric range ``[-(2^(b-1) - 1), 2^(b-1) - 1]`` which is the common
choice for weight quantization because it keeps zero exactly
representable and the grid symmetric (the paper follows TensorRT-style
per-channel symmetric weight quantization, Sec. II-B).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import NumericType


class IntType(NumericType):
    """``b``-bit integer grid.

    Unsigned: values ``0 .. 2^b - 1``.
    Signed (symmetric): values ``-(2^(b-1)-1) .. 2^(b-1)-1`` encoded in
    two's complement; the most negative two's-complement code is unused,
    matching common symmetric-int quantizer implementations.
    """

    kind = "int"

    def _magnitude_grid(self) -> np.ndarray:
        if self.signed:
            top = 2 ** (self.bits - 1) - 1
        else:
            top = 2 ** self.bits - 1
        return np.arange(0, top + 1, dtype=np.float64)

    def _reference_encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        ints = np.rint(values).astype(np.int64)
        if self.signed:
            limit = 2 ** (self.bits - 1) - 1
            if np.any(np.abs(ints) > limit):
                raise ValueError(f"value out of range for {self.name}")
            # two's complement within `bits` bits
            return np.where(ints < 0, ints + (1 << self.bits), ints).astype(np.int64)
        if np.any(ints < 0) or np.any(ints > 2 ** self.bits - 1):
            raise ValueError(f"value out of range for {self.name}")
        return ints

    def _reference_decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes < 0) or np.any(codes >= (1 << self.bits)):
            raise ValueError(f"code out of range for {self.name}")
        if self.signed:
            half = 1 << (self.bits - 1)
            vals = np.where(codes >= half, codes - (1 << self.bits), codes)
            return vals.astype(np.float64)
        return codes.astype(np.float64)
