"""Power-of-two (PoT) type: exponent-only floating point.

The PoT primitive [Miyashita et al. 2016; Zhou et al. 2017] represents
``{0} U {2^k}`` and offers an extreme dynamic range at a given bit
width, which the paper shows is the best fit for long-tailed
(Laplace-like) Transformer activation tensors (Fig. 1, Fig. 14).

Encoding: code 0 is reserved for the value zero; code ``c >= 1`` maps to
``2^(c - 1 + bias)``.  With the default ``bias = 0`` an unsigned 4-bit
PoT spans ``1 .. 2^14``.  Signed PoT is a sign bit plus a
``(b-1)``-bit unsigned PoT magnitude, so a signed 4-bit PoT spans
``+-(1 .. 2^6)`` -- identical to the signed 4-bit float-with-no-mantissa,
which is why the paper notes the two "overlap" in Fig. 14.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import NumericType, split_sign


class PoTType(NumericType):
    """``b``-bit power-of-two grid with an optional exponent bias."""

    kind = "pot"

    def __init__(self, bits: int, signed: bool = False, bias: int = 0) -> None:
        self.bias = int(bias)
        super().__init__(bits, signed)

    def _extra_identity(self) -> tuple:
        return (self.bias,)

    @property
    def _mag_bits(self) -> int:
        return self.bits - 1 if self.signed else self.bits

    def _magnitude_grid(self) -> np.ndarray:
        n_codes = 1 << self._mag_bits
        exps = np.arange(n_codes - 1) + self.bias
        return np.concatenate([[0.0], np.power(2.0, exps)])

    def _reference_encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if not self.signed:
            if np.any(values < 0):
                raise ValueError(f"negative value for unsigned {self.name}")
            return self._encode_magnitude(values)
        signs, mags = split_sign(values)
        return (signs << self._mag_bits) | self._encode_magnitude(mags)

    def _encode_magnitude(self, mags: np.ndarray) -> np.ndarray:
        codes = np.zeros(mags.shape, dtype=np.int64)
        nonzero = mags > 0
        exps = np.full(mags.shape, 0.0)
        exps[nonzero] = np.log2(mags[nonzero])
        rounded = np.rint(exps).astype(np.int64)
        if np.any(nonzero & ~np.isclose(np.power(2.0, rounded), mags, rtol=1e-9)):
            raise ValueError(f"value is not a power of two for {self.name}")
        code_vals = rounded - self.bias + 1
        max_code = (1 << self._mag_bits) - 1
        if np.any(nonzero & ((code_vals < 1) | (code_vals > max_code))):
            raise ValueError(f"exponent out of range for {self.name}")
        codes[nonzero] = code_vals[nonzero]
        return codes

    def _reference_decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes < 0) or np.any(codes >= (1 << self.bits)):
            raise ValueError(f"code out of range for {self.name}")
        if self.signed:
            sign = (codes >> self._mag_bits) & 1
            mag_codes = codes & ((1 << self._mag_bits) - 1)
        else:
            sign = np.zeros_like(codes)
            mag_codes = codes
        mags = np.where(
            mag_codes == 0,
            0.0,
            np.power(2.0, mag_codes - 1 + self.bias),
        )
        return np.where(sign == 1, -mags, mags)
