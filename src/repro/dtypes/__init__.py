"""Numeric data type primitives used by the ANT quantization framework.

The paper builds its adaptive framework on four fixed-length primitive
types, all of which are implemented here bit-exactly:

* :class:`IntType` -- plain fixed-point integers (signed / unsigned).
* :class:`FloatType` -- low-bit floating point with a configurable
  exponent/mantissa split and exponent bias (the basis of AdaptiveFloat).
* :class:`PoTType` -- power-of-two values (exponent-only float).
* :class:`FlintType` -- the paper's composite ``flint`` type using
  first-one exponent coding (Sec. IV-A, Algorithm 1, Tables II/III).

Every type exposes the same small interface (:class:`NumericType`):
a canonical *value grid* (the set of representable real values at scale
one), bit-level ``encode``/``decode``, and vectorised round-to-nearest
quantization used by the simulation framework in :mod:`repro.quant`.

Architecture -- the GridCodec layer
-----------------------------------

The package is organised in three layers:

1. **Closed-form bit layouts** (``_reference_encode`` /
   ``_reference_decode`` on each concrete type): scalar routines that
   define each format's bit-level semantics.  They are the source of
   truth for *what a code word means* and are exercised directly by the
   property tests.
2. **:class:`~repro.dtypes.codec.GridCodec`** (``codec.py``): built
   once per type from the reference routines, it precomputes the sorted
   value grid, the midpoint rounding thresholds, and bidirectional
   code<->value lookup tables.  All hot kernels -- ``quantize``,
   ``encode``, ``decode``, ``quantize_to_codes`` -- collapse to a
   single ``np.searchsorted`` plus gathers over these tables, for any
   input shape and scalar or per-channel scales.
3. **Consumers**: the quantization framework (:mod:`repro.quant`)
   drives its batched scale sweeps through the codec's midpoint tables,
   and the hardware decoder models (:mod:`repro.hardware.decoder`)
   validate their RTL-style circuits against the same ``decode_lut`` --
   software and hardware simulation share one truth table.
"""

from repro.dtypes.base import NumericType, code_bits
from repro.dtypes.codec import GridCodec, pack_codes, packed_nbytes, unpack_codes
from repro.dtypes.int_type import IntType
from repro.dtypes.float_type import FloatType
from repro.dtypes.pot_type import PoTType
from repro.dtypes.flint import FlintType
from repro.dtypes.registry import (
    TypeRegistry,
    default_registry,
    get_type,
    candidate_list,
)

__all__ = [
    "NumericType",
    "GridCodec",
    "pack_codes",
    "unpack_codes",
    "packed_nbytes",
    "IntType",
    "FloatType",
    "PoTType",
    "FlintType",
    "TypeRegistry",
    "default_registry",
    "get_type",
    "candidate_list",
    "code_bits",
]
