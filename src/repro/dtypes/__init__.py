"""Numeric data type primitives used by the ANT quantization framework.

The paper builds its adaptive framework on four fixed-length primitive
types, all of which are implemented here bit-exactly:

* :class:`IntType` -- plain fixed-point integers (signed / unsigned).
* :class:`FloatType` -- low-bit floating point with a configurable
  exponent/mantissa split and exponent bias (the basis of AdaptiveFloat).
* :class:`PoTType` -- power-of-two values (exponent-only float).
* :class:`FlintType` -- the paper's composite ``flint`` type using
  first-one exponent coding (Sec. IV-A, Algorithm 1, Tables II/III).

Every type exposes the same small interface (:class:`NumericType`):
a canonical *value grid* (the set of representable real values at scale
one), bit-level ``encode``/``decode``, and vectorised round-to-nearest
quantization used by the simulation framework in :mod:`repro.quant`.
"""

from repro.dtypes.base import NumericType, code_bits
from repro.dtypes.int_type import IntType
from repro.dtypes.float_type import FloatType
from repro.dtypes.pot_type import PoTType
from repro.dtypes.flint import FlintType
from repro.dtypes.registry import (
    TypeRegistry,
    default_registry,
    get_type,
    candidate_list,
)

__all__ = [
    "NumericType",
    "IntType",
    "FloatType",
    "PoTType",
    "FlintType",
    "TypeRegistry",
    "default_registry",
    "get_type",
    "candidate_list",
    "code_bits",
]
