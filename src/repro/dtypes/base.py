"""Common interface for fixed-length numeric data types.

A *numeric type* in this library is defined by its **value grid**: the
finite, sorted set of real values representable at scale factor one.
Quantization of a tensor ``x`` with scale ``s`` is simulated as

    q(x) = s * nearest_grid_value(x / s)

which is exactly how the paper's PyTorch framework simulates custom
formats in FP32 (Sec. VII-A, "all variables use 32-bit floating-point
arithmetic operations to simulate quantization effects").

Bit-level ``encode``/``decode`` round-trip between real grid values and
integer code words, which the hardware model in :mod:`repro.hardware`
uses to validate its decoder circuits against the software definition.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

from repro.dtypes.codec import GridCodec


def code_bits(n_codes: int) -> int:
    """Number of bits needed to address ``n_codes`` distinct code words."""
    if n_codes <= 0:
        raise ValueError(f"n_codes must be positive, got {n_codes}")
    return max(1, int(np.ceil(np.log2(n_codes))))


class NumericType(abc.ABC):
    """Abstract fixed-length numeric data type.

    Parameters
    ----------
    bits:
        Total storage bits per element, including the sign bit for
        signed types.
    signed:
        Whether the type carries a sign bit.  Signed variants in this
        library follow the paper's construction: a sign bit plus a
        ``bits - 1``-wide unsigned magnitude (Sec. V-C).
    """

    #: short lowercase identifier, e.g. ``"flint"``; set by subclasses.
    kind: str = "abstract"

    def __init__(self, bits: int, signed: bool) -> None:
        if bits < 2:
            raise ValueError(f"{type(self).__name__} needs >= 2 bits, got {bits}")
        self.bits = int(bits)
        self.signed = bool(signed)
        self._grid_cache: Optional[np.ndarray] = None
        self._codec_cache: Optional[GridCodec] = None

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _magnitude_grid(self) -> np.ndarray:
        """Sorted non-negative representable magnitudes (unsigned grid)."""

    @abc.abstractmethod
    def _reference_encode(self, values: np.ndarray) -> np.ndarray:
        """Scalar closed-form encoder: exact grid values -> code words.

        Kept as the bit-layout source of truth; the public
        :meth:`encode` is a vectorized LUT lookup built from this by
        :class:`repro.dtypes.codec.GridCodec` and cross-checked against
        it by the property tests.
        """

    @abc.abstractmethod
    def _reference_decode(self, codes: np.ndarray) -> np.ndarray:
        """Scalar closed-form decoder: code words -> real grid values."""

    # ------------------------------------------------------------------
    # Shared behaviour
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Canonical name, e.g. ``flint4`` or ``int8u``."""
        suffix = "" if self.signed else "u"
        return f"{self.kind}{self.bits}{suffix}"

    @property
    def grid(self) -> np.ndarray:
        """Sorted array of representable real values at scale one.

        For signed types the grid is the symmetric union of positive and
        negative magnitudes plus zero; for unsigned types it is the raw
        non-negative magnitude grid.
        """
        if self._grid_cache is None:
            mags = np.asarray(self._magnitude_grid(), dtype=np.float64)
            if mags.ndim != 1 or mags.size == 0:
                raise AssertionError("magnitude grid must be a non-empty 1-D array")
            if self.signed:
                pos = mags[mags > 0]
                full = np.concatenate([-pos[::-1], [0.0], pos])
            else:
                full = mags
            self._grid_cache = np.unique(full)
        return self._grid_cache

    @property
    def max_value(self) -> float:
        """Largest representable magnitude at scale one."""
        return float(self.grid[-1])

    @property
    def min_positive(self) -> float:
        """Smallest representable strictly positive value at scale one."""
        grid = self.grid
        positives = grid[grid > 0]
        return float(positives[0])

    @property
    def n_values(self) -> int:
        """Number of distinct representable values."""
        return int(self.grid.size)

    @property
    def codec(self) -> GridCodec:
        """Precomputed LUT codec backing all vectorized kernels."""
        if self._codec_cache is None:
            self._codec_cache = GridCodec.from_type(self)
        return self._codec_cache

    @staticmethod
    def _check_scale(scale: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        if np.ndim(scale) == 0:
            scale = float(scale)
            if not scale > 0:  # rejects NaN as well as non-positives
                raise ValueError(f"scale must be positive, got {scale}")
            return scale
        scale = np.asarray(scale, dtype=np.float64)
        if not np.all(scale > 0):
            raise ValueError("all scales must be positive (and not NaN)")
        return scale

    def quantize(
        self, x: np.ndarray, scale: Union[float, np.ndarray] = 1.0
    ) -> np.ndarray:
        """Round ``x`` to the nearest representable value at ``scale``.

        Values beyond the representable range saturate to the grid
        extremes (the ``Clamp`` in the paper's Equation (2)), so
        ``+-inf`` saturates too; NaN propagates to NaN instead of being
        silently mapped onto a grid endpoint.  ``scale`` may be a
        positive scalar or an array broadcastable against ``x``
        (per-channel scales).
        """
        scale = self._check_scale(scale)
        x = np.asarray(x, dtype=np.float64)
        return self.codec.quantize(x, scale)

    def _quantize_reference(self, x: np.ndarray, scale: float = 1.0) -> np.ndarray:
        """Pre-codec quantize (two-gather neighbour compare), kept as the
        reference implementation for property tests and perf baselines."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        x = np.asarray(x, dtype=np.float64)
        grid = self.grid
        scaled = x / scale
        idx = np.searchsorted(grid, scaled)
        idx = np.clip(idx, 1, grid.size - 1)
        left = grid[idx - 1]
        right = grid[idx]
        # Ties round up, matching the paper's worked example in Sec. IV-A
        # where 11 rounds to 12 on the 4-bit flint grid.
        choose_right = (scaled - left) >= (right - scaled)
        nearest = np.where(choose_right, right, left)
        return nearest * scale

    def quantize_to_codes(self, x: np.ndarray, scale: float = 1.0) -> np.ndarray:
        """Quantize and return integer code words instead of real values."""
        scale = self._check_scale(scale)
        x = np.asarray(x, dtype=np.float64)
        return self.codec.quantize_to_codes(x, scale)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map exact grid values to integer code words (vectorized LUT)."""
        return self.codec.encode(values)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map integer code words back to real grid values (vectorized LUT)."""
        return self.codec.decode(codes)

    def mse(self, x: np.ndarray, scale: float = 1.0) -> float:
        """Mean squared quantization error of ``x`` under this type."""
        q = self.quantize(x, scale)
        err = np.asarray(x, dtype=np.float64) - q
        return float(np.mean(err * err))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NumericType)
            and self.kind == other.kind
            and self.bits == other.bits
            and self.signed == other.signed
            and self._extra_identity() == other._extra_identity()
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.bits, self.signed, self._extra_identity()))

    def _extra_identity(self) -> tuple:
        """Subclass hook: extra fields participating in identity."""
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(bits={self.bits}, signed={self.signed})"


def split_sign(values: np.ndarray) -> tuple:
    """Split an array into (sign_bits, magnitudes) for sign-magnitude coding."""
    values = np.asarray(values, dtype=np.float64)
    signs = (values < 0).astype(np.int64)
    return signs, np.abs(values)
