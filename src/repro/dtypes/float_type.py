"""Low-bit floating-point type with configurable exponent/mantissa split.

This is the ``float`` primitive from the paper (Equation (1)):

    value = sign * 2^(exponent - bias) * 1.mantissa

with subnormal support (exponent code zero drops the implicit leading
one), and *no* inf/NaN codes -- every code word is a finite value, as is
standard for sub-8-bit research formats.

``FloatType`` also serves as the substrate for AdaptiveFloat [Tambe et
al., DAC 2020]: AdaptiveFloat is exactly this type with a per-tensor
exponent ``bias`` chosen to minimise quantization MSE (see
:class:`repro.baselines.adafloat.AdaFloatQuantizer`).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import NumericType, split_sign


class FloatType(NumericType):
    """``b``-bit float with ``exp_bits`` exponent and ``man_bits`` mantissa.

    Parameters
    ----------
    exp_bits:
        Width of the exponent field.
    man_bits:
        Width of the mantissa (fraction) field.
    signed:
        Add a sign bit in front (total ``1 + exp_bits + man_bits`` bits).
    bias:
        Exponent bias.  ``None`` selects the IEEE-style default
        ``2^(exp_bits-1) - 1``.
    """

    kind = "float"

    def __init__(
        self,
        exp_bits: int,
        man_bits: int,
        signed: bool = False,
        bias: int = None,
    ) -> None:
        if exp_bits < 1:
            raise ValueError(f"exp_bits must be >= 1, got {exp_bits}")
        if man_bits < 0:
            raise ValueError(f"man_bits must be >= 0, got {man_bits}")
        self.exp_bits = int(exp_bits)
        self.man_bits = int(man_bits)
        if bias is None:
            bias = 2 ** (exp_bits - 1) - 1
        self.bias = int(bias)
        total = exp_bits + man_bits + (1 if signed else 0)
        super().__init__(total, signed)

    def _extra_identity(self) -> tuple:
        return (self.exp_bits, self.man_bits, self.bias)

    @property
    def name(self) -> str:
        suffix = "" if self.signed else "u"
        return f"float{self.bits}{suffix}_e{self.exp_bits}m{self.man_bits}b{self.bias}"

    # ------------------------------------------------------------------
    def _code_to_magnitude(self, mag_codes: np.ndarray) -> np.ndarray:
        """Decode the exponent+mantissa portion of a code to a magnitude."""
        mag_codes = np.asarray(mag_codes, dtype=np.int64)
        exp_field = mag_codes >> self.man_bits
        man_field = mag_codes & ((1 << self.man_bits) - 1)
        man_scale = float(1 << self.man_bits)
        # Subnormals: exponent code 0 means 2^(1-bias) * (m / 2^mb).
        sub = np.power(2.0, 1 - self.bias) * (man_field / man_scale)
        norm = np.power(2.0, exp_field - self.bias) * (1.0 + man_field / man_scale)
        return np.where(exp_field == 0, sub, norm)

    def _magnitude_grid(self) -> np.ndarray:
        n_mag_codes = 1 << (self.exp_bits + self.man_bits)
        return np.unique(self._code_to_magnitude(np.arange(n_mag_codes)))

    # ------------------------------------------------------------------
    def _magnitude_to_code(self, mags: np.ndarray) -> np.ndarray:
        mags = np.asarray(mags, dtype=np.float64)
        n_mag_codes = 1 << (self.exp_bits + self.man_bits)
        all_vals = self._code_to_magnitude(np.arange(n_mag_codes))
        codes = np.empty(mags.shape, dtype=np.int64)
        flat_m = mags.ravel()
        flat_c = codes.ravel()
        for i, v in enumerate(flat_m):
            matches = np.where(np.isclose(all_vals, v, rtol=1e-9, atol=0.0) | (all_vals == v))[0]
            if matches.size == 0:
                raise ValueError(f"{v!r} is not representable in {self.name}")
            flat_c[i] = matches[0]
        return codes

    def _reference_encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if not self.signed:
            if np.any(values < 0):
                raise ValueError(f"negative value for unsigned {self.name}")
            return self._magnitude_to_code(values)
        signs, mags = split_sign(values)
        mag_codes = self._magnitude_to_code(mags)
        return (signs << (self.bits - 1)) | mag_codes

    def _reference_decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes < 0) or np.any(codes >= (1 << self.bits)):
            raise ValueError(f"code out of range for {self.name}")
        if not self.signed:
            return self._code_to_magnitude(codes)
        sign = (codes >> (self.bits - 1)) & 1
        mags = self._code_to_magnitude(codes & ((1 << (self.bits - 1)) - 1))
        return np.where(sign == 1, -mags, mags)

    def with_bias(self, bias: int) -> "FloatType":
        """Return a copy of this format with a different exponent bias."""
        return FloatType(self.exp_bits, self.man_bits, self.signed, bias)
