"""Vectorized LUT codec shared by all numeric types.

A :class:`GridCodec` precomputes, once per :class:`NumericType`, the
four arrays that make every hot quantization kernel a single
``np.searchsorted`` plus gathers:

* ``grid`` -- the sorted representable real values at scale one;
* ``midpoints`` -- the ``n-1`` round-to-nearest decision thresholds
  between consecutive grid values (ties round up, matching the paper's
  worked example where 11 rounds to 12 on the 4-bit flint grid);
* ``decode_lut`` -- real value of every one of the ``2^bits`` code
  words (including codes outside the quantization grid, e.g. the
  unused most-negative two's-complement int code);
* ``grid_codes`` -- the canonical code word of every grid value, so
  quantize-to-codes needs no closed-form encoder at all.

The tables are built from each type's scalar closed-form reference
routines (``_reference_encode`` / ``_reference_decode``), which stay
the single source of truth for the bit layout; the codec is the single
source of truth for everything built on top -- software quantization,
scale search, and the hardware decoder models all validate against the
same LUTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

ScaleLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class GridCodec:
    """Precomputed lookup tables for one numeric type."""

    #: name of the owning type, used in error messages.
    type_name: str
    #: sorted representable values at scale one, shape ``(n_values,)``.
    grid: np.ndarray
    #: rounding thresholds between neighbours, shape ``(n_values - 1,)``.
    midpoints: np.ndarray
    #: code word -> real value, shape ``(2^bits,)``.
    decode_lut: np.ndarray
    #: grid index -> canonical code word, shape ``(n_values,)``.
    grid_codes: np.ndarray
    #: total number of code words, ``2^bits``.
    n_codes: int

    @classmethod
    def from_type(cls, dtype) -> "GridCodec":
        """Build the tables from a type's scalar reference routines."""
        n_codes = 1 << dtype.bits
        decode_lut = np.asarray(
            dtype._reference_decode(np.arange(n_codes)), dtype=np.float64
        )
        grid = np.array(dtype.grid, dtype=np.float64)
        grid_codes = np.asarray(dtype._reference_encode(grid), dtype=np.int64)
        midpoints = 0.5 * (grid[:-1] + grid[1:])
        for arr in (grid, midpoints, decode_lut, grid_codes):
            arr.setflags(write=False)
        return cls(
            type_name=dtype.name,
            grid=grid,
            midpoints=midpoints,
            decode_lut=decode_lut,
            grid_codes=grid_codes,
            n_codes=n_codes,
        )

    # ------------------------------------------------------------------
    # Quantization kernels
    # ------------------------------------------------------------------
    def nearest_indices(self, scaled: np.ndarray) -> np.ndarray:
        """Grid index of the nearest grid value for each element.

        ``side='right'`` on the midpoint array makes exact midpoints
        round up, reproducing the reference tie rule.  NaN inputs land
        on the last index and must be masked by the caller.
        """
        return np.searchsorted(self.midpoints, scaled, side="right")

    def quantize(self, x: np.ndarray, scale: ScaleLike = 1.0) -> np.ndarray:
        """Round ``x`` to the nearest representable value at ``scale``.

        ``scale`` may be a positive scalar or an array broadcastable
        against ``x`` (per-channel scales).  ``+-inf`` saturates to the
        grid extremes; NaN propagates to NaN in the output.
        """
        scalar_scale = np.ndim(scale) == 0
        if scalar_scale and scale == 1.0 and x.dtype.kind == "f":
            scaled = x  # alias: the divide would be an identity pass
        else:
            scaled = x / scale
        indices = self.nearest_indices(scaled)
        if scalar_scale:
            # Fold the rescale into the tiny LUT: (grid*s)[i] computes the
            # same elementwise products as grid[i]*s, one array pass fewer.
            out = (self.grid * scale)[indices] if scale != 1.0 else self.grid[indices]
        else:
            out = self.grid[indices] * scale
        # np.min propagates NaN, so a single allocation-free reduction
        # guards the common all-finite case; the masking pass runs only
        # when a NaN is actually present.
        if np.isnan(np.min(scaled, initial=np.inf)):
            out = np.where(np.isnan(scaled), np.nan, out)
        return out

    def quantize_to_codes(self, x: np.ndarray, scale: ScaleLike = 1.0) -> np.ndarray:
        """Quantize and return canonical code words directly."""
        scaled = x / scale
        if np.isnan(np.min(scaled, initial=np.inf)):
            raise ValueError(f"cannot encode NaN values with {self.type_name}")
        return self.grid_codes[self.nearest_indices(scaled)]

    # ------------------------------------------------------------------
    # Bit-level LUT codec
    # ------------------------------------------------------------------
    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map exact grid values to their canonical code words.

        Values must lie on the grid (up to ~1 ulp of relative error,
        which absorbs round-trips through ``quantize``'s scale
        multiply/divide); anything else raises ``ValueError``.
        """
        v = np.asarray(values, dtype=np.float64)
        grid = self.grid
        pos = np.searchsorted(grid, v)
        lo = np.clip(pos - 1, 0, grid.size - 1)
        hi = np.clip(pos, 0, grid.size - 1)
        pick_hi = np.abs(grid[hi] - v) <= np.abs(v - grid[lo])
        idx = np.where(pick_hi, hi, lo)
        matched = grid[idx]
        ok = (matched == v) | np.isclose(matched, v, rtol=1e-9, atol=0.0)
        if not np.all(ok):
            bad = float(np.asarray(v)[~np.asarray(ok)].ravel()[0])
            raise ValueError(f"{bad!r} is not representable in {self.type_name}")
        return self.grid_codes[idx]

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map integer code words back to real grid values."""
        c = np.asarray(codes, dtype=np.int64)
        if np.any(c < 0) or np.any(c >= self.n_codes):
            raise ValueError(f"code out of range for {self.type_name}")
        return self.decode_lut[c]


# ----------------------------------------------------------------------
# Packed low-bit storage
# ----------------------------------------------------------------------
#: widest element the bitstream packer supports (codes are < 2^bits).
MAX_PACK_BITS = 16


def packed_nbytes(count: int, bits: int) -> int:
    """Bytes occupied by ``count`` elements of ``bits`` bits each."""
    return (count * bits + 7) // 8


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack integer code words into a dense little-endian bitstream.

    Element ``k`` occupies bits ``[k*bits, (k+1)*bits)`` of the stream,
    least-significant bit first, so a "4-bit" tensor really occupies
    half a byte per element on disk.  Returns a ``uint8`` array of
    ``ceil(count*bits/8)`` bytes; the trailing byte is zero-padded.

    ``bits`` may be anything in ``[1, MAX_PACK_BITS]`` -- in particular
    the 3..8 widths of the registered numeric types -- and ``count``
    need not be a multiple of the elements-per-byte ratio.
    """
    if not 1 <= bits <= MAX_PACK_BITS:
        raise ValueError(f"bits must be in [1, {MAX_PACK_BITS}], got {bits}")
    flat = np.asarray(codes).reshape(-1)
    if flat.dtype.kind not in "iu":
        raise TypeError(f"codes must be integers, got dtype {flat.dtype}")
    flat = flat.astype(np.int64, copy=False)
    if flat.size and (np.min(flat) < 0 or np.max(flat) >= (1 << bits)):
        raise ValueError(f"codes out of range for {bits}-bit packing")
    # (count, bits) bit matrix, LSB first, then fold into bytes.  Built
    # column-wise into uint8 so the transient footprint stays at
    # ~(bits+8) bytes/element instead of the 8*bits of a fancy-indexed
    # int64 matrix (which would 64x the payload for 8-bit tensors).
    bit_matrix = np.empty((flat.size, bits), dtype=np.uint8)
    shifted = np.empty(flat.size, dtype=np.int64)
    for bit in range(bits):
        np.right_shift(flat, bit, out=shifted)
        np.bitwise_and(shifted, 1, out=shifted)
        bit_matrix[:, bit] = shifted
    return np.packbits(bit_matrix, bitorder="little")


def unpack_codes(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Invert :func:`pack_codes`: recover ``count`` code words.

    ``count`` is required because the trailing byte may carry padding
    bits that are indistinguishable from data.
    """
    if not 1 <= bits <= MAX_PACK_BITS:
        raise ValueError(f"bits must be in [1, {MAX_PACK_BITS}], got {bits}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    packed = np.asarray(packed, dtype=np.uint8).reshape(-1)
    if packed.size != packed_nbytes(count, bits):
        raise ValueError(
            f"expected {packed_nbytes(count, bits)} bytes for {count} "
            f"{bits}-bit elements, got {packed.size}"
        )
    bit_stream = np.unpackbits(packed, count=count * bits, bitorder="little")
    weights = (np.int64(1) << np.arange(bits))
    return bit_stream.reshape(count, bits) @ weights
