"""Registry of named numeric types and ANT candidate lists.

The ANT framework selects, per tensor, one primitive type out of a
candidate list (Algorithm 2).  The paper evaluates five combinations
(Sec. VII-B):

* ``int``    -- int only (the conventional baseline),
* ``ip``     -- int + PoT            (inter-tensor adaptivity only),
* ``fip``    -- float + int + PoT    (inter-tensor adaptivity only),
* ``ip-f``   -- int + PoT + flint    (the final ANT; int-based PE),
* ``fip-f``  -- float + int + PoT + flint (needs the float-based PE).
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.dtypes.base import NumericType
from repro.dtypes.flint import FlintType
from repro.dtypes.float_type import FloatType
from repro.dtypes.int_type import IntType
from repro.dtypes.pot_type import PoTType

#: Combination name -> list of primitive kind names, as used in Figs. 10-12.
COMBINATIONS: Dict[str, List[str]] = {
    "int": ["int"],
    "ip": ["int", "pot"],
    "fip": ["float", "int", "pot"],
    "ip-f": ["int", "pot", "flint"],
    "fip-f": ["float", "int", "pot", "flint"],
}

#: The paper's final ANT configuration (Sec. VII-B: "we choose the IP-F
#: configuration as the final ANT for the rest of evaluation").
ANT_COMBINATION = "ip-f"

_NAME_RE = re.compile(r"^(int|pot|flint|float)(\d+)(u?)$")

#: explicit float layout names as produced by :attr:`FloatType.name`,
#: e.g. ``float4u_e2m2b1``; round-trips any exponent/mantissa/bias
#: split (AdaptiveFloat uses per-tensor biases), so name-keyed
#: serialization (packed checkpoints) can rebuild the exact type.
_FLOAT_LAYOUT_RE = re.compile(r"^float(\d+)(u?)_e(\d+)m(\d+)b(-?\d+)$")


def _default_float(bits: int, signed: bool) -> FloatType:
    """Default low-bit float layout for a given total width.

    The magnitude field is split roughly evenly between exponent and
    mantissa, with the exponent getting the extra bit (matching the
    4-bit "2-bit exp" float of Fig. 3 for unsigned 4-bit, and common
    FP8-E4M3-style splits at 8 bits).
    """
    mag_bits = bits - 1 if signed else bits
    if mag_bits < 2:
        raise ValueError(f"float needs >= 2 magnitude bits, got {mag_bits}")
    exp_bits = (mag_bits + 1) // 2
    man_bits = mag_bits - exp_bits
    return FloatType(exp_bits, man_bits, signed=signed)


class TypeRegistry:
    """Create and cache numeric types addressed by string name.

    Names follow ``<kind><bits>[u]``: ``flint4`` is the signed 4-bit
    flint, ``flint4u`` the unsigned one, ``int8`` the signed 8-bit int,
    and so on.  ``float`` names resolve to the default layout from
    :func:`_default_float`; explicit layouts can be registered.
    """

    def __init__(self) -> None:
        self._cache: Dict[str, NumericType] = {}

    def get(self, name: str) -> NumericType:
        if name in self._cache:
            return self._cache[name]
        layout = _FLOAT_LAYOUT_RE.match(name)
        if layout is not None:
            bits, unsigned, exp_bits, man_bits, bias = layout.groups()
            dtype = FloatType(
                int(exp_bits), int(man_bits), signed=unsigned != "u", bias=int(bias)
            )
            if dtype.name != name:
                raise KeyError(f"inconsistent float layout name {name!r}")
            self._cache[name] = dtype
            return dtype
        match = _NAME_RE.match(name)
        if match is None:
            raise KeyError(
                f"unknown type name {name!r}; expected <kind><bits>[u] "
                f"or an explicit float layout like 'float4u_e2m2b1'"
            )
        kind, bits_s, unsigned = match.groups()
        bits = int(bits_s)
        signed = unsigned != "u"
        if kind == "int":
            dtype: NumericType = IntType(bits, signed)
        elif kind == "pot":
            dtype = PoTType(bits, signed)
        elif kind == "flint":
            dtype = FlintType(bits, signed)
        else:
            dtype = _default_float(bits, signed)
        self._cache[name] = dtype
        return dtype

    def register(self, name: str, dtype: NumericType) -> None:
        """Register a custom type under an explicit name."""
        self._cache[name] = dtype

    def candidates(self, combination: str, bits: int, signed: bool) -> List[NumericType]:
        """Instantiate the primitive candidate list for a combination."""
        if combination not in COMBINATIONS:
            raise KeyError(
                f"unknown combination {combination!r}; "
                f"choose from {sorted(COMBINATIONS)}"
            )
        suffix = "" if signed else "u"
        return [self.get(f"{kind}{bits}{suffix}") for kind in COMBINATIONS[combination]]


#: Process-wide default registry.
default_registry = TypeRegistry()


def get_type(name: str) -> NumericType:
    """Look up a type by name in the default registry."""
    return default_registry.get(name)


def candidate_list(combination: str, bits: int = 4, signed: bool = True) -> List[NumericType]:
    """Candidate primitives for Algorithm 2 from the default registry."""
    return default_registry.candidates(combination, bits, signed)
