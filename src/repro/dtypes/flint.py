"""The ``flint`` composite type (Sec. IV-A of the paper).

``flint`` is a fixed-length format whose exponent field is encoded with
*first-one coding*: the position of the first ``1`` after the most
significant bit marks the boundary between exponent and mantissa.  The
resulting format allocates

* **zero mantissa bits** to the smallest values (they behave like
  ``int``/``PoT`` -- unimportant, per the pruning literature),
* **the most mantissa bits** to mid-range values (the bulk of a
  Gaussian-like tensor), and
* **zero mantissa bits** to the largest values (range matters more than
  precision there -- ``PoT`` behaviour).

For a ``b``-bit unsigned flint with the paper's default bias of ``-1``:

* code ``0`` represents the value 0;
* codes with MSB ``0`` encode biased exponents ``e = 0 .. b-2`` with
  ``e`` mantissa bits each (int-like region);
* codes with MSB ``1`` encode biased exponents ``e = b-1 .. 2b-2`` with
  ``2b-2-e`` mantissa bits each (float-then-PoT region);
* the magnitude is ``2^e * (1 + m / 2^mb)``, max value ``2^(2b-2)``.

With ``b = 4`` this reproduces Table II exactly:
``{0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 24, 32, 64}``.

Signed flint is a sign bit plus a ``(b-1)``-bit unsigned flint
magnitude (Sec. V-C, Equations (7)-(8)).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dtypes.base import NumericType, split_sign


def _leading_zeros(value: int, width: int) -> int:
    """Number of leading zero bits of ``value`` within a ``width``-bit field."""
    if value == 0:
        return width
    return width - value.bit_length()


class FlintType(NumericType):
    """``b``-bit flint with first-one exponent coding."""

    kind = "flint"

    def __init__(self, bits: int, signed: bool = False) -> None:
        if signed and bits < 3:
            raise ValueError("signed flint needs >= 3 bits (sign + 2-bit magnitude)")
        super().__init__(bits, signed)

    @property
    def _mag_bits(self) -> int:
        """Width of the unsigned magnitude field."""
        return self.bits - 1 if self.signed else self.bits

    # ------------------------------------------------------------------
    # Field layout helpers (all in terms of the unsigned magnitude width)
    # ------------------------------------------------------------------
    def _exponent_range(self) -> Tuple[int, int]:
        """(min, max) biased exponent of the unsigned magnitude grid."""
        b = self._mag_bits
        return 0, 2 * b - 2

    def _mantissa_bits_for_exponent(self, exponent: int) -> int:
        """Mantissa width allocated to a biased exponent interval."""
        b = self._mag_bits
        lo, hi = self._exponent_range()
        if not lo <= exponent <= hi:
            raise ValueError(f"exponent {exponent} outside [{lo}, {hi}] for {self.name}")
        if exponent <= b - 2:
            return exponent
        # MSB=1 region: k = exponent - (b-1) leading zeros consume bits,
        # leaving b-2-k = 2b-3-exponent mantissa bits (Table II).
        return max(0, 2 * b - 3 - exponent)

    # ------------------------------------------------------------------
    # Code <-> magnitude (unsigned part)
    # ------------------------------------------------------------------
    def _decode_magnitude_code(self, code: int) -> float:
        b = self._mag_bits
        if code == 0:
            return 0.0
        msb = (code >> (b - 1)) & 1
        rest = code & ((1 << (b - 1)) - 1)
        lzd = _leading_zeros(rest, b - 1)
        if msb == 0:
            exponent = (b - 2) - lzd
            man_bits = exponent
        else:
            exponent = (b - 1) + lzd
            man_bits = max(0, (b - 2) - lzd)
        mantissa = rest & ((1 << man_bits) - 1) if man_bits > 0 else 0
        fraction = 1.0 + mantissa / float(1 << man_bits) if man_bits > 0 else 1.0
        return float(2.0 ** exponent) * fraction

    def _encode_magnitude_value(self, value: float) -> int:
        b = self._mag_bits
        if value == 0:
            return 0
        if value < 0:
            raise ValueError("magnitude must be non-negative")
        exponent = int(np.floor(np.log2(value)))
        lo, hi = self._exponent_range()
        if not lo <= exponent <= hi:
            raise ValueError(f"{value!r} not representable in {self.name}")
        man_bits = self._mantissa_bits_for_exponent(exponent)
        frac = value / (2.0 ** exponent) - 1.0
        mantissa = int(round(frac * (1 << man_bits))) if man_bits > 0 else 0
        if man_bits > 0 and not np.isclose(mantissa, frac * (1 << man_bits)):
            raise ValueError(f"{value!r} not on the {self.name} grid")
        if man_bits == 0 and not np.isclose(frac, 0.0):
            raise ValueError(f"{value!r} not on the {self.name} grid")
        if exponent <= b - 2:
            # MSB=0 region: 0 | zeros | 1 | mantissa  (marker at bit `exponent`)
            code = (1 << exponent) | mantissa
        elif exponent < hi:
            # MSB=1 region: 1 | zeros | 1 | mantissa
            k = exponent - (b - 1)
            marker_pos = (b - 2) - k
            code = (1 << (b - 1)) | (1 << marker_pos) | mantissa
        else:
            # top exponent: 1 followed by all zeros
            code = 1 << (b - 1)
        return code

    # ------------------------------------------------------------------
    # NumericType interface
    # ------------------------------------------------------------------
    def _magnitude_grid(self) -> np.ndarray:
        b = self._mag_bits
        vals = [self._decode_magnitude_code(c) for c in range(1 << b)]
        return np.unique(np.asarray(vals, dtype=np.float64))

    def _reference_encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if not self.signed:
            if np.any(values < 0):
                raise ValueError(f"negative value for unsigned {self.name}")
            flat = values.ravel()
            codes = np.fromiter(
                (self._encode_magnitude_value(float(v)) for v in flat),
                dtype=np.int64,
                count=flat.size,
            )
            return codes.reshape(values.shape)
        signs, mags = split_sign(values)
        flat = mags.ravel()
        mag_codes = np.fromiter(
            (self._encode_magnitude_value(float(v)) for v in flat),
            dtype=np.int64,
            count=flat.size,
        ).reshape(values.shape)
        return (signs << self._mag_bits) | mag_codes

    def _reference_decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes < 0) or np.any(codes >= (1 << self.bits)):
            raise ValueError(f"code out of range for {self.name}")
        if self.signed:
            sign = (codes >> self._mag_bits) & 1
            mag_codes = codes & ((1 << self._mag_bits) - 1)
        else:
            sign = np.zeros_like(codes)
            mag_codes = codes
        flat = mag_codes.ravel()
        mags = np.fromiter(
            (self._decode_magnitude_code(int(c)) for c in flat),
            dtype=np.float64,
            count=flat.size,
        ).reshape(codes.shape)
        return np.where(sign == 1, -mags, mags)

    # ------------------------------------------------------------------
    # Introspection used by docs, tests and benchmarks
    # ------------------------------------------------------------------
    def value_table(self) -> List[dict]:
        """Reproduce the rows of the paper's Table II for this format.

        Returns one row per exponent interval of the *unsigned magnitude*
        grid with keys ``pattern``, ``exponent``, ``man_bits``,
        ``values``.
        """
        b = self._mag_bits
        rows = [
            {
                "pattern": "0" * b,
                "exponent": None,
                "man_bits": 0,
                "values": [0.0],
            }
        ]
        lo, hi = self._exponent_range()
        for exponent in range(lo, hi + 1):
            man_bits = self._mantissa_bits_for_exponent(exponent)
            values = [
                (2.0 ** exponent) * (1.0 + m / float(1 << man_bits))
                for m in range(1 << man_bits)
            ]
            pattern = format(
                self._encode_magnitude_value(values[0]), f"0{b}b"
            )
            if man_bits > 0:
                pattern = pattern[: b - man_bits] + "x" * man_bits
            rows.append(
                {
                    "pattern": pattern,
                    "exponent": exponent,
                    "man_bits": man_bits,
                    "values": values,
                }
            )
        return rows

    def region_of(self, exponent: int) -> str:
        """Classify an exponent interval as int-, float- or PoT-like.

        Matches the paper's observation that flint degenerates to ``int``
        in its lowest intervals, to ``float`` in the middle and to
        ``PoT`` at the top (Sec. IV-A).
        """
        b = self._mag_bits
        lo, hi = self._exponent_range()
        if not lo <= exponent <= hi:
            raise ValueError(f"exponent {exponent} outside [{lo}, {hi}]")
        if exponent <= b - 2:
            return "int"
        if self._mantissa_bits_for_exponent(exponent) == 0:
            return "pot"
        return "float"
