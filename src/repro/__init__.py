"""ANT: Adaptive Numerical Data Type for Low-bit DNN Quantization.

Full reproduction of the MICRO 2022 paper (Guo et al.).  Public API:

>>> import numpy as np
>>> from repro import FlintType, select_type, candidate_list
>>> x = np.random.default_rng(0).normal(size=4096)
>>> choice = select_type(x, candidate_list("ip-f", bits=4, signed=True))
>>> choice.kind in {"int", "pot", "flint"}
True

Subpackages
-----------
``repro.dtypes``     numeric type primitives (flint/int/float/PoT)
``repro.quant``      the ANT quantization framework (Algorithms 1-2,
                     mixed precision, QAT)
``repro.baselines``  BitFusion / OLAccel / GOBO / BiScaled / AdaFloat
``repro.nn``         numpy autograd + model zoo substrate
``repro.data``       synthetic datasets and distribution samplers
``repro.hardware``   decoders, TypeFusion PEs, systolic/memory/area
                     models, the six simulated accelerators
``repro.analysis``   tensor statistics and report formatting
``repro.zoo``        trained-model cache
"""

from repro.dtypes import (
    FlintType,
    FloatType,
    GridCodec,
    IntType,
    NumericType,
    PoTType,
    candidate_list,
    get_type,
)
from repro.quant import (
    Granularity,
    MixedPrecisionSearch,
    ModelQuantizer,
    TensorQuantizer,
    quantize_dequantize,
    search_scale,
    search_scale_per_channel,
    select_type,
)

__version__ = "1.0.0"

__all__ = [
    "FlintType",
    "FloatType",
    "IntType",
    "PoTType",
    "NumericType",
    "get_type",
    "candidate_list",
    "select_type",
    "search_scale",
    "search_scale_per_channel",
    "GridCodec",
    "quantize_dequantize",
    "TensorQuantizer",
    "Granularity",
    "ModelQuantizer",
    "MixedPrecisionSearch",
    "__version__",
]
