"""Micro-benchmark: codec kernels and calibration vs the seed paths.

Writes ``BENCH_quant.json`` at the repository root with elements/sec
for the quantize and encode/decode kernels and wall-clock seconds for
an end-to-end ``ModelQuantizer.calibrate``, each measured against the
retained pre-codec reference implementations (the seed code paths), so
the performance trajectory is tracked from this PR onward.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.dtypes import get_type
from repro.nn import Linear, ReLU, Sequential
from repro.quant.framework import ModelQuantizer, quantizable_layers
from repro.quant.scale_search import search_scale_reference

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_quant.json"

RNG = np.random.default_rng(0)


def _best_seconds(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _kernel_entry(n_elements: int, fast_s: float, ref_s: float) -> dict:
    return {
        "elements": n_elements,
        "elements_per_sec": n_elements / fast_s,
        "reference_elements_per_sec": n_elements / ref_s,
        "seconds": fast_s,
        "reference_seconds": ref_s,
        "speedup": ref_s / fast_s,
    }


def _reference_select(x, candidates):
    """Seed Algorithm 2: sequential scale search per candidate."""
    best = None
    best_dtype = None
    for dtype in candidates:
        result = search_scale_reference(x, dtype)
        if best is None or result.mse < best.mse:
            best, best_dtype = result, dtype
    return best_dtype


def _reference_calibrate(model, batch, combination="ip-f", bits=4):
    """Replicates the seed ModelQuantizer.calibrate inner loop:
    sequential sweeps, no subsampling, Python loop over channels."""
    mq = ModelQuantizer(model, combination, bits)
    captured = mq._capture_inputs(batch)
    registry = mq.registry
    for name, module in quantizable_layers(model).items():
        weight = np.asarray(module.weight.data, dtype=np.float64)
        w_dtype = _reference_select(
            weight, registry.candidates(combination, bits, signed=True)
        )
        for channel in range(weight.shape[0]):
            search_scale_reference(weight[channel], w_dtype)
        act = captured[name]
        act_signed = bool(np.min(act) < 0.0)
        a_dtype = _reference_select(
            act, registry.candidates(combination, bits, signed=act_signed)
        )
        search_scale_reference(act, a_dtype)


def test_perf_quant_kernels(emit):
    results = {}

    # ------------------------------------------------------------------
    # flint encode / decode: LUT gather vs scalar closed-form loop
    # ------------------------------------------------------------------
    flint = get_type("flint4")
    n_codes = 1 << 18
    codes = RNG.integers(0, 1 << flint.bits, size=n_codes)
    values = flint.decode(codes)

    fast = _best_seconds(lambda: flint.encode(values))
    ref = _best_seconds(lambda: flint._reference_encode(values), repeats=1)
    results["flint_encode"] = _kernel_entry(n_codes, fast, ref)

    fast = _best_seconds(lambda: flint.decode(codes))
    ref = _best_seconds(lambda: flint._reference_decode(codes), repeats=1)
    results["flint_decode"] = _kernel_entry(n_codes, fast, ref)

    # ------------------------------------------------------------------
    # quantize: midpoint searchsorted vs two-gather neighbour compare
    # ------------------------------------------------------------------
    x = RNG.normal(size=1 << 20) * 4.0
    fast = _best_seconds(lambda: flint.quantize(x, 0.37))
    ref = _best_seconds(lambda: flint._quantize_reference(x, 0.37))
    results["quantize"] = _kernel_entry(x.size, fast, ref)

    # ------------------------------------------------------------------
    # end-to-end calibration: batched + subsampled vs seed sequential
    # ------------------------------------------------------------------
    def make_model():
        rng_model = np.random.default_rng(1)
        model = Sequential(Linear(256, 128), ReLU(), Linear(128, 64))
        for p in model.parameters():
            p.data = rng_model.normal(size=p.data.shape) * 0.2
        return model

    batch = RNG.normal(size=(2048, 256))
    n_calib_elems = int(
        sum(
            int(m.weight.data.size) for m in quantizable_layers(make_model()).values()
        )
        + batch.size
        + 2048 * 128  # second layer's activation
    )

    model = make_model()
    fast = _best_seconds(
        lambda: ModelQuantizer(model, "ip-f", 4).calibrate(batch), repeats=3
    )
    ref = _best_seconds(lambda: _reference_calibrate(make_model(), batch), repeats=1)
    results["calibrate"] = _kernel_entry(n_calib_elems, fast, ref)

    results["meta"] = {
        "description": "codec kernels vs retained seed reference paths",
        "dtype": flint.name,
        "units": "elements_per_sec; speedup = reference_seconds / seconds",
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")

    lines = ["quant kernel perf (vs seed reference)"]
    for key in ("flint_encode", "flint_decode", "quantize", "calibrate"):
        entry = results[key]
        lines.append(
            f"{key:>14}: {entry['elements_per_sec']:.3e} elem/s, "
            f"speedup {entry['speedup']:.1f}x"
        )
    emit("BENCH_quant", "\n".join(lines))

    # Acceptance floors for this PR: >= 10x on flint encode/decode LUTs,
    # >= 3x on end-to-end calibration.
    assert results["flint_encode"]["speedup"] >= 10.0
    assert results["flint_decode"]["speedup"] >= 10.0
    assert results["calibrate"]["speedup"] >= 3.0
