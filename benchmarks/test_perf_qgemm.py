"""Code-domain GEMM benchmark: qgemm backend vs the float backend.

Writes ``BENCH_qgemm.json`` at the repository root.  For every zoo
workload it serves the same batch through the frozen engine twice --
``backend="float"`` (decode-once + BLAS) and ``backend="qgemm"``
(partial-product LUT execution on packed codes) -- in float32 serving
mode, plus the float64 bit-exact parity check against the float
engine.  Alongside the timings it records what the qgemm run makes
possible and the float run cannot provide:

* per-layer executed code MACs, LUT lookups, and packed-byte traffic
  from the :class:`~repro.qgemm.CostMeter`;
* those counts bridged into the ``hardware/`` models: ANT-OS
  cycles/energy split and the tensor-core roofline, driven by the
  *executed* workload instead of analytic layer tables;
* LUT build cost and its amortization (cold ``set_backend`` includes
  base + pair table construction and weight unpacking; warm recompiles
  hit the process-wide table caches), with the pair tables' own
  cold/warm build time broken out;
* which accumulation kernel each layer compiled to
  (pair / pair-int / popcount / bincount / gather) and the per-kernel
  layer counts.

The qgemm backend is a software model of the paper's
decode-in-front-of-MAC dataflow.  Since the pair-packed/integer
kernels replaced one-gather-per-MAC, its serving speed is expected to
sit within striking distance of the float backend (the committed
aggregate gates a floor on ``geomean_qgemm_vs_float``), while the
numbers that matter most remain the executed traffic/MAC counts
feeding the hardware model.  Correctness (1e-9 float64 parity,
float32 argmax parity) is asserted; speed is recorded and floor-gated
in ``check_bench_regression.py`` against same-run ratios only.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.qgemm import (
    CostMeter,
    QGemmBackend,
    lut_footprint_report,
    simulate_executed,
    simulate_executed_tensorcore,
)
from repro.qgemm.luts import pair_product_lut, partial_product_lut
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch

from _support import WORKLOADS, measure_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_qgemm.json"

N_SAMPLES = 256
BATCH = 128
PARITY_SAMPLES = 48  # float64 parity slice (code-domain float64 is slow)

REPEATS = 3
WARMUP = 1


def test_perf_qgemm(zoo, emit):
    results = {}
    rows = []
    pairs_seen = set()
    for workload in WORKLOADS:
        entry = zoo(workload)
        dataset = entry.dataset
        x = np.concatenate([dataset.x_test] * 2)[:N_SAMPLES]

        quantizer = ModelQuantizer(entry.model, "ip-f", 4)
        quantizer.calibrate(calibration_batch(dataset)).apply()
        try:
            frozen = quantizer.freeze(model_name=workload)
        finally:
            quantizer.remove()
        for export in frozen.exports.values():
            pairs_seen.add((export.weight.dtype_name, export.act_dtype_name))

        # float64 parity: code-domain must match the float engine's
        # bit-exact mode within the runtime's 1e-9 bar
        xp = x[:PARITY_SAMPLES]
        reference64 = frozen.predict(xp, batch_size=BATCH)
        exact = float(
            np.abs(
                frozen.set_backend("qgemm").predict(xp, batch_size=BATCH)
                - reference64
            ).max()
        )
        assert exact <= 1e-9, (workload, exact)

        # float32 serving comparison
        frozen.set_backend("float").astype(np.float32)
        float_out = frozen.predict(x, batch_size=BATCH)
        float_s, float_spread = measure_seconds(
            lambda: frozen.predict(x, batch_size=BATCH), REPEATS, WARMUP
        )

        # cold set_backend builds base + pair LUTs and unpacks weights;
        # warm recompiles hit the process-wide table caches
        pair_product_lut.cache_clear()
        partial_product_lut.cache_clear()
        t0 = time.perf_counter()
        frozen.set_backend("qgemm")
        lut_build_cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        frozen.set_backend("qgemm")
        lut_build_warm_s = time.perf_counter() - t0

        # the pair tables' own build cost, isolated from compile work
        wl_pairs = sorted(
            {
                (e.weight.dtype_name, e.act_dtype_name)
                for e in frozen.exports.values()
                if e.act_dtype_name is not None
            }
        )
        pair_product_lut.cache_clear()
        t0 = time.perf_counter()
        for p in wl_pairs:
            pair_product_lut(*p)
        pair_build_cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for p in wl_pairs:
            pair_product_lut(*p)
        pair_build_warm_s = time.perf_counter() - t0

        qgemm_out = frozen.predict(x, batch_size=BATCH)
        parity = float(
            np.mean(np.argmax(qgemm_out, axis=1) == np.argmax(float_out, axis=1))
        )
        assert parity >= 0.99, (workload, parity)
        qgemm_s, qgemm_spread = measure_seconds(
            lambda: frozen.predict(x, batch_size=BATCH), REPEATS, WARMUP
        )

        # executed-workload cost accounting + hardware bridge (one
        # metered pass; counts scale linearly in samples)
        meter = CostMeter()
        frozen.set_backend(QGemmBackend(meter=meter))
        frozen.predict(x, batch_size=BATCH)
        sim = simulate_executed(meter, "ant-os")
        tc = simulate_executed_tensorcore(meter)
        summary = meter.summary()
        kernel_layers: dict = {}
        for cost in meter.layers.values():
            kernel_layers[cost.kernel] = kernel_layers.get(cost.kernel, 0) + 1

        results[workload] = {
            "samples": N_SAMPLES,
            "float32_float_backend_seconds": float_s,
            "float32_qgemm_backend_seconds": qgemm_s,
            "qgemm_vs_float": float_s / qgemm_s,
            "float64_max_abs_diff": exact,
            "float32_argmax_parity": parity,
            "lut_build_cold_seconds": lut_build_cold_s,
            "lut_build_warm_seconds": lut_build_warm_s,
            "lut_build_amortized_over_forwards": (
                (lut_build_cold_s - lut_build_warm_s) / qgemm_s
                if qgemm_s > 0
                else None
            ),
            "pair_table_build_cold_seconds": pair_build_cold_s,
            "pair_table_build_warm_seconds": pair_build_warm_s,
            "kernel_layers": kernel_layers,
            "executed": {
                "total_code_macs": summary["total_code_macs"],
                "total_lut_lookups": summary["total_lut_lookups"],
                "total_word_ops": summary["total_word_ops"],
                "total_weight_traffic_bytes": summary["total_weight_traffic_bytes"],
                "total_act_traffic_bytes": summary["total_act_traffic_bytes"],
                "total_packed_traffic_bytes": summary["total_packed_traffic_bytes"],
                "per_layer": summary["layers"],
            },
            "hardware_bridge": {
                "ant_os_cycles": sim.cycles,
                "ant_os_energy_pj": {
                    k: float(v) for k, v in sim.energy_pj.items()
                },
                "ant_os_total_energy_pj": float(sim.total_energy_pj),
                "tensorcore_seconds": tc.seconds,
                "tensorcore_math_bound_layers": tc.math_bound_layers,
                "tensorcore_memory_bound_layers": tc.memory_bound_layers,
            },
            "timing_spread_max_over_min": {
                "float_backend": float_spread,
                "qgemm_backend": qgemm_spread,
            },
        }
        kernel_mix = ",".join(
            f"{k}:{n}" for k, n in sorted(kernel_layers.items())
        )
        rows.append(
            f"{workload:>12}: float {N_SAMPLES/float_s:8.0f} smp/s | qgemm "
            f"{N_SAMPLES/qgemm_s:7.0f} smp/s ({float_s/qgemm_s:5.2f}x) | "
            f"{kernel_mix} | "
            f"{summary['total_code_macs']/1e6:7.1f} M MACs "
            f"{summary['total_packed_traffic_bytes']/1024:8.1f} KiB packed | "
            f"ant-os {sim.cycles:>9} cyc"
        )

    ratios = [results[w]["qgemm_vs_float"] for w in WORKLOADS]
    results["aggregate"] = {
        "geomean_qgemm_vs_float": float(np.exp(np.mean(np.log(ratios)))),
        "lut_footprints": lut_footprint_report(sorted(pairs_seen)),
    }
    results["meta"] = {
        "description": (
            "code-domain (qgemm) vs float execution backend through "
            "FrozenModel.predict with compile-time-selected pair/"
            "pair-int/popcount/bincount/gather kernels, plus executed "
            "MAC/traffic counts bridged into the hardware "
            "latency/energy models"
        ),
        "batch": BATCH,
        "combination": "ip-f",
        "bits": 4,
        "accelerator": "ant-os",
        "timing_method": "median",
        "timing_repeats": REPEATS,
        "timing_warmup": WARMUP,
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")

    agg = results["aggregate"]
    rows.append(
        f"{'geomean':>12}: qgemm at {agg['geomean_qgemm_vs_float']:5.2f}x "
        f"the float backend"
    )
    emit("BENCH_qgemm", "code-domain GEMM backend vs float backend\n" + "\n".join(rows))

    # Correctness gates plus a same-run performance floor: the pair/
    # popcount kernels must keep code-domain serving within striking
    # distance of BLAS (the committed floor lives in
    # check_bench_regression.py; this one only catches catastrophes).
    for workload in WORKLOADS:
        assert results[workload]["float64_max_abs_diff"] <= 1e-9
        assert results[workload]["float32_argmax_parity"] >= 0.99
        bridge = results[workload]["hardware_bridge"]
        assert bridge["ant_os_cycles"] > 0
        assert bridge["tensorcore_seconds"] > 0
    assert agg["geomean_qgemm_vs_float"] >= 0.05
