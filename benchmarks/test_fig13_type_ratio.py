"""Fig. 13 (top): ratio of tensor types per scheme.

ANT's tensor mix (flint/PoT/int at 4 bits, a small int8 share after
escalation) against BitFusion's int4/int8 split and OLAccel's
element-wise 4/8-bit split.  Shape to reproduce: ANT keeps ~90% of
tensors at 4 bits, far more than BitFusion.
"""

from benchmarks._support import WORKLOADS, scheme_type_ratios
from repro.analysis import format_table
from repro.baselines.bitfusion import BitFusionQuantizer
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch


def _run(zoo):
    table = {}
    for workload in WORKLOADS:
        entry = zoo(workload)
        batch = calibration_batch(entry.dataset, 64)

        quantizer = ModelQuantizer(entry.model, "ip-f", bits=4)
        quantizer.calibrate(batch)
        scores = quantizer.layer_sensitivity()
        top = max(0, round(0.1 * len(scores)))
        for name in sorted(scores, key=scores.get, reverse=True)[:top]:
            quantizer.escalate_layer(name)
        ant = scheme_type_ratios(quantizer.report().type_counts)
        ant_low_bit = quantizer.report().low_bit_tensor_fraction
        quantizer.remove()

        scheme = BitFusionQuantizer(mse_budget=0.01)
        eight = 0
        total = 0
        for config in quantizer.layers.values():
            for sample, calibrate in (
                (config.weight_sample, scheme.calibrate_weight),
                (config.input_sample, scheme.calibrate_activation),
            ):
                total += 1
                if calibrate(sample)["bits"] == 8:
                    eight += 1
        table[workload] = {
            "ant": ant,
            "ant_4bit_ratio": ant_low_bit,
            "bitfusion_4bit_ratio": (total - eight) / total,
        }
    return table


def test_fig13_tensor_type_ratio(benchmark, emit, zoo):
    table = benchmark.pedantic(lambda: _run(zoo), rounds=1, iterations=1)

    rows = []
    for workload, data in table.items():
        ant = data["ant"]
        rows.append(
            [
                workload,
                ant.get("int4", 0.0),
                ant.get("pot4", 0.0),
                ant.get("flint4", 0.0),
                ant.get("int8", 0.0),
                data["ant_4bit_ratio"],
                data["bitfusion_4bit_ratio"],
            ]
        )
    rendered = format_table(
        ["workload", "ANT int4", "ANT pot4", "ANT flint4", "ANT int8",
         "ANT 4-bit total", "BitFusion 4-bit"],
        rows,
        title="Fig. 13 (top): tensor type ratios",
        float_fmt="{:.2f}",
    )
    emit("fig13_type_ratio", rendered)

    ant_ratios = [d["ant_4bit_ratio"] for d in table.values()]
    bf_ratios = [d["bitfusion_4bit_ratio"] for d in table.values()]
    # ANT keeps the vast majority of tensors at 4 bits...
    assert min(ant_ratios) >= 0.75
    assert sum(ant_ratios) / len(ant_ratios) >= 0.85
    # ...and at least matches BitFusion's 4-bit share on average.
    assert sum(ant_ratios) >= sum(bf_ratios) - 1e-9
