"""Table VI: weight-only BERT quantization, ANT vs GOBO at 3/4 bits.

The paper's point: fixed-length ANT matches GOBO's variable-length
clustering accuracy while remaining hardware-aligned.
"""

from repro.analysis import format_table
from repro.baselines import BaselineModelQuantizer, GOBOQuantizer
from repro.quant.framework import ModelQuantizer, evaluate
from repro.zoo import calibration_batch


def _weight_only_ant(entry, bits):
    """ANT applied to weights only (activations stay full precision)."""
    quantizer = ModelQuantizer(entry.model, "ip-f", bits)
    quantizer.calibrate(calibration_batch(entry.dataset, 64))
    for config in quantizer.layers.values():
        module = config.module
        from repro.quant.qat import FakeQuantOp

        object.__setattr__(module, "weight_fake_quant", FakeQuantOp(config.weight_quantizer))
    acc = evaluate(entry.model, entry.dataset.x_test, entry.dataset.y_test)
    quantizer.remove()
    return acc


def _run(zoo):
    entry = zoo("bert-mnli")
    dataset = entry.dataset
    rows = []
    for bits in (3, 4):
        ant_acc = _weight_only_ant(entry, bits)

        scheme = GOBOQuantizer(bits)
        driver = BaselineModelQuantizer(entry.model, scheme, weights_only=True)
        driver.calibrate(calibration_batch(dataset, 64)).apply()
        gobo_acc = evaluate(entry.model, dataset.x_test, dataset.y_test)
        gobo_bits = driver.average_bits()
        driver.remove()

        rows.append([f"{bits}-bit", ant_acc, gobo_acc, gobo_bits, entry.fp32_accuracy])
    return rows


def test_table6_weight_only_vs_gobo(benchmark, emit, zoo):
    rows = benchmark.pedantic(lambda: _run(zoo), rounds=1, iterations=1)

    rendered = format_table(
        ["width", "ANT", "GOBO", "GOBO eff. bits", "FP32 source"],
        rows,
        title="Table VI: weight-only BERT quantization (MNLI-like task)",
        float_fmt="{:.4f}",
    )
    emit("table6_gobo", rendered)

    for _, ant, gobo, gobo_bits, fp32 in rows:
        # Both schemes stay close to FP32 on weight-only quantization...
        assert fp32 - ant < 0.05
        assert fp32 - gobo < 0.05
        # ...and ANT matches GOBO within a small margin (Table VI's point).
        assert abs(ant - gobo) < 0.05
    # GOBO's effective bits slightly exceed its base width (outliers).
    assert rows[0][3] > 3.0
