"""Ablation: mixed-precision escalation ratio vs average bits and speed.

Sweeps the fraction of layers escalated to 8 bits on the ANT
accelerator and reports average bits and normalized latency -- the
cost curve behind the paper's "up to 91% of tensors at 4 bits" choice.
"""

from benchmarks._support import ant_assignments
from repro.analysis import format_table
from repro.hardware import build_accelerator, workload_layers
from repro.hardware.accelerator import uniform_assignment
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch

FRACTIONS = [0.0, 0.1, 0.25, 0.5, 1.0]


def _run(zoo):
    entry = zoo("resnet18")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset, 64))
    layers = workload_layers("resnet18")
    accelerator = build_accelerator("ant-os")
    reference = accelerator.simulate(
        layers, uniform_assignment(layers, 4, 4)
    ).cycles

    rows = []
    scores = quantizer.layer_sensitivity()
    for fraction in FRACTIONS:
        assignments = ant_assignments(
            quantizer, layers, eight_bit_fraction=fraction, scores=scores
        )
        result = accelerator.simulate(layers, assignments)
        avg_bits = sum(a.weight_bits for a in assignments) / len(assignments)
        rows.append([f"{fraction:.0%}", avg_bits, result.cycles / reference])
    quantizer.remove()
    return rows


def test_ablation_mixed_precision_ratio(benchmark, emit, zoo):
    rows = benchmark.pedantic(lambda: _run(zoo), rounds=1, iterations=1)

    rendered = format_table(
        ["8-bit layer fraction", "avg layer bits", "latency vs all-4bit"],
        rows,
        title="Ablation: mixed-precision escalation cost curve (ResNet-18)",
        float_fmt="{:.3f}",
    )
    emit("ablation_mixed_precision", rendered)

    latencies = [row[2] for row in rows]
    bits = [row[1] for row in rows]
    # Monotone cost: more 8-bit layers -> more bits and more cycles.
    assert bits == sorted(bits)
    assert latencies == sorted(latencies)
    assert latencies[0] == 1.0
    # Full 8-bit costs several times the all-4-bit latency (4 PEs fuse).
    assert latencies[-1] > 2.0
