"""Table III: int-based flint decomposition (base integer << exponent)."""

from repro.analysis import format_table
from repro.hardware.decoder import decode_table

EXPECTED = {
    "0000": (0, 0, 0), "0001": (0, 1, 1), "0010": (0, 2, 2), "0011": (0, 3, 3),
    "0100": (0, 4, 4), "0101": (0, 5, 5), "0110": (0, 6, 6), "0111": (0, 7, 7),
    "1100": (0, 8, 8), "1101": (0, 10, 10), "1110": (0, 12, 12), "1111": (0, 14, 14),
    "1010": (2, 4, 16), "1011": (2, 6, 24), "1001": (4, 2, 32), "1000": (6, 1, 64),
}


def test_table3_int_based_decode(benchmark, emit):
    rows = benchmark.pedantic(lambda: decode_table(4), rounds=1, iterations=1)

    rendered = format_table(
        ["binary", "exponent", "base integer", "value"],
        [[r["binary"], r["exponent"], r["base"], r["value"]] for r in rows],
        title="Table III: int-based flint 4-bit value table",
    )
    emit("table3_int_decoder", rendered)

    for row in rows:
        exp, base, value = EXPECTED[row["binary"]]
        assert (row["exponent"], row["base"], row["value"]) == (exp, base, value)
