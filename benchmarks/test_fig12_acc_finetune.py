"""Fig. 12: accuracy loss with quantization-aware fine-tuning.

Same combinations as Fig. 11 plus the mixed-precision ANT4-8, each
fine-tuned with the identical STE recipe (the paper's fair-comparison
protocol).  Shape to reproduce: fine-tuning recovers most of the PTQ
loss; IP-F / FIP-F reach the smallest residual loss; ANT4-8 closes to
(near) zero.
"""

from benchmarks._support import COMBOS, WORKLOADS
from repro.quant import MixedPrecisionSearch
from repro.analysis import format_table
from repro.quant.framework import ModelQuantizer, evaluate
from repro.quant.qat import finetune
from repro.zoo import calibration_batch

FINETUNE_STEPS = 30
COLUMNS = COMBOS + ["ant4-8"]


def _run(zoo):
    table = {}
    for workload in WORKLOADS:
        entry = zoo(workload)
        dataset = entry.dataset
        batch = calibration_batch(dataset, 64)
        # Full state incl. BatchNorm running stats: fine-tuning runs the
        # model in train mode, and restoring only named_parameters()
        # would leak shifted BN statistics into every later combo.
        snapshot = entry.model.state_dict()
        losses = {}
        for combo in COMBOS:
            quantizer = ModelQuantizer(entry.model, combo, bits=4)
            quantizer.calibrate(batch).apply()
            finetune(entry.model, dataset.x_train, dataset.y_train,
                     steps=FINETUNE_STEPS, lr=5e-4)
            accuracy = evaluate(entry.model, dataset.x_test, dataset.y_test)
            quantizer.remove()
            entry.model.load_state_dict(snapshot)
            losses[combo] = entry.fp32_accuracy - accuracy

        # ANT4-8: IP-F plus layer-wise escalation with fine-tuning.
        quantizer = ModelQuantizer(entry.model, "ip-f", bits=4)
        quantizer.calibrate(batch).apply()
        search = MixedPrecisionSearch(
            quantizer,
            evaluate_fn=lambda: evaluate(entry.model, dataset.x_test, dataset.y_test),
            baseline_accuracy=entry.fp32_accuracy,
            threshold=0.01,
            finetune_fn=lambda: finetune(
                entry.model, dataset.x_train, dataset.y_train,
                steps=FINETUNE_STEPS, lr=5e-4,
            ),
            max_rounds=3,
        )
        result = search.run()
        losses["ant4-8"] = result.accuracy_loss
        quantizer.remove()
        entry.model.load_state_dict(snapshot)
        table[workload] = losses
    return table


def test_fig12_accuracy_loss_with_finetune(benchmark, emit, zoo):
    table = benchmark.pedantic(lambda: _run(zoo), rounds=1, iterations=1)

    rows = [
        [workload] + [losses[c] for c in COLUMNS]
        for workload, losses in table.items()
    ]
    rendered = format_table(
        ["workload"] + COLUMNS,
        rows,
        title="Fig. 12: accuracy loss (FP32 - quantized) with fine-tuning",
        float_fmt="{:+.4f}",
    )
    emit("fig12_acc_finetune", rendered)

    mean = {c: sum(l[c] for l in table.values()) / len(table) for c in COLUMNS}
    # Fine-tuned flint combos stay close to FP32 on average...
    assert mean["ip-f"] < 0.10
    # ...and the mixed-precision ANT4-8 does at least as well as 4-bit IP-F.
    assert mean["ant4-8"] <= mean["ip-f"] + 0.02
    # Every workload ends within a few points of FP32 under ANT4-8.
    assert all(losses["ant4-8"] < 0.12 for losses in table.values())
