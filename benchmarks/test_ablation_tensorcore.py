"""Ablation: ANT adoption on a tensor-core GPU (Sec. VI-A).

Compares an int8-everything tensor core against ANT's mostly-4-bit mix
on the A100 throughput envelope.  The available gain is bounded by the
int4/int8 TOPS ratio (2x) and by memory-bound layers, which is exactly
why the dedicated ANT accelerator (Fig. 13) shows larger gains than a
GPU retrofit.
"""

from benchmarks._support import WORKLOADS, ant_assignments
from repro.analysis import format_table
from repro.analysis.reporting import geomean
from repro.hardware.accelerator import uniform_assignment
from repro.hardware.tensorcore import simulate_tensorcore
from repro.hardware.workloads import workload_layers
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch


def _run(zoo):
    rows = []
    speedups = []
    for workload in WORKLOADS:
        entry = zoo(workload)
        quantizer = ModelQuantizer(entry.model, "ip-f", 4)
        quantizer.calibrate(calibration_batch(entry.dataset, 64))
        layers = workload_layers(workload)
        ant = simulate_tensorcore(layers, ant_assignments(quantizer, layers))
        int8 = simulate_tensorcore(layers, uniform_assignment(layers, 8, 8))
        quantizer.remove()
        speedup = int8.seconds / ant.seconds
        speedups.append(speedup)
        rows.append(
            [workload, int8.seconds * 1e3, ant.seconds * 1e3, speedup,
             ant.memory_bound_layers]
        )
    rows.append(["geomean", "", "", geomean(speedups), ""])
    return rows


def test_ablation_tensorcore_adoption(benchmark, emit, zoo):
    rows = benchmark.pedantic(lambda: _run(zoo), rounds=1, iterations=1)

    rendered = format_table(
        ["workload", "int8 (ms)", "ANT (ms)", "speedup", "mem-bound layers"],
        rows,
        title="Ablation: ANT on an A100-like tensor core vs int8",
        float_fmt="{:.3f}",
    )
    emit("ablation_tensorcore", rendered)

    geo = rows[-1][3]
    # ANT helps on the GPU too, but the gain is capped by the 2x
    # int4/int8 TOPS ratio -- well below the dedicated accelerator's
    # 2.8x-over-BitFusion at iso-area.
    assert 1.0 < geo <= 2.0 + 1e-9
