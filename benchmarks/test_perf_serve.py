"""Parallel-serving benchmark: worker-pool scaling vs hook serving.

Writes ``BENCH_serve.json`` at the repository root.  For every zoo
workload it:

* freezes a calibrated model to a packed checkpoint and measures the
  single-process baselines (hook serving with batches of 128, frozen
  float32 ``predict``, and the weight-only engine);
* serves the same samples through :class:`repro.serve.ServingPool` at
  1 / 2 / 4 workers (``REPRO_SERVE_BENCH_WORKERS`` overrides the
  counts, which is how CI runs a 2-worker smoke) via ``map_predict``,
  recording aggregate samples/sec per worker count -- the scaling
  curve;
* asserts pooled results are **bit-identical** to the single-process
  ``predict(x, batch_size, pad_batches=True)`` reference.

Every timing is the median of ``REPEATS`` runs after a warmup run,
with the max/min spread recorded -- this container's run-to-run noise
is large (+-40% has been observed), so the committed JSON records both
the numbers and the noise bar.  Worker scaling is bounded by the
machine: on a single-core host the pool can only preserve single-
process throughput (the curve stays flat), while multi-core hosts
multiply it.  The committed artifact is the record of what this
machine measured; the assertion floors are deliberately conservative.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.nn.autograd import Tensor, no_grad
from repro.quant.framework import ModelQuantizer
from repro.serve import (
    ModelRegistry,
    ModelSpec,
    PoolAutoscaler,
    PoolConfig,
    ServingPool,
)
from repro.zoo import cache_dir, calibration_batch

from _support import WORKLOADS, measure_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_serve.json"

N_SAMPLES = 2048
HOOK_BATCH = 128      # evaluate()-style serving loop, the PR-2 baseline
SERVE_BATCH = 256     # the pool's fixed forward shape
REPEATS = 3
WARMUP = 1

_default_counts = "1,2,4"
WORKER_COUNTS = [
    int(n)
    for n in os.environ.get("REPRO_SERVE_BENCH_WORKERS", _default_counts).split(",")
]


def _measure_seconds(fn):
    return measure_seconds(fn, REPEATS, WARMUP)


def test_perf_serve(zoo, emit):
    results = {}
    rows = []
    n_cores = os.cpu_count() or 1
    for workload in WORKLOADS:
        entry = zoo(workload)
        dataset = entry.dataset
        tokens = dataset.input_kind == "tokens"
        reps = max(1, -(-N_SAMPLES // dataset.x_test.shape[0]))
        x = np.concatenate([dataset.x_test] * reps)[:N_SAMPLES]

        quantizer = ModelQuantizer(entry.model, "ip-f", 4)
        quantizer.calibrate(calibration_batch(dataset)).apply()
        try:
            frozen32 = quantizer.freeze(model_name=workload, dtype=np.float32)
            weight_only32 = quantizer.freeze(
                model_name=workload, dtype=np.float32, weight_only=True
            )
            ckpt = cache_dir() / f"serve_bench_{workload}.npz"
            quantizer.freeze(model_name=workload).save(ckpt)

            def hook_serve():
                with no_grad():
                    for start in range(0, N_SAMPLES, HOOK_BATCH):
                        batch = x[start: start + HOOK_BATCH]
                        entry.model(batch if tokens else Tensor(batch))

            hook_s, hook_spread = _measure_seconds(hook_serve)
            single_s, single_spread = _measure_seconds(
                lambda: frozen32.predict(x, SERVE_BATCH)
            )
            wo_s, wo_spread = _measure_seconds(
                lambda: weight_only32.predict(x, SERVE_BATCH)
            )
        finally:
            quantizer.remove()

        reference = frozen32.predict(x, SERVE_BATCH, pad_batches=True)
        scaling = {}
        for n_workers in WORKER_COUNTS:
            with ServingPool(
                ckpt, n_workers=n_workers, batch_size=SERVE_BATCH
            ) as pool:
                # correctness first: pooled serving must be bit-identical
                # to the single-process fixed-shape reference
                pooled = pool.map_predict(x)
                assert pooled.dtype == reference.dtype
                assert np.array_equal(pooled, reference), (workload, n_workers)
                pool_s, pool_spread = _measure_seconds(
                    lambda: pool.map_predict(x)
                )
            scaling[str(n_workers)] = {
                "seconds": pool_s,
                "samples_per_sec": N_SAMPLES / pool_s,
                "speedup_vs_hook": hook_s / pool_s,
                "timing_spread_max_over_min": pool_spread,
            }

        # streaming map_predict: iterator-in/iterator-out serving with
        # bounded parent memory (workers x prefetch shards resident),
        # measured at the highest worker count with prefetch=2 to hide
        # the parent round trip per shard
        stream_workers = max(WORKER_COUNTS)
        with ServingPool(
            ckpt, n_workers=stream_workers, batch_size=SERVE_BATCH, prefetch=2
        ) as pool:
            residency = {}

            def stream_once():
                out = np.empty_like(reference)
                row_iter = pool.map_predict_stream(
                    (x[s: s + 173] for s in range(0, N_SAMPLES, 173)),
                    shard_size=SERVE_BATCH,
                    residency=residency,
                )
                for i, row in enumerate(row_iter):
                    out[i] = row
                return out

            # correctness first: streamed rows must be bit-identical to
            # the single-process fixed-shape reference, in order
            assert np.array_equal(stream_once(), reference), workload
            stream_s, stream_spread = _measure_seconds(stream_once)
        bulk_s = scaling[str(stream_workers)]["seconds"]
        streaming = {
            "workers": stream_workers,
            "prefetch": 2,
            "seconds": stream_s,
            "samples_per_sec": N_SAMPLES / stream_s,
            "speedup_vs_hook": hook_s / stream_s,
            "ratio_vs_bulk_map_predict": bulk_s / stream_s,
            "peak_resident_shards": residency["peak_shards"],
            "resident_shard_cap": residency["cap_shards"],
            "shard_size": residency["shard_size"],
            "timing_spread_max_over_min": stream_spread,
        }

        results[workload] = {
            "samples": N_SAMPLES,
            "streaming": streaming,
            "hook_serving_seconds": hook_s,
            "hook_samples_per_sec": N_SAMPLES / hook_s,
            "frozen_float32_seconds": single_s,
            "frozen_float32_samples_per_sec": N_SAMPLES / single_s,
            "frozen_float32_speedup_vs_hook": hook_s / single_s,
            "weight_only_float32_seconds": wo_s,
            "weight_only_float32_samples_per_sec": N_SAMPLES / wo_s,
            "weight_only_float32_speedup_vs_hook": hook_s / wo_s,
            "pool_scaling": scaling,
            "timing_spread_max_over_min": {
                "hook_serving": hook_spread,
                "frozen_float32": single_spread,
                "weight_only_float32": wo_spread,
            },
        }
        if workload == WORKLOADS[0]:
            elastic_ctx = (ckpt, x, reference)

        best = max(scaling.values(), key=lambda s: s["samples_per_sec"])
        rows.append(
            f"{workload:>12}: hook {N_SAMPLES/hook_s:8.0f} smp/s | "
            f"1-proc f32 {hook_s/single_s:4.1f}x  w/o-act {hook_s/wo_s:4.1f}x | pool "
            + "  ".join(
                f"{n}w {scaling[str(n)]['speedup_vs_hook']:4.1f}x"
                for n in WORKER_COUNTS
            )
            + f" | stream {hook_s/stream_s:4.1f}x"
            + f" | best {best['samples_per_sec']:8.0f} smp/s"
        )

    # elastic autoscaling: a 1-worker pool under a sustained burst must
    # grow toward max_workers and shrink back to the floor once idle,
    # serving bit-identically throughout the scaling events
    elastic_ckpt, elastic_x, elastic_ref = elastic_ctx
    peak_workers = 1
    with ServingPool(elastic_ckpt, n_workers=1, batch_size=SERVE_BATCH) as pool:
        scaler = PoolAutoscaler(
            pool,
            min_workers=1,
            max_workers=max(WORKER_COUNTS),
            latency_budget_s=0.05,
            idle_window_s=0.5,
            cooldown_s=0.1,
            interval_s=0.05,
        )
        with scaler:
            start = time.perf_counter()
            for _ in range(4):
                out = pool.map_predict(elastic_x)
                peak_workers = max(peak_workers, pool.stats()["workers"])
            burst_s = time.perf_counter() - start
            assert np.array_equal(out, elastic_ref)
            deadline = time.monotonic() + 15.0
            while pool.stats()["workers"] > 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            final_workers = pool.stats()["workers"]
        pool_stats = pool.stats()
    results["elastic"] = {
        "workload": WORKLOADS[0],
        "burst_samples": 4 * N_SAMPLES,
        "burst_seconds": burst_s,
        "burst_samples_per_sec": 4 * N_SAMPLES / burst_s,
        "scale_ups": scaler.n_scale_ups,
        "scale_downs": scaler.n_scale_downs,
        "peak_workers": peak_workers,
        "final_workers": final_workers,
        "retired": pool_stats["retired"],
        "respawns": pool_stats["respawns"],
        "policy": scaler.stats(),
    }

    # telemetry overhead: serve the same workload with REPRO_OBS on and
    # off in the same run (same-run ratio, immune to container drift).
    # set_enabled mirrors the flag into the environment, so the forked
    # workers of each pool agree with the parent.  The CI gate floors
    # off/on at 0.95: instrumentation may cost at most ~5%.
    overhead_workers = min(2, max(WORKER_COUNTS))

    def _pooled_seconds():
        with ServingPool(
            elastic_ckpt, n_workers=overhead_workers, batch_size=SERVE_BATCH
        ) as pool:
            return _measure_seconds(lambda: pool.map_predict(elastic_x))

    prev_obs = obs.set_enabled(True)
    try:
        obs_on_s, obs_on_spread = _pooled_seconds()
        obs.set_enabled(False)
        obs_off_s, obs_off_spread = _pooled_seconds()
    finally:
        obs.set_enabled(prev_obs)
    results["telemetry"] = {
        "workload": WORKLOADS[0],
        "workers": overhead_workers,
        "obs_on_seconds": obs_on_s,
        "obs_off_seconds": obs_off_s,
        "overhead_ratio_off_over_on": obs_off_s / obs_on_s,
        "timing_spread_max_over_min": {
            "obs_on": obs_on_spread,
            "obs_off": obs_off_spread,
        },
    }

    # multi-tenant: the same total work routed through 8 tenants of one
    # pool vs through a single tenant, same pool shape, same run.  All
    # tenants alias the same checkpoint, so per-job compute is
    # identical and the ratio isolates the fleet machinery (registry
    # routing, per-tenant micro-batch queues, per-worker LRU lookups).
    # The CI gate floors the ratio at 0.9: serving a fleet may cost at
    # most ~10% over serving one model.
    n_tenants = 8
    tenant_names = [f"tenant{i}" for i in range(n_tenants)]
    tenant_chunk = elastic_x[:2 * SERVE_BATCH]
    tenant_workers = overhead_workers

    def _fleet_run(names):
        registry = ModelRegistry(
            {name: ModelSpec(elastic_ckpt) for name in names},
            default=names[0],
        )
        pool = ServingPool(
            registry,
            PoolConfig(n_workers=tenant_workers, batch_size=SERVE_BATCH),
        ).start()
        try:
            # correctness first: every tenant must stay bit-identical
            # to the single-process fixed-shape reference
            pooled = pool.predict(tenant_chunk, model=names[-1])
            assert np.array_equal(
                pooled, elastic_ref[: tenant_chunk.shape[0]]
            ), len(names)

            def burst():
                futures = [
                    pool.submit(tenant_chunk, model=names[i % len(names)])
                    for i in range(n_tenants)
                ]
                for future in futures:
                    future.result()

            seconds, spread = _measure_seconds(burst)
            return seconds, spread, pool.metrics()
        finally:
            pool.close()

    one_tenant_s, one_tenant_spread, _ = _fleet_run(tenant_names[:1])
    fleet_s, fleet_spread, fleet_metrics = _fleet_run(tenant_names)

    per_tenant_latency = {}
    for name in tenant_names:
        digest = fleet_metrics.get(
            "serve.job_latency_seconds{model=%s}" % name
        )
        if digest:
            per_tenant_latency[name] = {
                "count": digest["count"],
                "p50_s": digest["p50"],
                "p99_s": digest["p99"],
            }
    cache_hits = sum(
        v for k, v in fleet_metrics.items()
        if k.startswith("serve.model_cache_hits_total{")
    )
    cache_loads = sum(
        v for k, v in fleet_metrics.items()
        if k.startswith("serve.model_cache_loads_total{")
    )
    results["multi_tenant"] = {
        "workload": WORKLOADS[0],
        "tenants": n_tenants,
        "workers": tenant_workers,
        "samples_per_job": int(tenant_chunk.shape[0]),
        "jobs_per_burst": n_tenants,
        "single_tenant_seconds": one_tenant_s,
        "multi_tenant_seconds": fleet_s,
        "geomean_ratio_vs_single_tenant": one_tenant_s / fleet_s,
        "lru_hit_rate": cache_hits / max(1.0, cache_hits + cache_loads),
        "per_tenant_latency": per_tenant_latency,
        "timing_spread_max_over_min": {
            "single_tenant": one_tenant_spread,
            "multi_tenant": fleet_spread,
        },
    }

    aggregate = {}
    for n_workers in WORKER_COUNTS:
        speedups = [
            results[w]["pool_scaling"][str(n_workers)]["speedup_vs_hook"]
            for w in WORKLOADS
        ]
        aggregate[f"geomean_pool_speedup_{n_workers}w"] = float(
            np.exp(np.mean(np.log(speedups)))
        )
    single = [results[w]["frozen_float32_speedup_vs_hook"] for w in WORKLOADS]
    weight_only = [
        results[w]["weight_only_float32_speedup_vs_hook"] for w in WORKLOADS
    ]
    aggregate["geomean_single_process_speedup"] = float(
        np.exp(np.mean(np.log(single)))
    )
    aggregate["geomean_weight_only_speedup"] = float(
        np.exp(np.mean(np.log(weight_only)))
    )
    streaming_speedups = [
        results[w]["streaming"]["speedup_vs_hook"] for w in WORKLOADS
    ]
    aggregate["geomean_streaming_speedup"] = float(
        np.exp(np.mean(np.log(streaming_speedups)))
    )
    aggregate["telemetry_overhead_ratio"] = (
        results["telemetry"]["overhead_ratio_off_over_on"]
    )
    results["aggregate"] = aggregate
    results["meta"] = {
        "description": (
            "parallel serving: worker-pool aggregate throughput vs "
            "single-process hook serving (batches of 128, no_grad), "
            "with per-worker-count scaling and single-core deltas"
        ),
        "hook_batch": HOOK_BATCH,
        "serve_batch": SERVE_BATCH,
        "worker_counts": WORKER_COUNTS,
        "streaming": (
            "map_predict_stream at the highest worker count, prefetch 2, "
            "one serving batch per shard; parent residency bounded at "
            "workers x prefetch shards (recorded per workload)"
        ),
        "elastic": (
            "PoolAutoscaler demo: 1-worker pool bursts to max_workers "
            "and shrinks back after the idle window; subject to the "
            "same container noise caveats as every timing here"
        ),
        "telemetry": (
            "same-run obs-off/obs-on map_predict ratio on the first "
            "workload; the CI gate floors it at 0.95 (instrumentation "
            "may cost at most ~5%)"
        ),
        "multi_tenant": (
            "8 tenants aliasing one checkpoint vs a single tenant, "
            "same pool shape and total work, same run; the CI gate "
            "floors the ratio at 0.9 (fleet routing may cost at most "
            "~10%).  Per-tenant p50/p99 come from the pool's "
            "model-labelled job-latency histograms; the LRU hit rate "
            "counts cache hits over hits+loads across all workers"
        ),
        "cpu_cores": n_cores,
        "combination": "ip-f",
        "bits": 4,
        "timing_method": "median",
        "timing_repeats": REPEATS,
        "timing_warmup": WARMUP,
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows.append(
        "     geomean: 1-proc "
        f"{aggregate['geomean_single_process_speedup']:4.1f}x | pool "
        + "  ".join(
            f"{n}w {aggregate[f'geomean_pool_speedup_{n}w']:4.1f}x"
            for n in WORKER_COUNTS
        )
        + f" | stream {aggregate['geomean_streaming_speedup']:4.1f}x"
        + f" | {n_cores} core(s)"
    )
    elastic = results["elastic"]
    rows.append(
        f"     elastic: burst {elastic['burst_samples_per_sec']:8.0f} smp/s | "
        f"workers 1->{elastic['peak_workers']}->{elastic['final_workers']} | "
        f"ups {elastic['scale_ups']}  downs {elastic['scale_downs']}"
    )
    rows.append(
        f"   telemetry: obs-off/obs-on "
        f"{aggregate['telemetry_overhead_ratio']:4.2f}x "
        f"({overhead_workers}w, same-run)"
    )
    fleet = results["multi_tenant"]
    rows.append(
        f" multi-tenant: {fleet['tenants']} tenants vs 1 "
        f"{fleet['geomean_ratio_vs_single_tenant']:4.2f}x | "
        f"LRU hit rate {fleet['lru_hit_rate']:4.2f} "
        f"({fleet['workers']}w, same-run)"
    )
    emit("BENCH_serve", "pool serving vs hook-based path\n" + "\n".join(rows))

    # Conservative floors (shared runners and single-core hosts; the
    # committed BENCH_serve.json is the record): the pool must clearly
    # beat hook serving at its best worker count and must not collapse
    # relative to one process.
    best_count = max(
        WORKER_COUNTS,
        key=lambda n: aggregate[f"geomean_pool_speedup_{n}w"],
    )
    best_geomean = aggregate[f"geomean_pool_speedup_{best_count}w"]
    assert best_geomean >= 2.0, aggregate
    assert aggregate["geomean_single_process_speedup"] >= 1.5, aggregate
    # elastic floors sit after the write like every floor above: a
    # flaky autoscaler timing run must fail the (non-gating) test, not
    # destroy the artifact the CI ratio gate and upload depend on
    assert elastic["scale_ups"] >= 1, elastic
    assert elastic["final_workers"] == 1, elastic
    # in-test floors for the fleet are looser than the CI ratio gate
    # (0.9): they catch a collapse, the gate catches a regression
    assert fleet["geomean_ratio_vs_single_tenant"] >= 0.5, fleet
    assert fleet["lru_hit_rate"] >= 0.4, fleet
