"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper.  Heavy
state (trained models) is cached by :mod:`repro.zoo`; rendered result
tables are written to ``results/`` and printed, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the full evaluation section.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a rendered table and persist it under results/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def zoo():
    """Lazy loader for trained workloads (trains + caches on first use)."""
    from repro.zoo import trained_model

    cache = {}

    def _get(name: str):
        if name not in cache:
            cache[name] = trained_model(name)
        return cache[name]

    return _get
