"""Gating perf-regression check over freshly produced ``BENCH_*.json``.

Absolute timings on shared CI runners are noise (this project has
observed +-40% run-to-run on one container); what *is* stable enough to
gate on are **ratios between code paths measured in the same run** --
the vectorized codec vs the retained scalar reference, the frozen
engine vs hook serving, the fused plan backend vs the float
interpreter, the pool vs single-process.  Both sides of each
ratio ride the same machine, the same contention, the same BLAS, so a
floor set well below the committed value only trips on a real
regression (a dropped fast path, an accidentally-quadratic kernel), not
on a slow runner.

Floors are deliberately generous: roughly one third of the committed
measurement or lower (e.g. the codec encode speedup is committed at
~350x and gated at 30x), so a genuine 10x regression is caught while
double the documented noise still passes.  Correctness ratios
(argmax parity, float64 parity) are noise-free and gated tight.

Usage (CI runs this right after the bench jobs, gating)::

    python benchmarks/check_bench_regression.py [--root DIR] [--allow-missing]

* ``--root`` -- directory holding the ``BENCH_*.json`` files (default:
  the repository root).
* ``--allow-missing`` -- skip files that do not exist instead of
  failing (local runs that only regenerated one benchmark).

``BENCH_quant.json`` and ``BENCH_infer.json`` are required (CI always
produces them); ``BENCH_serve.json`` and ``BENCH_qgemm.json`` are
checked when present (qgemm gates its geomean-vs-float floor plus the
noise-free float64 parity and argmax-parity rows per workload).  Writes a
markdown table to ``$GITHUB_STEP_SUMMARY`` when set.  Exit status 1 on
any violation.
"""

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (file, json-path, floor, note) -- every metric is a same-run ratio.
CHECKS = [
    # --- BENCH_quant.json: codec kernels vs retained seed reference ---
    ("BENCH_quant.json", ("flint_encode", "speedup"), 30.0,
     "vectorized flint encode vs scalar reference (committed ~350x)"),
    ("BENCH_quant.json", ("flint_decode", "speedup"), 30.0,
     "LUT flint decode vs scalar reference (committed ~290x)"),
    ("BENCH_quant.json", ("calibrate", "speedup"), 3.0,
     "batched scale search vs seed sweep (committed ~8x)"),
    ("BENCH_quant.json", ("quantize", "speedup"), 1.0,
     "fused quantize kernel vs reference path (committed ~1.6x)"),
    # --- BENCH_infer.json: frozen engine vs hook serving, same run ---
    ("BENCH_infer.json", ("aggregate", "geomean_speedup_float32"), 1.5,
     "frozen float32 serving vs hook serving (committed ~2.8-3.5x)"),
    ("BENCH_infer.json", ("aggregate", "geomean_speedup_float64"), 0.8,
     "frozen float64 (bit-exact mode) vs hook serving (committed ~1.3x)"),
    ("BENCH_infer.json", ("aggregate", "geomean_fused_vs_float32"), 1.15,
     "fused plan backend vs float interpreter, same run (committed ~1.4x)"),
    ("BENCH_infer.json", ("microbench", "blocked_attn_vs_baseline"), 1.0,
     "blocked flash-style attention vs the multi-pass baseline at long "
     "sequence lengths, same run (committed ~3-4x per case)"),
    ("BENCH_infer.json", ("microbench", "ln_1pass_vs_baseline"), 1.0,
     "fused-moment LayerNorm vs the multi-pass kernel, same run "
     "(committed ~1.5-1.7x per case)"),
    # correctness ratios: noise-free, gated tight
    ("BENCH_infer.json", ("vgg16", "float32_argmax_parity"), 0.99,
     "frozen float32 argmax parity vs float64"),
    ("BENCH_infer.json", ("resnet18", "float32_argmax_parity"), 0.99,
     "frozen float32 argmax parity vs float64"),
    ("BENCH_infer.json", ("vgg16", "fused_float32_argmax_parity"), 0.99,
     "fused float32 argmax parity vs hook reference"),
    ("BENCH_infer.json", ("resnet18", "fused_float32_argmax_parity"), 0.99,
     "fused float32 argmax parity vs hook reference"),
    # --- BENCH_serve.json (optional): pool vs hook, same run ---
    ("BENCH_serve.json", ("aggregate", "geomean_single_process_speedup"), 1.5,
     "single-process frozen vs hook serving (committed ~3.5x)"),
    ("BENCH_serve.json", ("aggregate", "geomean_weight_only_speedup"), 2.0,
     "weight-only engine vs hook serving (committed ~6x)"),
    ("BENCH_serve.json", ("aggregate", "telemetry_overhead_ratio"), 0.95,
     "obs-off vs obs-on pooled serving, same run (telemetry must "
     "cost <= ~5%)"),
    ("BENCH_serve.json", ("multi_tenant", "geomean_ratio_vs_single_tenant"),
     0.9,
     "8-tenant fleet vs single tenant, same pool shape and total "
     "work, same run (fleet routing may cost <= ~10%)"),
    # --- BENCH_qgemm.json (optional): code-domain kernels vs float ---
    ("BENCH_qgemm.json", ("aggregate", "geomean_qgemm_vs_float"), 0.07,
     "pair/popcount code-domain serving vs float backend, same run "
     "(committed ~0.22x; the gather-only seed measured 0.038x)"),
]

#: per-workload floor for the frozen-vs-hook float32 ratio (committed
#: minimum ~2.3x across the zoo; the bench itself asserts >= 1.5).
INFER_PER_WORKLOAD_FLOOR = 1.1

#: the pool's best worker count must clearly beat hook serving
#: (committed ~3.5x geomean at its best count; bench asserts >= 2.0).
SERVE_BEST_POOL_FLOOR = 1.5

#: files the gate refuses to silently skip without --allow-missing.
REQUIRED = {"BENCH_quant.json", "BENCH_infer.json"}


def get_path(blob, path):
    for key in path:
        if not isinstance(blob, dict) or key not in blob:
            return None
        blob = blob[key]
    return blob


def upper_bound_checks(blobs):
    """Checks where *smaller* is better (parity gaps), derived here."""
    rows = []
    infer = blobs.get("BENCH_infer.json")
    if infer:
        for workload, entry in infer.items():
            if workload in ("aggregate", "meta", "microbench"):
                continue
            diff = entry.get("float64_max_abs_diff")
            rows.append((
                "BENCH_infer.json",
                f"{workload}.float64_max_abs_diff",
                diff,
                diff is not None and diff <= 1e-9,
                "<= 1e-9",
                "frozen float64 vs hook fake-quant output",
            ))
            fused_diff = entry.get("fused_float64_max_abs_diff")
            rows.append((
                "BENCH_infer.json",
                f"{workload}.fused_float64_max_abs_diff",
                fused_diff,
                fused_diff is not None and fused_diff <= 1e-9,
                "<= 1e-9",
                "fused float64 plan vs hook fake-quant output",
            ))
    qgemm = blobs.get("BENCH_qgemm.json")
    if qgemm:
        for workload, entry in qgemm.items():
            if workload in ("aggregate", "meta"):
                continue
            diff = entry.get("float64_max_abs_diff")
            rows.append((
                "BENCH_qgemm.json",
                f"{workload}.float64_max_abs_diff",
                diff,
                diff is not None and diff <= 1e-9,
                "<= 1e-9",
                "code-domain float64 vs the float engine's bit-exact mode",
            ))
    return rows


def derived_floor_checks(blobs):
    """Floors that sweep per-workload / per-worker-count families."""
    rows = []
    infer = blobs.get("BENCH_infer.json")
    if infer:
        for workload, entry in infer.items():
            if workload in ("aggregate", "meta", "microbench"):
                continue
            value = entry.get("speedup_float32")
            rows.append((
                "BENCH_infer.json",
                f"{workload}.speedup_float32",
                value,
                value is not None and value >= INFER_PER_WORKLOAD_FLOOR,
                f">= {INFER_PER_WORKLOAD_FLOOR}",
                "frozen float32 vs hook serving, per workload",
            ))
    qgemm = blobs.get("BENCH_qgemm.json")
    if qgemm:
        for workload, entry in qgemm.items():
            if workload in ("aggregate", "meta"):
                continue
            parity = entry.get("float32_argmax_parity")
            rows.append((
                "BENCH_qgemm.json",
                f"{workload}.float32_argmax_parity",
                parity,
                parity is not None and parity >= 0.99,
                ">= 0.99",
                "code-domain float32 argmax parity vs the float backend",
            ))
    serve = blobs.get("BENCH_serve.json")
    if serve:
        aggregate = serve.get("aggregate", {})
        pool_keys = [k for k in aggregate if k.startswith("geomean_pool_speedup_")]
        if pool_keys:
            best = max(aggregate[k] for k in pool_keys)
            rows.append((
                "BENCH_serve.json",
                "max(geomean_pool_speedup_*)",
                best,
                best >= SERVE_BEST_POOL_FLOOR,
                f">= {SERVE_BEST_POOL_FLOOR}",
                "pool at its best worker count vs hook serving",
            ))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT)
    parser.add_argument("--allow-missing", action="store_true")
    args = parser.parse_args(argv)

    blobs = {}
    missing = []
    for name in sorted({c[0] for c in CHECKS}):
        path = args.root / name
        if path.exists():
            blobs[name] = json.loads(path.read_text())
        else:
            missing.append(name)

    failures = []
    rows = []
    for name, json_path, floor, note in CHECKS:
        if name not in blobs:
            continue
        value = get_path(blobs[name], json_path)
        ok = value is not None and value >= floor
        rows.append((name, ".".join(json_path), value, ok, f">= {floor}", note))
    rows.extend(derived_floor_checks(blobs))
    rows.extend(upper_bound_checks(blobs))

    width = max(len(r[1]) for r in rows) if rows else 0
    lines = ["# Perf regression gate (same-run ratios)", ""]
    lines.append("| metric | measured | floor | status |")
    lines.append("| --- | --- | --- | --- |")
    for name, metric, value, ok, bound, note in rows:
        shown = "missing" if value is None else f"{value:.4g}"
        status = "ok" if ok else "**FAIL**"
        lines.append(f"| `{name}:{metric}` | {shown} | {bound} | {status} |")
        print(
            f"{'PASS' if ok else 'FAIL'}  {metric:<{width}}  "
            f"{shown:>10}  (need {bound}; {note})"
        )
        if not ok:
            failures.append(metric)

    for name in missing:
        required = name in REQUIRED and not args.allow_missing
        print(f"{'FAIL' if required else 'skip'}  {name} not found")
        lines.append(
            f"| `{name}` | missing | required | "
            f"{'**FAIL**' if required else 'skipped'} |"
        )
        if required:
            failures.append(name)

    lines.append("")
    lines.append(
        "Ratios compare code paths measured in the same run, so floors "
        "hold through the documented +-40% container noise; see "
        "CONTRIBUTING.md."
    )
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write("\n".join(lines) + "\n")

    if failures:
        print(f"\nperf regression gate FAILED: {len(failures)} metric(s)")
        return 1
    print(f"\nperf regression gate passed: {len(rows)} ratio(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
