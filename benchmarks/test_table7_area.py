"""Table VII: iso-area configuration and area breakdown of all designs."""

from repro.analysis import format_table
from repro.hardware.area import TABLE_VII, AreaModel, BUFFER_MM2


def test_table7_area_breakdown(benchmark, emit):
    model = AreaModel()

    def run():
        return {design: model.breakdown(design) for design in TABLE_VII}

    breakdowns = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for design, breakdown in breakdowns.items():
        rows.append(
            [
                design,
                breakdown.pe_count,
                breakdown.pe_area_um2,
                breakdown.decoder_count,
                breakdown.core_mm2,
                f"{breakdown.decoder_overhead:.2%}",
                BUFFER_MM2,
            ]
        )
    rendered = format_table(
        ["design", "PEs", "PE area (um2)", "decoders",
         "core (mm2)", "decoder overhead", "buffer (mm2)"],
        rows,
        title="Table VII: configuration and area breakdown (28 nm, iso-area)",
    )
    emit("table7_area", rendered)

    ant = breakdowns["ant"]
    # The paper's headline numbers.
    assert abs(ant.pe_area_um2 - 79.57) < 0.5
    assert 0.001 < ant.decoder_overhead < 0.003          # "about 0.2%"
    assert abs(model.float_pe_ratio() - 3.0) < 1e-9      # float PE ~ 3x int PE
    # All core areas within the iso-area budget band of Table VII.
    for breakdown in breakdowns.values():
        assert 0.315 <= breakdown.core_mm2 <= 0.335
