"""Table II: the 4-bit unsigned flint value table."""

from repro.analysis import format_table
from repro.dtypes import FlintType

EXPECTED_GRID = [0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 24, 32, 64]


def test_table2_flint_value_table(benchmark, emit):
    flint = FlintType(4, signed=False)

    def run():
        return flint.value_table()

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    rendered = format_table(
        ["bits", "exponent", "mantissa bits", "values"],
        [
            [
                row["pattern"],
                "-" if row["exponent"] is None else row["exponent"],
                row["man_bits"],
                ", ".join(f"{v:g}" for v in row["values"]),
            ]
            for row in rows
        ],
        title="Table II: 4-bit unsigned flint (exponent bias -1)",
    )
    emit("table2_flint_values", rendered)

    assert flint.grid.tolist() == EXPECTED_GRID
    values = [v for row in rows for v in row["values"]]
    assert sorted(values) == EXPECTED_GRID
