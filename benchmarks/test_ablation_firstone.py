"""Ablation: first-one adaptive coding vs fixed exponent/mantissa splits.

flint's first-one coding gives each value-magnitude interval its own
mantissa width.  This bench compares 4-bit flint against every fixed
E/M float split at the same width across the distribution families,
showing that no single fixed split dominates flint across families --
the reason a *composite* code beats any one float layout.
"""

import numpy as np

from repro.analysis import format_table
from repro.data import sample_distribution
from repro.dtypes import FlintType, FloatType
from repro.quant import search_scale

FAMILIES = ["uniform", "gaussian", "laplace", "student_t", "gaussian_outliers"]


def _run():
    flint = FlintType(4, signed=True)
    # Signed 4-bit leaves 3 magnitude bits: E1M2, E2M1, E3M0.
    fixed = [FloatType(e, 3 - e, signed=True) for e in (1, 2, 3)]
    rows = []
    for family in FAMILIES:
        x = sample_distribution(family, 16384, seed=4)
        flint_mse = search_scale(x, flint).mse
        ratios = [search_scale(x, f).mse / flint_mse for f in fixed]
        rows.append([family] + ratios + [1.0])
    return rows, [f.name for f in fixed]


def test_ablation_first_one_coding(benchmark, emit):
    rows, names = benchmark.pedantic(_run, rounds=1, iterations=1)

    rendered = format_table(
        ["distribution"] + names + ["flint4"],
        rows,
        title="Ablation: fixed E/M splits vs flint (MSE normalized to flint)",
        float_fmt="{:.3f}",
    )
    emit("ablation_firstone", rendered)

    ratio_matrix = np.array([row[1:-1] for row in rows])
    # Every fixed split loses to flint on at least one family (no fixed
    # E/M layout dominates the adaptive code across distributions)...
    assert np.all(ratio_matrix.max(axis=0) > 1.0)
    # ...and on flint's design target -- the Gaussian-to-heavy-tail body
    # (rows 1-3) -- flint stays within ~1.4x of the best fixed split.
    assert np.all(ratio_matrix[1:4].min(axis=1) > 0.70)
