"""Fig. 13 (middle): normalized latency of six designs x eight workloads.

Bit assignments for ANT and BitFusion are derived from the scaled-model
calibration (mapped onto the real-architecture layer shapes by relative
depth, see benchmarks/_support.py); OLAccel/BiScaled/AdaFloat use their
schemes' fixed widths.  Latency is normalized to the iso-area int8
reference design.

Shape to reproduce (paper geomeans, normalized): ANT fastest; BitFusion
~2.8x slower than ANT; OLAccel ~3.2x; BiScaled ~1.5x; AdaFloat ~4x.
"""

from benchmarks._support import (
    WORKLOADS,
    ant_assignments,
    bitfusion_assignments,
    olaccel_assignments,
)
from repro.analysis import format_table
from repro.analysis.reporting import geomean
from repro.hardware import build_accelerator, workload_layers
from repro.hardware.accelerator import uniform_assignment
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch

DESIGNS = ["ant-os", "ant-ws", "bitfusion", "olaccel", "biscaled", "adafloat"]


def simulate_all(zoo):
    """(design, workload) -> SimulationResult, plus the int8 reference."""
    results = {}
    for workload in WORKLOADS:
        entry = zoo(workload)
        quantizer = ModelQuantizer(entry.model, "ip-f", bits=4)
        quantizer.calibrate(calibration_batch(entry.dataset, 64))

        layers = workload_layers(workload)
        scores = quantizer.layer_sensitivity()
        assignments = {
            "ant-os": ant_assignments(quantizer, layers, scores=scores),
            "ant-ws": ant_assignments(quantizer, layers, scores=scores),
            "bitfusion": bitfusion_assignments(quantizer, layers),
            "olaccel": olaccel_assignments(layers),
            "biscaled": uniform_assignment(layers, 6, 6),
            "adafloat": uniform_assignment(layers, 8, 8),
            "int8": uniform_assignment(layers, 8, 8),
        }
        quantizer.remove()
        for design in DESIGNS + ["int8"]:
            accelerator = build_accelerator(design)
            results[(design, workload)] = accelerator.simulate(
                layers, assignments[design]
            )
    return results


def test_fig13_normalized_latency(benchmark, emit, zoo):
    results = benchmark.pedantic(lambda: simulate_all(zoo), rounds=1, iterations=1)

    rows = []
    normalized = {design: [] for design in DESIGNS}
    for workload in WORKLOADS:
        reference = results[("int8", workload)].cycles
        row = [workload]
        for design in DESIGNS:
            value = results[(design, workload)].cycles / reference
            normalized[design].append(value)
            row.append(value)
        rows.append(row)
    geo = {design: geomean(normalized[design]) for design in DESIGNS}
    rows.append(["geomean"] + [geo[d] for d in DESIGNS])

    rendered = format_table(
        ["workload"] + DESIGNS,
        rows,
        title="Fig. 13 (middle): latency normalized to iso-area int8",
        float_fmt="{:.3f}",
    )
    speedups = format_table(
        ["vs design", "ANT-OS speedup (measured)", "paper"],
        [
            ["bitfusion", geo["bitfusion"] / geo["ant-os"], 2.8],
            ["olaccel", geo["olaccel"] / geo["ant-os"], 3.24],
            ["biscaled", geo["biscaled"] / geo["ant-os"], 1.48],
            ["adafloat", geo["adafloat"] / geo["ant-os"], 4.0],
        ],
        title="Headline speedups",
        float_fmt="{:.2f}",
    )
    emit("fig13_latency", rendered + "\n\n" + speedups)

    # Shape assertions: ANT is the fastest design on the geomean; the
    # baseline ordering matches the paper (BiScaled < BitFusion <
    # OLAccel ~ AdaFloat).
    assert geo["ant-os"] == min(geo.values())
    assert geo["ant-ws"] < geo["bitfusion"]
    assert geo["biscaled"] < geo["bitfusion"] < geo["olaccel"]
    assert geo["bitfusion"] / geo["ant-os"] > 1.5  # the 2.8x direction
    assert geo["adafloat"] / geo["ant-os"] > 2.0   # the 4x direction
