"""Ablation: which primitive wins as tensor tails get heavier.

Parametric sweep from uniform through Gaussian (Student-t with large
df) to extremely heavy-tailed, reporting each 4-bit primitive's MSE
normalized to flint.  This is the mechanism underlying the paper's
inter-tensor adaptivity: the winner crosses int -> flint -> PoT.
"""

import numpy as np

from repro.analysis import format_table
from repro.dtypes import FlintType, IntType, PoTType, get_type
from repro.quant import search_scale

SWEEP = [("uniform", None), ("student_t", 30), ("student_t", 10),
         ("student_t", 6), ("student_t", 4), ("student_t", 3), ("student_t", 2)]


def _run():
    rng = np.random.default_rng(0)
    dtypes = [IntType(4, True), get_type("float4"), PoTType(4, True), FlintType(4, True)]
    rows = []
    for family, df in SWEEP:
        if family == "uniform":
            x = rng.uniform(-1, 1, size=16384)
            label = "uniform"
        else:
            x = rng.standard_t(df, size=16384)
            label = f"student-t df={df}"
        mses = {d.name: search_scale(x, d).mse for d in dtypes}
        flint = mses["flint4"]
        rows.append([label] + [mses[d.name] / flint for d in dtypes]
                    + [min(mses, key=mses.get)])
    return rows


def test_ablation_distribution_sweep(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    rendered = format_table(
        ["distribution", "int4", "float4", "pot4", "flint4", "winner"],
        rows,
        title="Ablation: 4-bit MSE normalized to flint across tail weights",
        float_fmt="{:.3f}",
    )
    emit("ablation_distributions", rendered)

    winners = [row[-1] for row in rows]
    # The crossover structure: int first, flint in the middle band,
    # PoT at the extreme tail.
    assert winners[0] == "int4"
    assert "flint4" in winners
    assert winners[-1] == "pot4"
    # int degrades monotonically relative to flint as tails grow
    # (within sweep noise on the heaviest tail).
    int_ratios = [row[1] for row in rows]
    assert int_ratios[0] < 1.0 < int_ratios[-2]
