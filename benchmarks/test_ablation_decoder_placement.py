"""Ablation: boundary decoder placement vs per-PE decoders (Sec. VI-A).

The paper places decoders on the array boundary (2n for OS, n for WS)
instead of inside every PE (n^2).  This bench quantifies the area
saving that makes ANT's overhead negligible.
"""

from repro.analysis import format_table
from repro.hardware.area import ANT_DECODER_UM2, ANT_PE4_UM2
from repro.hardware.systolic import Dataflow, SystolicArray


def _run():
    rows = []
    for size in (16, 32, 64, 128):
        os_array = SystolicArray(size, size, Dataflow.OUTPUT_STATIONARY)
        ws_array = SystolicArray(size, size, Dataflow.WEIGHT_STATIONARY)
        pe_area = size * size * ANT_PE4_UM2
        per_pe = size * size * ANT_DECODER_UM2
        boundary_os = os_array.boundary_decoders() * ANT_DECODER_UM2
        boundary_ws = ws_array.boundary_decoders() * ANT_DECODER_UM2
        rows.append(
            [
                f"{size}x{size}",
                per_pe / pe_area,
                boundary_os / pe_area,
                boundary_ws / pe_area,
                per_pe / boundary_os,
            ]
        )
    return rows


def test_ablation_decoder_placement(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    rendered = format_table(
        ["array", "per-PE overhead", "boundary overhead (OS)",
         "boundary overhead (WS)", "saving (OS)"],
        rows,
        title="Ablation: decoder placement area overhead",
        float_fmt="{:.4f}",
    )
    emit("ablation_decoder_placement", rendered)

    for row in rows:
        per_pe, boundary_os, boundary_ws = row[1], row[2], row[3]
        assert boundary_os < per_pe
        assert boundary_ws < boundary_os  # WS needs only n decoders
    # At the paper's 64x64 size, boundary placement is ~0.2% overhead
    # while per-PE placement would cost ~6%.
    r64 = rows[2]
    assert r64[2] < 0.003
    assert r64[1] > 0.05
    # Savings grow with array size (n^2 vs 2n).
    savings = [row[4] for row in rows]
    assert savings == sorted(savings)
