"""Table I: quantization architecture comparison.

Average memory bits per element across workloads for each scheme, plus
the decoder/controller area overhead.  The paper's qualitative ordering
to reproduce: ANT achieves the lowest average bits among the aligned
schemes with near-zero area overhead; outlier-aware schemes reach low
bits only at a large area cost; int/AdaFloat need 8 bits.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import (
    AdaFloatQuantizer,
    BaselineModelQuantizer,
    BiScaledQuantizer,
    BitFusionQuantizer,
    GOBOQuantizer,
    IntQuantizer,
    OLAccelQuantizer,
)
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch

#: workload subset for the bit statistics (one per family keeps the
#: bench under a minute while covering CNN + Transformer tensors)
SAMPLE_WORKLOADS = ["vgg16", "resnet18", "bert-mnli"]

#: area overheads (decoder + controller as a fraction of the PE array),
#: from our area model for ANT and from the papers for the baselines
#: whose controllers we do not synthesise (Table I sources).
AREA_OVERHEAD = {
    "int8": 0.0,
    "adafloat8": 0.145,
    "bitfusion": 0.0,
    "biscaled6": 0.071,
    "olaccel4": 0.71,
    "gobo3": 0.55,
}


def _scheme_average_bits(zoo) -> dict:
    averages = {}
    schemes = {
        "int8": (IntQuantizer(8), False),
        "adafloat8": (AdaFloatQuantizer(8), False),
        "bitfusion": (BitFusionQuantizer(), False),
        "biscaled6": (BiScaledQuantizer(6), False),
        "olaccel4": (OLAccelQuantizer(4), False),
        "gobo3": (GOBOQuantizer(3), True),
    }
    for name, (scheme, weights_only) in schemes.items():
        bits = []
        for workload in SAMPLE_WORKLOADS:
            entry = zoo(workload)
            driver = BaselineModelQuantizer(entry.model, scheme, weights_only)
            driver.calibrate(calibration_batch(entry.dataset, 64))
            bits.append(driver.average_bits())
        averages[name] = sum(bits) / len(bits)

    # ANT itself: mostly-4-bit tensors with ~10% of layers escalated.
    ant_bits = []
    for workload in SAMPLE_WORKLOADS:
        entry = zoo(workload)
        quantizer = ModelQuantizer(entry.model, "ip-f", 4)
        quantizer.calibrate(calibration_batch(entry.dataset, 64))
        scores = quantizer.layer_sensitivity()
        n_escalate = max(0, round(0.1 * len(scores)))
        for name in sorted(scores, key=scores.get, reverse=True)[:n_escalate]:
            quantizer.escalate_layer(name)
        ant_bits.append(quantizer.report().average_bits)
        quantizer.remove()
    averages["ant"] = sum(ant_bits) / len(ant_bits)
    return averages


@pytest.mark.parametrize("dummy", [0])
def test_table1_architecture_comparison(benchmark, emit, zoo, dummy):
    averages = benchmark.pedantic(
        lambda: _scheme_average_bits(zoo), rounds=1, iterations=1
    )

    aligned = {
        "int8": True, "adafloat8": True, "bitfusion": True,
        "biscaled6": True, "olaccel4": False, "gobo3": False, "ant": True,
    }
    paper = {
        "int8": 8.0, "adafloat8": 8.0, "bitfusion": 7.07, "biscaled6": 6.16,
        "olaccel4": 5.81, "gobo3": 4.04, "ant": 4.23,
    }
    rows = [
        [name, "yes" if aligned[name] else "no", averages[name],
         paper[name], f"{AREA_OVERHEAD.get(name, 0.002):.1%}"]
        for name in ["int8", "adafloat8", "bitfusion", "biscaled6",
                     "olaccel4", "gobo3", "ant"]
    ]
    rendered = format_table(
        ["scheme", "aligned", "avg bits (measured)", "avg bits (paper)",
         "area overhead"],
        rows,
        title="Table I: quantization architecture comparison",
        float_fmt="{:.2f}",
    )
    emit("table1_arch_comparison", rendered)

    # Shape assertions: ANT has the lowest aligned-scheme average bits.
    aligned_schemes = [s for s in averages if aligned.get(s, False)]
    assert min(aligned_schemes, key=averages.get) == "ant"
    assert averages["ant"] < 5.5
    assert averages["int8"] == 8.0
    assert 4.0 < averages["bitfusion"] <= 8.0
    assert averages["gobo3"] < 4.5  # weight-only, near its 3-bit base
