"""Fig. 13 (bottom): normalized energy and its four-way split.

Shape to reproduce: ANT-OS lowest energy, ANT-WS second (extra buffer
traffic for high-precision outputs under WS), OLAccel below BitFusion
(more 4-bit values cut DRAM/buffer energy despite its slow controller),
AdaFloat worst.  Energy splits are dominated by DRAM + buffer.
"""

from benchmarks._support import WORKLOADS
from benchmarks.test_fig13_latency import DESIGNS, simulate_all
from repro.analysis import format_table
from repro.analysis.reporting import geomean


def test_fig13_normalized_energy(benchmark, emit, zoo):
    results = benchmark.pedantic(lambda: simulate_all(zoo), rounds=1, iterations=1)

    rows = []
    normalized = {design: [] for design in DESIGNS}
    for workload in WORKLOADS:
        reference = results[("int8", workload)].total_energy_pj
        row = [workload]
        for design in DESIGNS:
            value = results[(design, workload)].total_energy_pj / reference
            normalized[design].append(value)
            row.append(value)
        rows.append(row)
    geo = {design: geomean(normalized[design]) for design in DESIGNS}
    rows.append(["geomean"] + [geo[d] for d in DESIGNS])

    rendered = format_table(
        ["workload"] + DESIGNS,
        rows,
        title="Fig. 13 (bottom): energy normalized to iso-area int8",
        float_fmt="{:.3f}",
    )

    # Energy split for one representative workload per family.
    split_rows = []
    for workload in ("resnet50", "bert-mnli"):
        for design in DESIGNS:
            result = results[(design, workload)]
            total = result.total_energy_pj
            split_rows.append(
                [workload, design]
                + [result.energy_pj[k] / total for k in ("static", "dram", "buffer", "core")]
            )
    split = format_table(
        ["workload", "design", "static", "dram", "buffer", "core"],
        split_rows,
        title="Energy split (fraction of total)",
        float_fmt="{:.3f}",
    )

    gains = format_table(
        ["vs design", "ANT-OS energy gain (measured)", "paper"],
        [
            ["bitfusion", geo["bitfusion"] / geo["ant-os"], 2.53],
            ["olaccel", geo["olaccel"] / geo["ant-os"], 1.93],
            ["biscaled", geo["biscaled"] / geo["ant-os"], 1.6],
            ["adafloat", geo["adafloat"] / geo["ant-os"], 3.33],
        ],
        title="Headline energy reductions",
        float_fmt="{:.2f}",
    )
    emit("fig13_energy", rendered + "\n\n" + split + "\n\n" + gains)

    # Shape assertions.
    assert geo["ant-os"] == min(geo.values())
    assert geo["ant-os"] <= geo["ant-ws"] + 1e-9   # WS pays more buffer energy
    assert geo["olaccel"] < geo["bitfusion"]       # paper's OLAccel energy win
    assert geo["adafloat"] == max(geo.values())
    assert geo["bitfusion"] / geo["ant-os"] > 1.4  # toward the 2.5x headline
