"""Fig. 11: accuracy loss without fine-tuning (4-bit PTQ).

Post-training 4-bit quantization under the five combinations.  The
paper's shape: Int-4bit suffers large losses, adding PoT helps the
long-tailed workloads, adding flint (IP-F / FIP-F) recovers most of the
loss everywhere.
"""

from benchmarks._support import COMBOS, WORKLOADS
from repro.analysis import format_table
from repro.quant.framework import ModelQuantizer, evaluate
from repro.zoo import calibration_batch


def _run(zoo):
    table = {}
    for workload in WORKLOADS:
        entry = zoo(workload)
        dataset = entry.dataset
        batch = calibration_batch(dataset, 64)
        losses = {}
        for combo in COMBOS:
            quantizer = ModelQuantizer(entry.model, combo, bits=4)
            quantizer.calibrate(batch).apply()
            accuracy = evaluate(entry.model, dataset.x_test, dataset.y_test)
            quantizer.remove()
            losses[combo] = entry.fp32_accuracy - accuracy
        table[workload] = losses
    return table


def test_fig11_accuracy_loss_no_finetune(benchmark, emit, zoo):
    table = benchmark.pedantic(lambda: _run(zoo), rounds=1, iterations=1)

    rows = [
        [workload] + [losses[c] for c in COMBOS]
        for workload, losses in table.items()
    ]
    rendered = format_table(
        ["workload"] + [f"{c}-4bit" for c in COMBOS],
        rows,
        title="Fig. 11: accuracy loss (FP32 - quantized) without fine-tuning",
        float_fmt="{:+.4f}",
    )
    emit("fig11_acc_no_finetune", rendered)

    mean = {c: sum(l[c] for l in table.values()) / len(table) for c in COMBOS}
    # Average loss ordering: flint-bearing combos beat int-only.
    assert mean["ip-f"] <= mean["int"] + 1e-9
    assert mean["fip-f"] <= mean["int"] + 1e-9
    # The dynamic-range CNNs show the big int-4bit collapse of Fig. 11.
    assert table["vgg16"]["int"] > 0.10
    assert table["vgg16"]["ip-f"] < table["vgg16"]["int"] - 0.05
