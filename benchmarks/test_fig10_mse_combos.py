"""Fig. 10: quantization MSE of primitive-type combinations (4-bit).

Element-weighted model MSE under five candidate lists, normalized to
Int-4bit per workload.  The paper's shape: adding primitives
monotonically (weakly) lowers MSE, with flint (IP-F / FIP-F) giving the
largest drop.
"""

from benchmarks._support import COMBOS, WORKLOADS, weighted_model_mse
from repro.analysis import format_table
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch


def _run(zoo):
    table = {}
    for workload in WORKLOADS:
        entry = zoo(workload)
        batch = calibration_batch(entry.dataset, 64)
        mses = {}
        for combo in COMBOS:
            quantizer = ModelQuantizer(entry.model, combo, bits=4)
            quantizer.calibrate(batch)
            mses[combo] = weighted_model_mse(quantizer)
            quantizer.remove()
        table[workload] = mses
    return table


def test_fig10_combination_mse(benchmark, emit, zoo):
    table = benchmark.pedantic(lambda: _run(zoo), rounds=1, iterations=1)

    rows = []
    for workload, mses in table.items():
        base = mses["int"]
        rows.append([workload] + [mses[c] / base for c in COMBOS])
    rendered = format_table(
        ["workload"] + [f"{c}-4bit" for c in COMBOS],
        rows,
        title="Fig. 10: quantization MSE normalized to Int-4bit",
        float_fmt="{:.3f}",
    )
    emit("fig10_mse_combos", rendered)

    for workload, mses in table.items():
        # Richer candidate lists never increase the weighted MSE.
        assert mses["ip"] <= mses["int"] * 1.0001
        assert mses["ip-f"] <= mses["ip"] * 1.0001
        assert mses["fip-f"] <= mses["fip"] * 1.0001
    # flint meaningfully reduces MSE on at least half the workloads.
    improved = sum(
        1 for mses in table.values() if mses["ip-f"] < 0.97 * mses["ip"]
    )
    assert improved >= len(table) // 2
