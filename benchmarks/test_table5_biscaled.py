"""Table V: 6-bit quantization without fine-tuning, ANT vs BiScaled.

The paper reports that 6-bit ANT loses far less accuracy than 6-bit
BiScaled on CNNs because ANT adapts across more than two exponent
ranges.  Reproduced on our CNN workloads.
"""

from benchmarks._support import CNN_WORKLOADS
from repro.analysis import format_table
from repro.baselines import BaselineModelQuantizer, BiScaledQuantizer
from repro.quant.framework import ModelQuantizer, evaluate
from repro.zoo import calibration_batch


def _run(zoo):
    rows = []
    for workload in CNN_WORKLOADS:
        entry = zoo(workload)
        dataset = entry.dataset

        quantizer = ModelQuantizer(entry.model, "ip-f", bits=6)
        quantizer.calibrate(calibration_batch(dataset, 64)).apply()
        ant_acc = evaluate(entry.model, dataset.x_test, dataset.y_test)
        quantizer.remove()

        driver = BaselineModelQuantizer(entry.model, BiScaledQuantizer(6))
        driver.calibrate(calibration_batch(dataset, 64)).apply()
        biscaled_acc = evaluate(entry.model, dataset.x_test, dataset.y_test)
        driver.remove()

        rows.append([workload, ant_acc, biscaled_acc, entry.fp32_accuracy])
    return rows


def test_table5_ant_vs_biscaled_6bit(benchmark, emit, zoo):
    rows = benchmark.pedantic(lambda: _run(zoo), rounds=1, iterations=1)

    rendered = format_table(
        ["model", "ANT 6-bit", "BiScaled 6-bit", "FP32 source"],
        rows,
        title="Table V: 6-bit accuracy without fine-tuning",
        float_fmt="{:.4f}",
    )
    emit("table5_biscaled", rendered)

    # Note (EXPERIMENTS.md): our BiScaled implementation fits its fine
    # scale by MSE search, making it stronger than the original static
    # heuristic the paper compares against, so the paper's >5% gap does
    # not reappear.  The reproducible shape: 6-bit ANT is competitive
    # with 6-bit BiScaled and both stay close to FP32 on every CNN.
    for _, ant, biscaled, fp32 in rows:
        assert ant >= biscaled - 0.05
        assert fp32 - ant < 0.10
