"""Ablation: output-stationary vs weight-stationary ANT (Sec. VI-A).

The paper finds the two dataflows perform similarly while WS spends
more buffer energy on high-precision outputs, making OS the lower-
energy design overall.
"""

from benchmarks._support import WORKLOADS
from repro.analysis import format_table
from repro.analysis.reporting import geomean
from repro.hardware import build_accelerator, workload_layers
from repro.hardware.accelerator import uniform_assignment


def _run():
    rows = []
    ratios_cycles = []
    ratios_energy = []
    for workload in WORKLOADS:
        layers = workload_layers(workload)
        assignment = uniform_assignment(layers, 4, 4)
        os_result = build_accelerator("ant-os").simulate(layers, assignment)
        ws_result = build_accelerator("ant-ws").simulate(layers, assignment)
        cycle_ratio = ws_result.cycles / os_result.cycles
        energy_ratio = ws_result.total_energy_pj / os_result.total_energy_pj
        ratios_cycles.append(cycle_ratio)
        ratios_energy.append(energy_ratio)
        rows.append([workload, cycle_ratio, energy_ratio])
    rows.append(["geomean", geomean(ratios_cycles), geomean(ratios_energy)])
    return rows


def test_ablation_dataflow(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    rendered = format_table(
        ["workload", "WS/OS cycles", "WS/OS energy"],
        rows,
        title="Ablation: weight-stationary vs output-stationary ANT",
        float_fmt="{:.3f}",
    )
    emit("ablation_dataflow", rendered)

    geo_cycles, geo_energy = rows[-1][1], rows[-1][2]
    # Similar performance (within ~25%) across dataflows...
    assert 0.75 < geo_cycles < 1.25
    # ...with WS never cheaper in energy (extra high-precision buffer
    # traffic), matching the paper's ANT-OS < ANT-WS energy ordering.
    assert geo_energy >= 0.98
