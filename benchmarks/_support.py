"""Shared helpers for the experiment benchmarks."""

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.hardware.accelerator import LayerAssignment
from repro.hardware.workloads import LayerShape
from repro.quant.framework import ModelQuantizer

#: the paper's eight evaluation workloads, in Fig. 13 order
WORKLOADS = [
    "vgg16",
    "resnet18",
    "resnet50",
    "inceptionv3",
    "vit",
    "bert-mnli",
    "bert-cola",
    "bert-sst2",
]

CNN_WORKLOADS = WORKLOADS[:4]
COMBOS = ["int", "ip", "fip", "ip-f", "fip-f"]


def measure_seconds(fn, repeats: int, warmup: int):
    """(median_seconds, max/min spread) of ``fn`` over timed runs.

    Variance control shared by the perf benchmarks: this container
    shows large run-to-run noise (+-40% has been observed), so every
    reported timing is a median after ``warmup`` discarded runs, and
    the max/min spread across the timed runs is recorded alongside it
    as the honest noise bar.
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), float(np.max(times) / np.min(times))


def weighted_model_mse(quantizer: ModelQuantizer) -> float:
    """Element-weighted mean quantization MSE across all tensors."""
    total = 0.0
    weight = 0
    for config in quantizer.layers.values():
        for q, sample in (
            (config.weight_quantizer, config.weight_sample),
            (config.input_quantizer, config.input_sample),
        ):
            n = int(np.asarray(sample).size)
            total += q.observed_mse(sample) * n
            weight += n
    return total / weight if weight else 0.0


def map_layer_flags_by_depth(
    flags: Sequence[bool], layers: Sequence[LayerShape]
) -> List[int]:
    """Map scaled-model per-layer flags onto a real-architecture layer list.

    The scaled models have far fewer layers than the real networks, so a
    per-layer decision (e.g. "escalate to 8-bit") measured on the scaled
    model is transferred to the real workload by relative depth: real
    layer ``i`` inherits the flag of the scaled layer at the same
    fractional position.  Returns the indices of flagged real layers.
    """
    if not flags:
        return []
    flags = list(flags)
    indices = []
    n_real = len(layers)
    n_scaled = len(flags)
    for i in range(n_real):
        scaled_idx = min(n_scaled - 1, int(i * n_scaled / n_real))
        if flags[scaled_idx]:
            indices.append(i)
    return indices


def ant_assignments(
    quantizer: ModelQuantizer,
    layers: Sequence[LayerShape],
    eight_bit_fraction: float = 0.10,
    scores: Dict[str, float] = None,
) -> List[LayerAssignment]:
    """ANT per-layer bits for a real workload.

    Escalation set: the scaled model's most quantization-sensitive
    layers (the same end-to-end sensitivity rule the ANT4-8 accuracy
    search uses), up to ``eight_bit_fraction`` of layers -- matching
    the measured ~90% 4-bit tensor ratio (Sec. V-D).  Pass ``scores``
    (a ``layer_sensitivity()`` result) when calling repeatedly on an
    unchanged quantizer; the sweep costs one forward pass per layer.
    """
    if scores is None:
        scores = quantizer.layer_sensitivity()
    names = list(quantizer.layers)
    n_escalate = int(round(eight_bit_fraction * len(names)))
    escalated = set(sorted(scores, key=scores.get, reverse=True)[:n_escalate])
    flags = [name in escalated for name in names]
    eight_idx = set(map_layer_flags_by_depth(flags, layers))
    return [
        LayerAssignment(8, 8) if i in eight_idx else LayerAssignment(4, 4)
        for i in range(len(layers))
    ]


def bitfusion_assignments(
    quantizer: ModelQuantizer,
    layers: Sequence[LayerShape],
    mse_budget: float = 0.01,
) -> List[LayerAssignment]:
    """BitFusion per-layer bits: int-only, escalate when int4 MSE is poor.

    Uses the scaled model's tensors with the BitFusion tensor rule (int4
    unless its MSE exceeds ``mse_budget`` x tensor variance), mapped by
    relative depth.  Int-only adaptivity leaves many more layers at
    8-bit than ANT -- the source of the Fig. 13 gap.
    """
    from repro.baselines.bitfusion import BitFusionQuantizer

    scheme = BitFusionQuantizer(mse_budget=mse_budget)
    flags = []
    for config in quantizer.layers.values():
        w_state = scheme.calibrate_weight(config.weight_sample)
        a_state = scheme.calibrate_activation(config.input_sample)
        flags.append(w_state["bits"] == 8 or a_state["bits"] == 8)
    eight_idx = set(map_layer_flags_by_depth(flags, layers))
    return [
        LayerAssignment(8, 8) if i in eight_idx else LayerAssignment(4, 4)
        for i in range(len(layers))
    ]


def olaccel_assignments(layers: Sequence[LayerShape]) -> List[LayerAssignment]:
    """OLAccel: 4-bit + 3% outliers; first and last layers at 8-bit."""
    last = len(layers) - 1
    return [
        LayerAssignment(8, 8, outlier_fraction=0.03)
        if i in (0, last)
        else LayerAssignment(4, 4, outlier_fraction=0.03)
        for i in range(len(layers))
    ]


def scheme_type_ratios(report_counts: Dict[str, int]) -> Dict[str, float]:
    """Tensor-count ratios per type label (Fig. 13 top)."""
    total = sum(report_counts.values())
    return {k: v / total for k, v in sorted(report_counts.items())}
