"""Fig. 14: per-tensor MSE of each 4-bit type normalized to flint.

Two views, matching the paper's two panels:

* **model tensors** -- every weight and activation tensor of the
  ResNet-18-style and BERT-style workloads, quantized by each 4-bit
  primitive with its own MSE-optimal scale;
* **distribution suite** -- the same comparison on tensors sampled from
  the distribution families the paper documents for the real models
  (uniform first layers, Gaussian weights, outlier-heavy Transformer
  activations), which recovers the full inter-tensor story at paper
  scale.

Shape to reproduce: ANT (min over candidates) always matches the
best column; int wins uniform-like tensors, flint wins the Gaussian/
Laplace body, PoT wins extreme outlier tensors.
"""

import numpy as np

from repro.analysis import format_table
from repro.data import sample_distribution
from repro.dtypes import FlintType, IntType, PoTType, get_type
from repro.quant import search_scale
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch

SUITE = [
    ("first-layer act (uniform)", "uniform_positive", False),
    ("conv weight (gaussian)", "gaussian", True),
    ("fc weight (laplace)", "laplace", True),
    ("attn act (heavy tail)", "student_t", True),
    ("bert act (outliers)", "gaussian_outliers", True),
]


def _dtypes(signed):
    return [
        IntType(4, signed),
        get_type("float4" if signed else "float4u"),
        PoTType(4, signed),
        FlintType(4, signed),
    ]


def _model_rows(zoo):
    rows = []
    for workload in ("resnet18", "bert-mnli"):
        entry = zoo(workload)
        quantizer = ModelQuantizer(entry.model, "ip-f", 4)
        quantizer.calibrate(calibration_batch(entry.dataset, 64))
        for name, config in quantizer.layers.items():
            for role, sample in (
                ("W", config.weight_sample),
                ("A", config.input_sample),
            ):
                signed = bool(np.min(sample) < 0)
                mses = {
                    dtype.kind: search_scale(sample, dtype, num_coarse=16, num_fine=8).mse
                    for dtype in _dtypes(signed)
                }
                flint_mse = mses["flint"] or np.finfo(float).tiny
                rows.append(
                    [f"{workload}/{name}/{role}"]
                    + [mses[k] / flint_mse for k in ("int", "float", "pot", "flint")]
                    + [min(mses, key=mses.get)]
                )
        quantizer.remove()
    return rows


def _suite_rows():
    rows = []
    for label, family, signed in SUITE:
        x = sample_distribution(family, 16384, seed=3)
        mses = {
            dtype.kind: search_scale(x, dtype).mse for dtype in _dtypes(signed)
        }
        flint_mse = mses["flint"]
        rows.append(
            [label]
            + [mses[k] / flint_mse for k in ("int", "float", "pot", "flint")]
            + [min(mses, key=mses.get)]
        )
    return rows


def test_fig14_per_tensor_type_mse(benchmark, emit, zoo):
    model_rows, suite_rows = benchmark.pedantic(
        lambda: (_model_rows(zoo), _suite_rows()), rounds=1, iterations=1
    )

    headers = ["tensor", "int", "float", "pot", "flint", "winner"]
    rendered = (
        format_table(
            headers, model_rows,
            title="Fig. 14 (model tensors): 4-bit MSE normalized to flint",
            float_fmt="{:.3f}",
        )
        + "\n\n"
        + format_table(
            headers, suite_rows,
            title="Fig. 14 (distribution suite): 4-bit MSE normalized to flint",
            float_fmt="{:.3f}",
        )
    )
    emit("fig14_type_mse", rendered)

    # Distribution-suite shape: int wins uniform, flint wins the
    # Gaussian-to-Laplace body among the int-PE candidates {int, pot,
    # flint} (float may tie/edge it, which is why FIP-F adds nothing --
    # Sec. VII-B), and PoT wins the outlier regime.
    by_label = {row[0]: dict(zip(("int", "float", "pot", "flint"), row[1:5]))
                for row in suite_rows}
    uniform = by_label["first-layer act (uniform)"]
    assert uniform["int"] == min(uniform.values())
    laplace = by_label["fc weight (laplace)"]
    assert laplace["flint"] <= min(laplace["int"], laplace["pot"])
    outliers = by_label["bert act (outliers)"]
    assert outliers["pot"] == min(outliers.values())

    # Model tensors: PoT never beats flint by much on the body tensors
    # (its win region is the extreme tail), and ANT's min-MSE choice is
    # consistent: the winner column achieves the row minimum by
    # construction.
    for row in model_rows:
        normalized = dict(zip(("int", "float", "pot", "flint"), row[1:5]))
        assert normalized[row[-1]] == min(normalized.values())
