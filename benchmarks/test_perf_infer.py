"""Serving benchmark: frozen inference runtime vs the hook-based path.

Writes ``BENCH_infer.json`` at the repository root.  For every zoo
workload it serves the same batch of samples three ways:

* ``hook_serving`` -- the repo's pre-freeze serving path: the
  fake-quant hook model driven exactly like
  :func:`repro.quant.framework.evaluate` does (``no_grad``, batches of
  128), re-running quantize-dequantize on the frozen weights and the
  STE bookkeeping on every forward;
* ``hook_autograd`` -- the same forward without ``no_grad``, i.e.
  serving straight through the autograd graph (what any caller that
  does ``model(Tensor(x))`` gets);
* the frozen engine from ``ModelQuantizer.freeze()`` in its bit-exact
  float64 mode and its float32 serving mode (``predict`` batches of
  512).

Correctness is asserted alongside speed: float64 output must match the
hook path to <= 1e-9 and the float32 mode must keep argmax parity.
Speedup floors are set conservatively (shared CI runners vary wildly);
the JSON is the record of what this machine actually measured.
"""

import json
from pathlib import Path

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch

from _support import WORKLOADS, measure_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_infer.json"

N_SAMPLES = 1024
HOOK_BATCH = 128     # evaluate()'s default serving batch
FROZEN_BATCH = 512

#: variance control: every timing is the median of REPEATS runs after
#: WARMUP discarded runs, with the spread recorded in the JSON (see
#: :func:`_support.measure_seconds`).
REPEATS = 5
WARMUP = 1


def _measure_seconds(fn):
    return measure_seconds(fn, REPEATS, WARMUP)


def _hook_serve(entry, x, tokens: bool):
    out = []
    for start in range(0, x.shape[0], HOOK_BATCH):
        batch = x[start: start + HOOK_BATCH]
        out.append(entry.model(batch if tokens else Tensor(batch)).data)
    return np.concatenate(out)


def test_perf_infer(zoo, emit):
    results = {}
    rows = []
    for workload in WORKLOADS:
        entry = zoo(workload)
        dataset = entry.dataset
        tokens = dataset.input_kind == "tokens"
        x = np.concatenate([dataset.x_test] * 8)[:N_SAMPLES]

        quantizer = ModelQuantizer(entry.model, "ip-f", 4)
        quantizer.calibrate(calibration_batch(dataset)).apply()
        try:
            frozen64 = quantizer.freeze(model_name=workload)
            frozen32 = quantizer.freeze(model_name=workload).astype(np.float32)

            with no_grad():
                reference = _hook_serve(entry, x, tokens)
            exact = float(np.abs(frozen64.predict(x, FROZEN_BATCH) - reference).max())
            assert exact <= 1e-9, (workload, exact)
            parity = float(np.mean(
                np.argmax(frozen32.predict(x, FROZEN_BATCH), axis=1)
                == np.argmax(reference, axis=1)
            ))
            assert parity >= 0.99, (workload, parity)

            def hook_nograd():
                with no_grad():
                    _hook_serve(entry, x, tokens)

            hook_s, hook_spread = _measure_seconds(hook_nograd)
            autograd_s, autograd_spread = _measure_seconds(
                lambda: _hook_serve(entry, x, tokens)
            )
            f64_s, f64_spread = _measure_seconds(
                lambda: frozen64.predict(x, FROZEN_BATCH)
            )
            f32_s, f32_spread = _measure_seconds(
                lambda: frozen32.predict(x, FROZEN_BATCH)
            )
        finally:
            quantizer.remove()

        size = frozen64.size_report()
        results[workload] = {
            "samples": N_SAMPLES,
            "hook_serving_seconds": hook_s,
            "hook_autograd_seconds": autograd_s,
            "frozen_float64_seconds": f64_s,
            "frozen_float32_seconds": f32_s,
            "hook_samples_per_sec": N_SAMPLES / hook_s,
            "frozen_float32_samples_per_sec": N_SAMPLES / f32_s,
            "speedup_float64": hook_s / f64_s,
            "speedup_float32": hook_s / f32_s,
            "speedup_float32_vs_autograd": autograd_s / f32_s,
            "float64_max_abs_diff": exact,
            "float32_argmax_parity": parity,
            "packed_weight_bytes": size["packed_weight_bytes"],
            "float64_equivalent_bytes": size["float64_equivalent_bytes"],
            "timing_spread_max_over_min": {
                "hook_serving": hook_spread,
                "hook_autograd": autograd_spread,
                "frozen_float64": f64_spread,
                "frozen_float32": f32_spread,
            },
        }
        rows.append(
            f"{workload:>12}: hook {N_SAMPLES/hook_s:8.0f} smp/s | frozen f64 "
            f"{hook_s/f64_s:4.1f}x  f32 {hook_s/f32_s:4.1f}x "
            f"(vs autograd {autograd_s/f32_s:4.1f}x) | "
            f"packed {size['packed_weight_bytes']/1024:6.1f} KiB "
            f"({size['float64_equivalent_bytes']/size['packed_weight_bytes']:4.1f}x smaller)"
        )

    speedups32 = [results[w]["speedup_float32"] for w in WORKLOADS]
    speedups64 = [results[w]["speedup_float64"] for w in WORKLOADS]
    results["aggregate"] = {
        "geomean_speedup_float32": float(np.exp(np.mean(np.log(speedups32)))),
        "geomean_speedup_float64": float(np.exp(np.mean(np.log(speedups64)))),
        "max_speedup_float32": float(np.max(speedups32)),
    }
    results["meta"] = {
        "description": (
            "batched serving throughput: frozen runtime vs the hook-based "
            "fake-quant path (evaluate-style no_grad loop, and the same "
            "loop through the autograd graph)"
        ),
        "hook_batch": HOOK_BATCH,
        "frozen_batch": FROZEN_BATCH,
        "combination": "ip-f",
        "bits": 4,
        "timing_method": "median",
        "timing_repeats": REPEATS,
        "timing_warmup": WARMUP,
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")

    agg = results["aggregate"]
    rows.append(
        f"{'geomean':>12}: frozen f64 {agg['geomean_speedup_float64']:4.1f}x  "
        f"f32 {agg['geomean_speedup_float32']:4.1f}x"
    )
    emit("BENCH_infer", "frozen-runtime serving vs hook-based path\n" + "\n".join(rows))

    # Conservative floors (shared runners flake; BENCH_infer.json is the
    # record): float64 must not regress, float32 must clearly win.
    assert agg["geomean_speedup_float64"] >= 1.0
    assert min(speedups32) >= 1.5
    assert agg["geomean_speedup_float32"] >= 2.0
