"""Serving benchmark: frozen inference runtime vs the hook-based path.

Writes ``BENCH_infer.json`` at the repository root.  For every zoo
workload it serves the same batch of samples three ways:

* ``hook_serving`` -- the repo's pre-freeze serving path: the
  fake-quant hook model driven exactly like
  :func:`repro.quant.framework.evaluate` does (``no_grad``, batches of
  128), re-running quantize-dequantize on the frozen weights and the
  STE bookkeeping on every forward;
* ``hook_autograd`` -- the same forward without ``no_grad``, i.e.
  serving straight through the autograd graph (what any caller that
  does ``model(Tensor(x))`` gets);
* the frozen engine from ``ModelQuantizer.freeze()`` in its bit-exact
  float64 mode and its float32 serving mode (``predict`` batches of
  512), plus the ``"fused"`` plan-compiler backend in float32 --
  measured back to back with the float interpreter so the committed
  ``fused_vs_float32`` ratio is a same-run, same-machine comparison.

Correctness is asserted alongside speed: float64 output (both
backends) must match the hook path to <= 1e-9 and the float32 modes
must keep argmax parity.  Each workload entry also records the fused
plan's per-kind profile (``FrozenModel.profile()``).
Speedup floors are set conservatively (shared CI runners vary wildly);
the JSON is the record of what this machine actually measured.
"""

import json
from pathlib import Path

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.quant.framework import ModelQuantizer
from repro.runtime import kernels as K
from repro.zoo import calibration_batch

from _support import WORKLOADS, measure_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_infer.json"

N_SAMPLES = 1024
HOOK_BATCH = 128     # evaluate()'s default serving batch
FROZEN_BATCH = 512

#: variance control: every timing is the median of REPEATS runs after
#: WARMUP discarded runs, with the spread recorded in the JSON (see
#: :func:`_support.measure_seconds`).
REPEATS = 5
WARMUP = 1


#: long-sequence attention/LayerNorm microbench: vit-like width, the
#: sequence lengths where the full scores tensor spills the cache
#: budget and the blocked flash-style kernel engages.  Batch sizes
#: shrink with seq so every case does comparable work.
MICRO_DIM = 48
MICRO_HEADS = 4
MICRO_SEQS = ((128, 64), (512, 8), (1024, 2))


def _measure_seconds(fn):
    return measure_seconds(fn, REPEATS, WARMUP)


def _attention_multipass(q, k, v, num_heads, inv_sqrt, bufs):
    """The interpreter's pre-blocking attention path: strided 4-D
    head views, full seq x seq scores, multi-pass softmax."""
    batch, seq, dim = q.shape
    hd = dim // num_heads

    def split(t):
        return t.reshape(batch, seq, num_heads, hd).transpose(0, 2, 1, 3)

    scores = (split(q) @ split(k).transpose(0, 1, 3, 2)) * inv_sqrt
    weights = scores - scores.max(axis=-1, keepdims=True)
    np.exp(weights, out=weights)
    weights /= weights.sum(axis=-1, keepdims=True)
    context = weights @ split(v)
    return context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)


def _micro_cache_kernels():
    """Blocked attention + fused-moment LayerNorm vs their multi-pass
    baselines at long sequence lengths.  Same-run ratio pairs; the
    ``blocked_attn_vs_baseline`` geomean is gated >= 1.0 in CI."""
    inv_sqrt = 1.0 / np.sqrt(MICRO_DIM // MICRO_HEADS)
    weight = np.linspace(0.5, 1.5, MICRO_DIM).astype(np.float32)
    bias = np.linspace(-0.1, 0.1, MICRO_DIM).astype(np.float32)
    cases = {}
    attn_ratios, ln_ratios = [], []
    for seq, batch in MICRO_SEQS:
        rng = np.random.default_rng(seq)
        q, k, v = (
            rng.standard_normal((batch, seq, MICRO_DIM), dtype=np.float32)
            for _ in range(3)
        )
        bufs_fast, bufs_base = {}, {}
        ref = _attention_multipass(q, k, v, MICRO_HEADS, inv_sqrt, bufs_base)
        got = K.attention_heads_infer(
            q, k, v, MICRO_HEADS, inv_sqrt, bufs=bufs_fast
        )
        np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-4)
        base_s, base_spread = _measure_seconds(
            lambda: _attention_multipass(
                q, k, v, MICRO_HEADS, inv_sqrt, bufs_base
            )
        )
        fast_s, fast_spread = _measure_seconds(
            lambda: K.attention_heads_infer(
                q, k, v, MICRO_HEADS, inv_sqrt, bufs=bufs_fast
            )
        )
        x = rng.standard_normal((batch * seq, MICRO_DIM), dtype=np.float32)
        ln_base_s, _ = _measure_seconds(
            lambda: K.layer_norm_infer(x, weight, bias, 1e-5, bufs=bufs_base)
        )
        ln_fast_s, _ = _measure_seconds(
            lambda: K.layer_norm_1pass_infer(
                x, weight, bias, 1e-5, bufs=bufs_fast
            )
        )
        attn_ratios.append(base_s / fast_s)
        ln_ratios.append(ln_base_s / ln_fast_s)
        cases[str(seq)] = {
            "batch": batch,
            "attn_multipass_seconds": base_s,
            "attn_blocked_seconds": fast_s,
            "attn_blocked_speedup": base_s / fast_s,
            "ln_twopass_seconds": ln_base_s,
            "ln_1pass_seconds": ln_fast_s,
            "ln_1pass_speedup": ln_base_s / ln_fast_s,
            "timing_spread_max_over_min": {
                "attn_multipass": base_spread,
                "attn_blocked": fast_spread,
            },
        }
    return {
        "dim": MICRO_DIM,
        "heads": MICRO_HEADS,
        "cases": cases,
        "blocked_attn_vs_baseline": float(
            np.exp(np.mean(np.log(attn_ratios)))
        ),
        "ln_1pass_vs_baseline": float(np.exp(np.mean(np.log(ln_ratios)))),
    }


def _hook_serve(entry, x, tokens: bool):
    out = []
    for start in range(0, x.shape[0], HOOK_BATCH):
        batch = x[start: start + HOOK_BATCH]
        out.append(entry.model(batch if tokens else Tensor(batch)).data)
    return np.concatenate(out)


def test_perf_infer(zoo, emit):
    results = {}
    rows = []
    for workload in WORKLOADS:
        entry = zoo(workload)
        dataset = entry.dataset
        tokens = dataset.input_kind == "tokens"
        x = np.concatenate([dataset.x_test] * 8)[:N_SAMPLES]

        quantizer = ModelQuantizer(entry.model, "ip-f", 4)
        quantizer.calibrate(calibration_batch(dataset)).apply()
        try:
            frozen64 = quantizer.freeze(model_name=workload)
            frozen32 = quantizer.freeze(model_name=workload).astype(np.float32)
            fused64 = quantizer.freeze(model_name=workload, backend="fused")
            fused32 = quantizer.freeze(
                model_name=workload, backend="fused"
            ).astype(np.float32)

            with no_grad():
                reference = _hook_serve(entry, x, tokens)
            exact = float(np.abs(frozen64.predict(x, FROZEN_BATCH) - reference).max())
            assert exact <= 1e-9, (workload, exact)
            fused_exact = float(
                np.abs(fused64.predict(x, FROZEN_BATCH) - reference).max()
            )
            assert fused_exact <= 1e-9, (workload, fused_exact)
            parity = float(np.mean(
                np.argmax(frozen32.predict(x, FROZEN_BATCH), axis=1)
                == np.argmax(reference, axis=1)
            ))
            assert parity >= 0.99, (workload, parity)
            fused_parity = float(np.mean(
                np.argmax(fused32.predict(x, FROZEN_BATCH), axis=1)
                == np.argmax(reference, axis=1)
            ))
            assert fused_parity >= 0.99, (workload, fused_parity)

            def hook_nograd():
                with no_grad():
                    _hook_serve(entry, x, tokens)

            hook_s, hook_spread = _measure_seconds(hook_nograd)
            autograd_s, autograd_spread = _measure_seconds(
                lambda: _hook_serve(entry, x, tokens)
            )
            f64_s, f64_spread = _measure_seconds(
                lambda: frozen64.predict(x, FROZEN_BATCH)
            )
            # float32 vs fused float32 are the gated same-run pair:
            # measured back to back on the same machine state so their
            # ratio cancels runner-speed noise
            f32_s, f32_spread = _measure_seconds(
                lambda: frozen32.predict(x, FROZEN_BATCH)
            )
            fused_s, fused_spread = _measure_seconds(
                lambda: fused32.predict(x, FROZEN_BATCH)
            )
            profile = fused32.profile(x[:FROZEN_BATCH], repeats=1)
        finally:
            quantizer.remove()

        size = frozen64.size_report()
        results[workload] = {
            "samples": N_SAMPLES,
            "hook_serving_seconds": hook_s,
            "hook_autograd_seconds": autograd_s,
            "frozen_float64_seconds": f64_s,
            "frozen_float32_seconds": f32_s,
            "fused_float32_seconds": fused_s,
            "hook_samples_per_sec": N_SAMPLES / hook_s,
            "frozen_float32_samples_per_sec": N_SAMPLES / f32_s,
            "fused_float32_samples_per_sec": N_SAMPLES / fused_s,
            "speedup_float64": hook_s / f64_s,
            "speedup_float32": hook_s / f32_s,
            "speedup_float32_vs_autograd": autograd_s / f32_s,
            "speedup_fused_float32": hook_s / fused_s,
            "fused_vs_float32": f32_s / fused_s,
            "float64_max_abs_diff": exact,
            "fused_float64_max_abs_diff": fused_exact,
            "float32_argmax_parity": parity,
            "fused_float32_argmax_parity": fused_parity,
            "packed_weight_bytes": size["packed_weight_bytes"],
            "float64_equivalent_bytes": size["float64_equivalent_bytes"],
            "fused_profile_by_kind": {
                kind: round(seconds, 6)
                for kind, seconds in profile["by_kind"].items()
            },
            "timing_spread_max_over_min": {
                "hook_serving": hook_spread,
                "hook_autograd": autograd_spread,
                "frozen_float64": f64_spread,
                "frozen_float32": f32_spread,
                "fused_float32": fused_spread,
            },
        }
        rows.append(
            f"{workload:>12}: hook {N_SAMPLES/hook_s:8.0f} smp/s | frozen f64 "
            f"{hook_s/f64_s:4.1f}x  f32 {hook_s/f32_s:4.1f}x  "
            f"fused {hook_s/fused_s:4.1f}x ({f32_s/fused_s:4.2f}x over f32) | "
            f"packed {size['packed_weight_bytes']/1024:6.1f} KiB "
            f"({size['float64_equivalent_bytes']/size['packed_weight_bytes']:4.1f}x smaller)"
        )

    speedups32 = [results[w]["speedup_float32"] for w in WORKLOADS]
    speedups64 = [results[w]["speedup_float64"] for w in WORKLOADS]
    fused_ratios = [results[w]["fused_vs_float32"] for w in WORKLOADS]
    fused_speedups = [results[w]["speedup_fused_float32"] for w in WORKLOADS]
    results["aggregate"] = {
        "geomean_speedup_float32": float(np.exp(np.mean(np.log(speedups32)))),
        "geomean_speedup_float64": float(np.exp(np.mean(np.log(speedups64)))),
        "geomean_speedup_fused_float32": float(
            np.exp(np.mean(np.log(fused_speedups)))
        ),
        "geomean_fused_vs_float32": float(np.exp(np.mean(np.log(fused_ratios)))),
        "max_speedup_float32": float(np.max(speedups32)),
    }
    results["microbench"] = _micro_cache_kernels()
    micro = results["microbench"]
    rows.append(
        f"{'microbench':>12}: blocked attn "
        f"{micro['blocked_attn_vs_baseline']:4.2f}x  ln-1pass "
        f"{micro['ln_1pass_vs_baseline']:4.2f}x over multi-pass "
        f"(seq {'/'.join(str(s) for s, _ in MICRO_SEQS)})"
    )
    results["meta"] = {
        "description": (
            "batched serving throughput: frozen runtime vs the hook-based "
            "fake-quant path (evaluate-style no_grad loop, and the same "
            "loop through the autograd graph)"
        ),
        "hook_batch": HOOK_BATCH,
        "frozen_batch": FROZEN_BATCH,
        "combination": "ip-f",
        "bits": 4,
        "frozen_backends": ["float", "fused"],
        "timing_method": "median",
        "timing_repeats": REPEATS,
        "timing_warmup": WARMUP,
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")

    agg = results["aggregate"]
    rows.append(
        f"{'geomean':>12}: frozen f64 {agg['geomean_speedup_float64']:4.1f}x  "
        f"f32 {agg['geomean_speedup_float32']:4.1f}x  "
        f"fused {agg['geomean_speedup_fused_float32']:4.1f}x "
        f"({agg['geomean_fused_vs_float32']:4.2f}x over f32)"
    )
    emit("BENCH_infer", "frozen-runtime serving vs hook-based path\n" + "\n".join(rows))

    # Conservative floors (shared runners flake; BENCH_infer.json is the
    # record): float64 must not regress, float32 must clearly win, and
    # the fused plan must beat the float interpreter in the same run.
    assert agg["geomean_speedup_float64"] >= 1.0
    assert min(speedups32) >= 1.5
    assert agg["geomean_speedup_float32"] >= 2.0
    assert agg["geomean_fused_vs_float32"] >= 1.1
    # the blocked kernels must actually beat the multi-pass baselines
    # at long sequence lengths (same-run pair, noise cancels)
    assert micro["blocked_attn_vs_baseline"] >= 1.0
    assert micro["ln_1pass_vs_baseline"] >= 1.0
