"""Quantize a trained CNN with ANT, then recover accuracy via QAT.

Run:  python examples/quantize_cnn.py  [workload]

Reproduces the paper's Fig. 4 inference flow on the VGG-style workload:
calibrate on ~100 samples, select a primitive type per tensor
(Algorithm 2), fake-quantize weights (per-channel) and activations
(per-tensor), measure post-training accuracy, then fine-tune with STE
to close the gap, and finally escalate the worst layers to 8-bit with
the mixed-precision search.
"""

import sys
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.quant import ModelQuantizer, MixedPrecisionSearch
from repro.quant.framework import evaluate
from repro.quant.qat import finetune
from repro.zoo import calibration_batch, trained_model


def main(workload: str = "vgg16") -> None:
    print(f"== loading / training workload {workload!r} (cached after first run)")
    entry = trained_model(workload)
    dataset = entry.dataset
    print(f"   FP32 test accuracy: {entry.fp32_accuracy:.4f}\n")

    print("== calibrating ANT (int + PoT + flint, 4-bit)")
    quantizer = ModelQuantizer(entry.model, combination="ip-f", bits=4)
    quantizer.calibrate(calibration_batch(dataset, n=100))
    quantizer.apply()

    rows = [
        [cfg.name, cfg.weight_quantizer.dtype.name, cfg.input_quantizer.dtype.name]
        for cfg in quantizer.layers.values()
    ]
    print(format_table(["layer", "weight type", "input type"], rows))

    ptq_acc = evaluate(entry.model, dataset.x_test, dataset.y_test)
    print(f"\n   4-bit ANT, post-training: {ptq_acc:.4f} "
          f"(loss {entry.fp32_accuracy - ptq_acc:+.4f})")

    print("\n== quantization-aware fine-tuning (STE)")
    finetune(entry.model, dataset.x_train, dataset.y_train, steps=60)
    qat_acc = evaluate(entry.model, dataset.x_test, dataset.y_test)
    print(f"   4-bit ANT, fine-tuned:    {qat_acc:.4f} "
          f"(loss {entry.fp32_accuracy - qat_acc:+.4f})")

    print("\n== mixed-precision escalation to within 1% of FP32 (ANT4-8)")
    search = MixedPrecisionSearch(
        quantizer,
        evaluate_fn=lambda: evaluate(entry.model, dataset.x_test, dataset.y_test),
        baseline_accuracy=entry.fp32_accuracy,
        threshold=0.01,
        finetune_fn=lambda: finetune(
            entry.model, dataset.x_train, dataset.y_train, steps=30
        ),
        max_rounds=4,
    )
    result = search.run()
    print(f"   final accuracy {result.accuracy:.4f} "
          f"(loss {result.accuracy_loss:+.4f}) after escalating "
          f"{len(result.escalated)} layer(s): {result.escalated}")
    report = quantizer.report()
    print(f"   tensor types: {report.type_counts}, "
          f"avg bits {report.average_bits:.2f}, "
          f"4-bit tensor ratio {report.low_bit_tensor_fraction:.0%}")

    print("\n== freezing into the packed inference runtime")
    frozen = quantizer.freeze(model_name=workload)
    size = frozen.size_report()
    print(f"   packed weights: {size['packed_weight_bytes'] / 1024:.1f} KiB "
          f"(float64 equivalent "
          f"{size['float64_equivalent_bytes'] / 1024:.1f} KiB, "
          f"{size['float64_equivalent_bytes'] / size['packed_weight_bytes']:.1f}x smaller)")
    ckpt = Path(".cache") / f"{workload}_frozen.npz"
    ckpt.parent.mkdir(exist_ok=True)
    frozen.save(ckpt)
    served = frozen.predict_classes(dataset.x_test)
    frozen_acc = float(np.mean(served == dataset.y_test))
    print(f"   frozen predict() accuracy: {frozen_acc:.4f} "
          f"(hook path {result.accuracy:.4f}); checkpoint saved to {ckpt}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vgg16")
