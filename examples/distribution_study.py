"""Study which numeric type wins on which tensor distribution.

Run:  python examples/distribution_study.py

Sweeps the tail weight of a Student-t family from Gaussian-like to
extremely heavy-tailed and reports each 4-bit primitive's MSE
normalized to flint -- the parametric version of the paper's Fig. 14
message: int wins on compact distributions, flint on Gaussian-to-
Laplace bodies, PoT on extreme tails.
"""

import numpy as np

from repro.analysis import format_table
from repro.dtypes import FlintType, IntType, PoTType, get_type
from repro.quant import search_scale


def main() -> None:
    rng = np.random.default_rng(0)
    dtypes = [
        IntType(4, True),
        get_type("float4"),
        PoTType(4, True),
        FlintType(4, True),
    ]
    rows = []
    sweep = [("uniform", None)] + [("student_t", df) for df in (30, 10, 6, 4, 3, 2)]
    for family, df in sweep:
        if family == "uniform":
            x = rng.uniform(-1, 1, size=16384)
            label = "uniform"
        else:
            x = rng.standard_t(df, size=16384)
            label = f"student-t df={df}"
        mses = {dtype.name: search_scale(x, dtype).mse for dtype in dtypes}
        flint_mse = mses["flint4"]
        rows.append(
            [label]
            + [mses[d.name] / flint_mse for d in dtypes]
            + [min(mses, key=mses.get)]
        )
    print(format_table(
        ["distribution"] + [d.name for d in dtypes] + ["winner"],
        rows,
        title="4-bit MSE normalized to flint (lower = better), cf. Fig. 14",
        float_fmt="{:.3f}",
    ))


if __name__ == "__main__":
    main()
