"""Quickstart: the ANT data types and Algorithm 2 in five minutes.

Run:  python examples/quickstart.py

Walks through (1) the flint value grid of Table II, (2) bit-level
encode/decode, (3) MSE-optimal scale search, and (4) per-tensor type
selection on tensors drawn from the paper's three distribution
families.
"""

import numpy as np

from repro import FlintType, IntType, PoTType, candidate_list, search_scale, select_type
from repro.analysis import classify_distribution, format_table
from repro.data import sample_distribution


def show_flint_table() -> None:
    """Print the 4-bit unsigned flint value table (the paper's Table II)."""
    flint = FlintType(4, signed=False)
    rows = []
    for row in flint.value_table():
        rows.append(
            [
                row["pattern"],
                "-" if row["exponent"] is None else row["exponent"],
                row["man_bits"],
                ", ".join(f"{v:g}" for v in row["values"]),
            ]
        )
    print(format_table(["bits", "exponent", "mantissa bits", "values"], rows,
                       title="4-bit unsigned flint (Table II)"))
    print()


def show_encoding() -> None:
    """Encode/decode round trip, including the paper's 11 -> 12 example."""
    flint = FlintType(4, signed=False)
    value = flint.quantize(np.array([11.0]))[0]
    code = flint.encode(np.array([value]))[0]
    print(f"quantize(11) = {value:g}, encoded as {code:04b} "
          f"(the worked example of Sec. IV-A)")
    grid = flint.grid
    assert np.allclose(flint.decode(flint.encode(grid)), grid)
    print(f"round-trip over all {grid.size} grid values: exact\n")


def show_type_selection() -> None:
    """Algorithm 2 on the three distribution families of Fig. 1."""
    candidates = candidate_list("ip-f", bits=4, signed=True)
    rows = []
    for family in ["uniform", "gaussian", "laplace", "student_t", "gaussian_outliers"]:
        x = sample_distribution(family, 8192, seed=0)
        choice = select_type(x, candidates)
        rows.append(
            [
                family,
                classify_distribution(x),
                choice.kind,
                choice.mse,
                {k: round(v, 5) for k, v in choice.per_type_mse.items()},
            ]
        )
    print(format_table(
        ["distribution", "classified as", "ANT picks", "MSE", "per-type MSE"],
        rows,
        title="Algorithm 2 type selection (int + PoT + flint candidates)",
    ))
    print()


def show_scale_search() -> None:
    """Clipping-range (scale) search for each primitive on one tensor."""
    x = sample_distribution("gaussian", 8192, seed=1)
    rows = []
    for dtype in (IntType(4, True), PoTType(4, True), FlintType(4, True)):
        result = search_scale(x, dtype)
        rows.append([dtype.name, result.scale, result.clip_ratio, result.mse])
    print(format_table(
        ["type", "scale", "clip ratio", "MSE"],
        rows,
        title="MSE-optimal scale search on a Gaussian tensor",
    ))


if __name__ == "__main__":
    show_flint_table()
    show_encoding()
    show_type_selection()
    show_scale_search()
