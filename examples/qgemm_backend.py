"""Code-domain execution: serve a frozen model on packed codes.

Calibrates a zoo CNN, freezes it, and serves it with the ``qgemm``
backend -- GEMMs run directly on the packed low-bit codes through
partial-product LUTs (the paper's decode-in-front-of-MAC dataflow in
software) -- then bridges the *executed* MAC/traffic counts into the
hardware latency/energy model.

Run:  python examples/qgemm_backend.py
"""

import numpy as np

from repro.qgemm import (
    CostMeter,
    QGemmBackend,
    lut_footprint_report,
    simulate_executed,
    simulate_executed_tensorcore,
)
from repro.quant.framework import ModelQuantizer
from repro.zoo import calibration_batch, trained_model

WORKLOAD = "resnet18"

entry = trained_model(WORKLOAD)
quantizer = ModelQuantizer(entry.model, "ip-f", 4)
quantizer.calibrate(calibration_batch(entry.dataset)).apply()
try:
    frozen = quantizer.freeze(model_name=WORKLOAD)
finally:
    quantizer.remove()

x = entry.dataset.x_test[:64]

# --- float64: the code domain holds the runtime's bit-exact parity bar
reference = frozen.predict(x)                     # float backend
qgemm_out = frozen.set_backend("qgemm").predict(x)
print(f"backend={frozen.backend}  "
      f"max |qgemm - float| = {np.abs(qgemm_out - reference).max():.2e}")

# --- float32 serving with a cost meter riding along
meter = CostMeter()
frozen.astype(np.float32).set_backend(QGemmBackend(meter=meter))
labels = frozen.predict_classes(x)
accuracy = float(np.mean(labels == entry.dataset.y_test[:64]))
print(f"float32 qgemm accuracy on {len(x)} samples: {accuracy:.3f}")

# --- what actually executed, layer by layer
print("\nexecuted code-domain work:")
for cost in meter.layers.values():
    print(f"  {cost.name:>24} {cost.w_dtype:>7} x {cost.a_dtype:<7} "
          f"{cost.code_macs/1e6:8.2f} M MACs  "
          f"{cost.packed_traffic_bytes/1024:8.1f} KiB packed")
summary = meter.summary()
print(f"  {'total':>24} {summary['total_code_macs']/1e6:27.2f} M MACs  "
      f"{summary['total_packed_traffic_bytes']/1024:8.1f} KiB packed")

# --- LUT memory: one small table per type pair, shared by all layers
pairs = sorted({(c.w_dtype, c.a_dtype) for c in meter.layers.values()})
print("\npartial-product LUT footprints:")
for name, info in lut_footprint_report(pairs).items():
    print(f"  {name:>16}: {info['rows']:>3} x {info['cols']:<3} "
          f"({info['float64_bytes']/1024:4.1f} KiB float64, "
          f"integral={info['integral']})")

# --- executed workload through the hardware model (Fig. 13 style)
sim = simulate_executed(meter, "ant-os")
tc = simulate_executed_tensorcore(meter)
split = ", ".join(f"{k} {v/1e6:.1f} uJ" for k, v in sim.energy_pj.items())
print(f"\nant-os estimate for the executed workload: {sim.cycles} cycles")
print(f"  energy split: {split}")
print(f"tensor-core roofline: {tc.seconds*1e6:.2f} us "
      f"({tc.math_bound_layers} math-bound / {tc.memory_bound_layers} "
      f"memory-bound layers)")
