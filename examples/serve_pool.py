"""Serve traffic in parallel from a packed frozen checkpoint.

Run:  python examples/serve_pool.py [workload] [n_workers] [batch_size]
          [--trace-out traces.jsonl]

Builds on ``examples/serve_frozen.py``: after calibrate -> freeze ->
save, the packed ``.npz`` checkpoint is served by a
:class:`repro.serve.ServingPool` -- N worker processes that each decode
the checkpoint once, a micro-batching queue that coalesces
single-sample requests into shared forwards, and a bulk ``map_predict``
path that shards large arrays across the workers.  Pool results are
bit-identical to single-process ``FrozenModel.predict`` with padded
batches, which the script verifies.

With ``--trace-out PATH`` the pool's per-request trace (queue wait,
batch assembly, per-region compute, transit) is dumped as JSONL; wrap
it for the chrome://tracing viewer with
``repro.obs.jsonl_to_chrome(PATH, PATH + '.chrome.json')``.  The
merged parent+worker metrics digest (``pool.metrics()``) prints either
way unless ``REPRO_OBS=0``.
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.quant import ModelQuantizer
from repro.runtime import FrozenModel
from repro.serve import (
    ModelRegistry,
    ModelSpec,
    PoolConfig,
    ServingClient,
    ServingPool,
)
from repro.zoo import calibration_batch, trained_model


def main(
    workload: str = "resnet18",
    n_workers: int = 2,
    batch_size: int = 256,
    trace_out: str = None,
) -> None:
    print(f"== loading / training workload {workload!r} (cached after first run)")
    entry = trained_model(workload)
    dataset = entry.dataset

    print("== calibrate + freeze + save (one-time, offline)")
    quantizer = ModelQuantizer(entry.model, combination="ip-f", bits=4)
    quantizer.calibrate(calibration_batch(dataset, n=100)).apply()
    frozen = quantizer.freeze(model_name=workload)
    quantizer.remove()
    ckpt = Path(".cache") / f"{workload}_pool.npz"
    ckpt.parent.mkdir(exist_ok=True)
    frozen.save(ckpt)

    x = np.concatenate([dataset.x_test] * 8)
    reference = FrozenModel.load(ckpt).astype(np.float32)
    expected = reference.predict(x, batch_size=batch_size, pad_batches=True)

    print(f"== serve with a {n_workers}-worker pool (each decodes the checkpoint once)")
    registry = ModelRegistry({workload: ModelSpec(ckpt)})
    with ServingPool(
        registry,
        PoolConfig(n_workers=n_workers, batch_size=batch_size, max_wait_ms=2.0),
    ) as pool:
        start = time.perf_counter()
        bulk = pool.map_predict(x)
        elapsed = time.perf_counter() - start
        print(f"   map_predict: {x.shape[0]} samples in {elapsed:.3f}s "
              f"({x.shape[0] / elapsed:.0f} samples/sec aggregate)")
        print(f"   bit-identical to single-process predict: "
              f"{np.array_equal(bulk, expected)}")

        client = ServingClient(pool)
        sample_logits = client.predict_one(x[0])
        print(f"   micro-batched single request -> logits {sample_logits.shape}, "
              f"bit-identical: {np.array_equal(sample_logits, expected[0])}")
        print(f"   pool stats: {pool.stats()}")

        if obs.enabled():
            print("== telemetry (pool.metrics(): merged parent+worker registry)")
            for key, value in sorted(pool.metrics().items()):
                print(f"   {key}: {value}")
            if trace_out is not None:
                events = pool.trace_events()
                obs.write_jsonl(trace_out, events)
                print(f"   wrote {len(events)} trace events to {trace_out} "
                      f"(chrome://tracing via repro.obs.jsonl_to_chrome)")

    print("== weight-only mode (packed low-bit weights, float activations)")
    wo_registry = ModelRegistry(
        {workload: ModelSpec(ckpt, weight_only=True)}
    )
    with ServingPool(
        wo_registry, PoolConfig(n_workers=n_workers, batch_size=batch_size)
    ) as pool:
        start = time.perf_counter()
        labels = np.argmax(pool.map_predict(x), axis=1)
        elapsed = time.perf_counter() - start
        accuracy = float(np.mean(labels[: dataset.n_test] == dataset.y_test))
        print(f"   served {x.shape[0]} samples in {elapsed:.3f}s "
              f"({x.shape[0] / elapsed:.0f} samples/sec); accuracy {accuracy:.4f} "
              f"(fp32 reference {entry.fp32_accuracy:.4f})")


if __name__ == "__main__":
    argv = list(sys.argv[1:])
    trace_path = None
    if "--trace-out" in argv:
        flag = argv.index("--trace-out")
        trace_path = argv[flag + 1]
        del argv[flag: flag + 2]
    main(
        argv[0] if len(argv) > 0 else "resnet18",
        int(argv[1]) if len(argv) > 1 else 2,
        int(argv[2]) if len(argv) > 2 else 256,
        trace_out=trace_path,
    )
