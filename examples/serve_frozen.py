"""Serve traffic from a packed frozen checkpoint.

Run:  python examples/serve_frozen.py [workload] [batch_size]

The deploy half of the calibrate -> freeze -> save -> load -> predict
workflow: calibrate once, freeze to a packed ``.npz`` (4-bit weights
really stored as 4 bits), then reload the checkpoint *without* the
original model object and serve batched predictions from the graph-free
runtime -- bit-exact in float64, fastest in float32.
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.quant import ModelQuantizer
from repro.runtime import FrozenModel
from repro.zoo import calibration_batch, trained_model


def main(workload: str = "resnet18", batch_size: int = 256) -> None:
    print(f"== loading / training workload {workload!r} (cached after first run)")
    entry = trained_model(workload)
    dataset = entry.dataset

    print("== calibrate + freeze (one-time, offline)")
    quantizer = ModelQuantizer(entry.model, combination="ip-f", bits=4)
    quantizer.calibrate(calibration_batch(dataset, n=100)).apply()
    frozen = quantizer.freeze(model_name=workload)
    quantizer.remove()

    ckpt = Path(".cache") / f"{workload}_frozen.npz"
    ckpt.parent.mkdir(exist_ok=True)
    frozen.save(ckpt)
    size = frozen.size_report()
    print(f"   checkpoint {ckpt} ({ckpt.stat().st_size / 1024:.1f} KiB on disk; "
          f"packed weights {size['packed_weight_bytes'] / 1024:.1f} KiB vs "
          f"{size['float64_equivalent_bytes'] / 1024:.1f} KiB as float64)")

    print("== reload from the packed checkpoint and serve")
    server = FrozenModel.load(ckpt).astype(np.float32)
    x = np.concatenate([dataset.x_test] * 8)
    start = time.perf_counter()
    labels = server.predict_classes(x, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    accuracy = float(np.mean(labels[: dataset.n_test] == dataset.y_test))
    print(f"   served {x.shape[0]} samples in {elapsed:.3f}s "
          f"({x.shape[0] / elapsed:.0f} samples/sec, batch {batch_size})")
    print(f"   accuracy {accuracy:.4f} (fp32 reference {entry.fp32_accuracy:.4f})")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "resnet18",
        int(sys.argv[2]) if len(sys.argv) > 2 else 256,
    )
