"""Drive the bit-exact TypeFusion PE: decoders, MACs, 8-bit fusion.

Run:  python examples/typefusion_pe.py

Shows the hardware view of ANT: Table III's int-based decomposition,
a mixed-type (flint x PoT) dot product computed on one MAC, and an
8-bit multiply assembled from four 4-bit PEs (Fig. 8).
"""

import numpy as np

from repro.analysis import format_table
from repro.dtypes import FlintType, PoTType
from repro.hardware import TypeFusionMAC
from repro.hardware.decoder import decode_table
from repro.hardware.pe import decode_operand, dot_product, fused_int8_mac


def show_decode_table() -> None:
    rows = [
        [row["binary"], row["exponent"], row["base"], row["value"]]
        for row in decode_table(4)
    ]
    print(format_table(
        ["binary", "exponent", "base integer", "value"],
        rows,
        title="Int-based flint decoding (Table III)",
    ))
    print()


def show_mixed_type_dot() -> None:
    """flint weights x PoT activations on a single TypeFusion MAC."""
    rng = np.random.default_rng(42)
    flint = FlintType(4, signed=True)
    pot = PoTType(4, signed=True)
    weights = rng.choice(flint.grid, size=32)
    acts = rng.choice(pot.grid, size=32)

    hw_result = dot_product(
        flint.encode(weights), pot.encode(acts), "flint", "pot", bits=4, signed=True
    )
    sw_result = int(np.dot(weights, acts))
    print(f"mixed-type dot product: hardware={hw_result}, numpy={sw_result}, "
          f"match={hw_result == sw_result}")

    # Show one decoded multiply in detail (signed 4-bit flint grid
    # is +-{1, 2, 3, 4, 6, 8, 16}).
    w_code = int(flint.encode(np.array([6.0]))[0])
    a_code = int(pot.encode(np.array([4.0]))[0])
    w_op = decode_operand(w_code, "flint", 4, True)
    a_op = decode_operand(a_code, "pot", 4, True)
    mac = TypeFusionMAC(4)
    product = mac.multiply(w_op, a_op)
    print(f"  6(flint {w_code:04b} -> base {w_op.base} exp {w_op.exponent}) x "
          f"4(pot {a_code:04b} -> base {a_op.base} exp {a_op.exponent}) "
          f"= {product}\n")


def show_int8_fusion() -> None:
    """Four 4-bit PEs computing an exact 8x8 multiply (Fig. 8)."""
    rng = np.random.default_rng(7)
    checks = []
    for a, b in rng.integers(0, 256, size=(5, 2)):
        fused = fused_int8_mac(int(a), int(b))
        checks.append([int(a), int(b), fused, int(a) * int(b), fused == a * b])
    print(format_table(
        ["a", "b", "fused result", "a*b", "exact"],
        checks,
        title="8-bit MAC from four 4-bit ANT PEs (Fig. 8)",
    ))


if __name__ == "__main__":
    show_decode_table()
    show_mixed_type_dot()
    show_int8_fusion()
