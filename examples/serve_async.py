"""Elastic async serving: autoscaling pool + asyncio front end.

Run:  python examples/serve_async.py [workload] [max_workers]

Builds on ``examples/serve_pool.py``: the packed checkpoint is served
by a :class:`repro.serve.ServingPool` that starts at one worker, a
:class:`repro.serve.PoolAutoscaler` grows/shrinks it on backlog x EWMA
service time, and an :class:`repro.serve.AsyncServingClient` drives it
from an event loop -- ``await client.predict(...)`` suspends a
coroutine instead of blocking a thread, and ``async for`` streams a
dataset through bounded parent memory.  Results stay bit-identical to
single-process ``FrozenModel.predict`` with padded batches throughout
the scaling events, which the script verifies.
"""

import asyncio
import sys
import time
from pathlib import Path

import numpy as np

from repro.quant import ModelQuantizer
from repro.runtime import FrozenModel
from repro.serve import (
    AsyncServingClient,
    ModelRegistry,
    ModelSpec,
    PoolAutoscaler,
    PoolConfig,
    ServingPool,
)
from repro.zoo import calibration_batch, trained_model


async def drive(pool, x, expected):
    client = AsyncServingClient(pool)

    print("== awaitable predictions (coroutines, not blocked threads)")
    logits = await client.predict(x[:32])
    print(f"   await client.predict -> {logits.shape}, bit-identical: "
          f"{np.array_equal(logits, expected[:32])}")
    row = await client.predict_one(x[0])
    print(f"   await client.predict_one -> {row.shape}, bit-identical: "
          f"{np.array_equal(row, expected[0])}")

    print("== async streaming (bounded parent memory)")
    residency = {}
    n_ok = 0
    start = time.perf_counter()
    stream = (x[i : i + 50] for i in range(0, len(x), 50))
    index = 0
    async for row in client.stream_predict(stream, residency=residency):
        n_ok += int(np.array_equal(row, expected[index]))
        index += 1
    elapsed = time.perf_counter() - start
    print(f"   {index} rows in {elapsed:.3f}s "
          f"({index / elapsed:.0f} samples/sec), {n_ok} bit-identical")
    print(f"   residency: peak {residency['peak_shards']} of "
          f"cap {residency['cap_shards']} shards "
          f"({residency['shard_size']} samples each)")


def main(workload: str = "resnet18", max_workers: int = 4) -> None:
    print(f"== loading / training workload {workload!r} (cached after first run)")
    entry = trained_model(workload)
    dataset = entry.dataset

    print("== calibrate + freeze + save (one-time, offline)")
    quantizer = ModelQuantizer(entry.model, combination="ip-f", bits=4)
    quantizer.calibrate(calibration_batch(dataset, n=100)).apply()
    frozen = quantizer.freeze(model_name=workload)
    quantizer.remove()
    ckpt = Path(".cache") / f"{workload}_async.npz"
    ckpt.parent.mkdir(exist_ok=True)
    frozen.save(ckpt)

    x = np.concatenate([dataset.x_test] * 8)
    reference = FrozenModel.load(ckpt).astype(np.float32)
    expected = reference.predict(x, batch_size=64, pad_batches=True)

    print(f"== elastic pool: 1 worker, autoscaling up to {max_workers}")
    registry = ModelRegistry({workload: ModelSpec(ckpt)})
    with ServingPool(
        registry, PoolConfig(n_workers=1, batch_size=64, prefetch=2)
    ) as pool:
        scaler = PoolAutoscaler(
            pool,
            min_workers=1,
            max_workers=max_workers,
            latency_budget_s=0.05,
            idle_window_s=1.0,
            cooldown_s=0.2,
            interval_s=0.05,
        )
        with scaler:
            asyncio.run(drive(pool, x, expected))
            print("== burst load to trigger scale-up")
            bulk = pool.map_predict(np.concatenate([x] * 4))
            print(f"   bit-identical under scaling events: "
                  f"{np.array_equal(bulk, np.concatenate([expected] * 4))}")
            print(f"   workers now: {pool.stats()['workers']} "
                  f"(scale-ups so far: {scaler.n_scale_ups})")
            print("== idle: waiting for scale-down to the floor")
            deadline = time.monotonic() + 10.0
            while pool.stats()["workers"] > 1 and time.monotonic() < deadline:
                time.sleep(0.1)
        stats = pool.stats()
        print(f"   workers: {stats['workers']} | retired: {stats['retired']} "
              f"| scale-ups: {scaler.n_scale_ups} "
              f"| scale-downs: {scaler.n_scale_downs}")
        print(f"   pool EWMA service time: {stats['ewma_service_s']:.4f}s/job")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "resnet18",
        int(sys.argv[2]) if len(sys.argv) > 2 else 4,
    )
