"""Serve a fleet of models from one pool (multi-tenant model zoo).

Run:  python examples/serve_zoo.py [workload] [n_workers]

Builds on ``examples/serve_pool.py``: instead of one checkpoint, the
pool serves a *registry* of named tenants -- here three freezes of the
same workload (4-bit, 3-bit, and weight-only 4-bit), which makes
routing mistakes visible as wrong logits rather than wrong labels.
The walk-through shows the redesigned serving API end to end:

* :class:`repro.serve.ModelSpec` -- checkpoint + dtype + backend +
  weight-only per tenant, validated eagerly in the parent;
* :class:`repro.serve.ServeConfig` + :func:`repro.serve.serve` -- the
  one-call assembly (registry + started pool + optional autoscaler);
* ``svc.model(name).predict(...)`` -- tenant-scoped handles;
* ``cache_budget_bytes`` -- each worker keeps a byte-budgeted LRU of
  decoded models, so a fleet larger than RAM still serves (cold
  tenants re-decode on demand; the ``serve.model_cache_*`` metrics
  show loads / hits / evictions).

Every tenant's pooled results stay bit-identical to its own
single-process ``spec.load().predict(x, batch_size, pad_batches=True)``
-- the script verifies this per tenant, with the LRU budget set low
enough that serving the third tenant evicts the first.
"""

import os
import sys
from pathlib import Path

import numpy as np

from repro import obs
from repro.quant import ModelQuantizer
from repro.serve import (
    AutoscaleConfig,
    ModelSpec,
    PoolConfig,
    ServeConfig,
    serve,
)
from repro.zoo import calibration_batch, trained_model

BATCH = 64


def freeze_checkpoint(entry, bits: int, out: Path) -> Path:
    quantizer = ModelQuantizer(entry.model, combination="ip-f", bits=bits)
    quantizer.calibrate(calibration_batch(entry.dataset, n=100)).apply()
    try:
        frozen = quantizer.freeze(model_name=entry.name)
    finally:
        quantizer.remove()
    frozen.save(out)
    return out


def main(workload: str = "resnet18", n_workers: int = 2) -> None:
    print(f"== loading / training workload {workload!r} (cached after first run)")
    entry = trained_model(workload)
    x = entry.dataset.x_test[:256]

    print("== freeze two checkpoints (4-bit and 3-bit), offline")
    root = Path(".cache")
    root.mkdir(exist_ok=True)
    ckpt4 = freeze_checkpoint(entry, 4, root / f"{workload}_zoo_int4.npz")
    ckpt3 = freeze_checkpoint(entry, 3, root / f"{workload}_zoo_int3.npz")

    specs = {
        f"{workload}-int4": ModelSpec(ckpt4),
        f"{workload}-int3": ModelSpec(ckpt3),
        f"{workload}-int4-wo": ModelSpec(ckpt4, weight_only=True),
    }
    references = {
        name: spec.load().predict(x, batch_size=BATCH, pad_batches=True)
        for name, spec in specs.items()
    }

    # room for ~2 of the 3 decoded checkpoints per worker: serving the
    # whole fleet forces LRU evictions, visible in the metrics below
    budget = os.path.getsize(ckpt4) + os.path.getsize(ckpt3)
    config = ServeConfig(
        models=specs,
        pool=PoolConfig(
            n_workers=n_workers,
            batch_size=BATCH,
            cache_budget_bytes=budget,
        ),
        autoscale=AutoscaleConfig(max_workers=max(2, n_workers)),
        default_model=f"{workload}-int4",
    )

    print(f"== serve() the fleet: {len(specs)} tenants, "
          f"{n_workers} workers, cache budget {budget / 1e6:.2f} MB/worker")
    with serve(config) as svc:
        for name in specs:
            logits = svc.model(name).predict(x)
            ok = np.array_equal(logits, references[name])
            print(f"   {name}: {x.shape[0]} samples, "
                  f"bit-identical to its own reference: {ok}")

        stats = svc.stats()
        print(f"   default tenant: {stats['default_model']}")
        for name, tenant in sorted(stats["per_model"].items()):
            print(f"   per-tenant stats {name}: "
                  f"p99={tenant['latency_p99_s']} "
                  f"queue_depth={tenant['queue_depth']}")

        if obs.enabled():
            print("== LRU cache behaviour (serve.model_cache_* metrics)")
            for key, value in sorted(svc.metrics().items()):
                if key.startswith("serve.model_cache"):
                    print(f"   {key}: {value}")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "resnet18",
        int(sys.argv[2]) if len(sys.argv) > 2 else 2,
    )
