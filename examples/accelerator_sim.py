"""Simulate the ANT accelerator against the Fig. 13 baselines.

Run:  python examples/accelerator_sim.py  [workload]

Executes one real-architecture workload (default BERT) on the six
simulated designs at iso-area (Table VII) and prints normalized latency
and the static/DRAM/buffer/core energy split.
"""

import sys

from repro.analysis import format_table, normalize_series
from repro.hardware import build_accelerator, workload_layers
from repro.hardware.accelerator import mixed_assignment, uniform_assignment


def assignments_for(scheme: str, layers):
    """Representative bit assignments per scheme (see benchmarks for the
    measured, model-derived assignments)."""
    n = len(layers)
    if scheme in ("ant-os", "ant-ws"):
        # ~90% of tensors at 4 bits (Sec. V-D)
        return mixed_assignment(layers, range(0, n, 10))
    if scheme == "bitfusion":
        # int-only needs many more 8-bit layers to hold accuracy
        return mixed_assignment(layers, range(0, n, 2))
    if scheme == "olaccel":
        return uniform_assignment(layers, 4, 4, outlier_fraction=0.03)
    if scheme == "biscaled":
        return uniform_assignment(layers, 6, 6)
    return uniform_assignment(layers, 8, 8)  # adafloat / int8


def main(workload: str = "bert-mnli") -> None:
    layers = workload_layers(workload)
    schemes = ["int8", "ant-os", "ant-ws", "bitfusion", "olaccel", "biscaled", "adafloat"]
    results = {}
    for scheme in schemes:
        accelerator = build_accelerator(scheme)
        results[scheme] = accelerator.simulate(layers, assignments_for(scheme, layers))

    latency = normalize_series({s: r.cycles for s, r in results.items()}, "int8")
    energy = normalize_series({s: r.total_energy_pj for s, r in results.items()}, "int8")

    rows = []
    for scheme in schemes:
        result = results[scheme]
        split = result.energy_pj
        total = result.total_energy_pj
        rows.append(
            [
                scheme,
                latency[scheme],
                energy[scheme],
                split["static"] / total,
                split["dram"] / total,
                split["buffer"] / total,
                split["core"] / total,
            ]
        )
    print(format_table(
        ["design", "norm. latency", "norm. energy",
         "static", "dram", "buffer", "core"],
        rows,
        title=f"Workload {workload!r} on six designs (normalized to int8)",
        float_fmt="{:.3f}",
    ))
    speedup = results["bitfusion"].cycles / results["ant-os"].cycles
    energy_gain = results["bitfusion"].total_energy_pj / results["ant-os"].total_energy_pj
    print(f"\nANT-OS vs BitFusion: {speedup:.2f}x speedup, "
          f"{energy_gain:.2f}x energy reduction "
          f"(paper: 2.8x / 2.5x geomean across workloads)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bert-mnli")
