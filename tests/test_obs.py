"""Unified telemetry layer: registry, tracing, exporters, pool wiring.

The load-bearing properties:

* histogram edge semantics -- 0 lands in the first bucket, ``inf`` in
  the overflow bucket without poisoning the mean, NaN in its own
  counter outside ``count``/quantiles;
* snapshot ``merge`` is associative and commutative (counters and
  histograms), which is what lets worker registries fold into the pool
  parent in any arrival order;
* trace IDs stamped at enqueue survive dispatch, worker death, requeue
  and respawn -- the replayed job's compute correlates to the same ID;
* ``REPRO_OBS=0`` writes nothing: no registry entries, no trace
  events, no IDs -- while scheduler state (EWMAs) stays intact.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro import obs
from repro.obs.registry import Histogram, MetricsRegistry
from repro.quant.framework import ModelQuantizer
from repro.runtime import FrozenModel
from repro.serve import PoolAutoscaler, ServingClient, ServingPool
from repro.zoo import calibration_batch, trained_model

BATCH = 16


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """Calibrated vgg16 checkpoint + float32 single-process reference."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(model_name="vgg16")
    finally:
        quantizer.remove()
    path = tmp_path_factory.mktemp("obs") / "vgg16.npz"
    frozen.save(path)
    reference = FrozenModel.load(path).astype(np.float32)
    x = entry.dataset.x_test[:70]
    return path, reference, x


# ----------------------------------------------------------------------
# Histogram edge cases
# ----------------------------------------------------------------------
def test_histogram_zero_lands_in_first_bucket():
    hist = Histogram("h", (), buckets=(0.1, 1.0))
    hist.observe(0.0)
    assert hist.counts.tolist() == [1, 0, 0]
    assert hist.count == 1 and hist.sum == 0.0


def test_histogram_inf_goes_to_overflow_without_poisoning_sum():
    hist = Histogram("h", (), buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(float("inf"))
    assert hist.counts.tolist() == [1, 0, 1]
    assert hist.count == 2
    assert hist.sum == pytest.approx(0.05)  # inf excluded: mean stays finite
    assert np.isfinite(hist.mean)
    # the overflow bucket can only report a floor: the last finite edge
    assert hist.quantile(0.99) == 1.0


def test_histogram_nan_counted_separately():
    hist = Histogram("h", (), buckets=(1.0,))
    hist.observe(float("nan"))
    assert hist.nan_count == 1
    assert hist.count == 0 and hist.sum == 0.0
    assert hist.mean is None and hist.quantile(0.5) is None


def test_histogram_bucket_edge_is_inclusive_upper():
    # Prometheus `le` semantics: an observation equal to an edge counts
    # in that edge's bucket
    hist = Histogram("h", (), buckets=(1.0, 2.0))
    hist.observe(1.0)
    assert hist.counts.tolist() == [1, 0, 0]


def test_histogram_quantile_interpolates_within_bucket():
    hist = Histogram("h", (), buckets=(1.0, 2.0, 4.0))
    for _ in range(4):
        hist.observe(1.5)
    assert hist.quantile(0.5) == pytest.approx(1.5)
    assert hist.quantile(0.0) == pytest.approx(1.0)
    assert hist.quantile(1.0) == pytest.approx(2.0)


def test_histogram_rejects_empty_buckets():
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=())


# ----------------------------------------------------------------------
# Registry + cross-process merge
# ----------------------------------------------------------------------
def _registry_with(counter_n, hist_values):
    registry = MetricsRegistry()
    registry.counter("jobs_total").inc(counter_n)
    registry.counter("errs_total", kind="oom").inc(1)
    hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
    for value in hist_values:
        hist.observe(value)
    return registry


def test_merge_is_associative_and_commutative():
    s1 = _registry_with(3, [0.05, 0.5]).snapshot()
    s2 = _registry_with(2, [5.0]).snapshot()
    s3 = _registry_with(7, [0.5, 0.5, 50.0]).snapshot()
    merged = obs.merge_snapshots(s1, s2, s3)
    assert merged == obs.merge_snapshots(obs.merge_snapshots(s1, s2), s3)
    assert merged == obs.merge_snapshots(s1, obs.merge_snapshots(s2, s3))
    assert merged == obs.merge_snapshots(s3, s1, s2)
    assert merged["jobs_total"]["value"] == 12
    assert merged["lat_seconds"]["count"] == 6
    assert merged["lat_seconds"]["counts"] == [1, 3, 1, 1]


def test_merge_survives_json_round_trip():
    snap = _registry_with(1, [0.5]).snapshot()
    wired = json.loads(json.dumps(snap))  # what a result pipe would carry
    assert obs.merge_snapshots(wired, snap)["jobs_total"]["value"] == 2


def test_merge_rejects_mismatched_histogram_edges():
    a = MetricsRegistry()
    a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    b = MetricsRegistry()
    b.histogram("h", buckets=(1.0, 4.0)).observe(0.5)
    with pytest.raises(ValueError, match="edges differ"):
        a.merge(b.snapshot())


def test_registry_find_never_creates():
    registry = MetricsRegistry()
    assert registry.find("nope") is None
    assert registry.metrics() == []
    counter = registry.counter("yes", worker="0")
    assert registry.find("yes", worker="0") is counter
    assert registry.find("yes") is None  # labels are part of the identity


def test_label_vocabulary_is_shared():
    assert obs.labels.qgemm_kernel_label("pair-stat") == "qgemm-pair-stat"

    class FrozenThing:
        pass

    thing = FrozenThing()
    assert obs.labels.module_kind(thing) == "thing"  # kebab fallback

    class Exec:
        kernel_label = "qgemm-popcount"

    thing._exec = Exec()
    assert obs.labels.module_kind(thing) == "qgemm-popcount"


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_prometheus_rendering_shape():
    registry = _registry_with(3, [0.05, 0.5, 5.0])
    text = obs.render_prometheus(registry)
    assert "# TYPE repro_jobs_total counter" in text
    assert "repro_jobs_total 3" in text
    assert 'repro_errs_total{kind="oom"} 1' in text
    assert "# TYPE repro_lat_seconds histogram" in text
    # bucket counts are cumulative and end at +Inf == count
    assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
    assert "repro_lat_seconds_count 3" in text


def test_snapshot_summary_digests_histograms():
    summary = obs.snapshot_summary(_registry_with(3, [0.5, 0.5]).snapshot())
    assert summary["jobs_total"] == 3
    assert summary["errs_total{kind=oom}"] == 1
    digest = summary["lat_seconds"]
    assert digest["count"] == 2
    assert set(digest) == {"count", "mean", "p50", "p90", "p99"}


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------
def test_span_and_trace_buffer_produce_chrome_events(tmp_path):
    buffer = obs.TraceBuffer()
    trace_id = obs.new_trace_id()
    assert trace_id is not None
    with obs.Span("work", buffer=buffer, trace_id=trace_id, job=7) as span:
        pass
    assert span.seconds >= 0.0
    (event,) = buffer.events()
    assert event["ph"] == "X" and event["name"] == "work"
    assert event["args"]["trace_id"] == trace_id and event["args"]["job"] == 7
    assert buffer.events(trace_id="other") == []

    path = tmp_path / "trace.jsonl"
    obs.write_jsonl(path, buffer.events())
    chrome = tmp_path / "trace.json"
    obs.jsonl_to_chrome(path, chrome)
    wrapped = json.loads(chrome.read_text())
    assert [e["name"] for e in wrapped["traceEvents"]] == ["work"]


def test_trace_buffer_bounds_memory():
    buffer = obs.TraceBuffer(maxlen=4)
    for i in range(10):
        buffer.add(f"e{i}", 0.0, 0.0)
    assert len(buffer) == 4
    assert [e["name"] for e in buffer.events()] == ["e6", "e7", "e8", "e9"]


# ----------------------------------------------------------------------
# REPRO_OBS=0: stamping is off everywhere
# ----------------------------------------------------------------------
def test_disabled_guard_writes_nothing(served):
    path, reference, x = served
    previous = obs.set_enabled(False)
    try:
        assert os.environ["REPRO_OBS"] == "0"
        assert obs.new_trace_id() is None
        with obs.Span("ignored") as span:
            pass
        assert span.seconds is None  # no clock reads, no buffer writes
        with ServingPool(path, n_workers=1, batch_size=BATCH) as pool:
            out = pool.map_predict(x)
            ServingClient(pool).predict_one(x[0])
            stats = pool.stats()
            # zero registry writes, zero trace events, empty exports
            assert pool.metrics_registry.snapshot() == {}
            assert pool.metrics() == {}
            assert pool.metrics_text() == ""
            assert pool.trace_events() == []
            assert stats["latency_p50_s"] is None
            # scheduler state is NOT telemetry: the EWMA still works
            assert stats["ewma_service_s"] > 0.0
        assert np.array_equal(
            out, reference.predict(x, batch_size=BATCH, pad_batches=True)
        )
    finally:
        obs.set_enabled(previous)


# ----------------------------------------------------------------------
# Pool integration: metrics + per-request timeline
# ----------------------------------------------------------------------
def test_pool_metrics_and_full_request_timeline(served):
    path, reference, x = served
    assert obs.enabled()
    with ServingPool(path, n_workers=2, batch_size=BATCH, prefetch=2) as pool:
        out = pool.map_predict(x)
        assert np.array_equal(
            out, reference.predict(x, batch_size=BATCH, pad_batches=True)
        )
        ServingClient(pool).predict_one(x[0])

        metrics = pool.metrics()
        # parent-side counters agree with the job accounting
        jobs = pool.stats()["jobs"]
        assert metrics["serve.jobs_total"] == jobs
        assert metrics["serve.dispatch_total"] == jobs
        assert metrics["serve.collect_total"] == jobs
        assert metrics["serve.job_latency_seconds"]["count"] == jobs
        assert metrics["serve.queue_wait_seconds"]["count"] == jobs
        # worker-side registries merged in over the result pipes
        assert metrics["runtime.forward_seconds"]["count"] >= jobs
        region_keys = [k for k in metrics if k.startswith("runtime.region_seconds")]
        assert any("conv2d" in k for k in region_keys)
        # micro-batched request path
        assert metrics["serve.request_latency_seconds"]["count"] == 1
        assert metrics["serve.batch_fill"]["count"] == 1

        # stats() exposes latency percentiles for the autoscaler
        stats = pool.stats()
        assert 0.0 < stats["latency_p50_s"] <= stats["latency_p99_s"]
        assert stats["ewma_service_s"] > 0.0

        # one job's complete timeline: queue wait -> transit -> compute
        # (with per-region events inside) -> result transit
        events = pool.trace_events()
        waits = [e for e in events if e["name"] == "queue-wait"]
        assert waits
        trace_id = waits[0]["args"]["trace_id"]
        chain = pool.trace_events(trace_id)
        names = [e["name"] for e in chain]
        for needed in ("queue-wait", "dispatch-transit", "compute",
                       "result-transit"):
            assert needed in names, names
        compute = next(e for e in chain if e["name"] == "compute")
        regions = [e for e in chain if e["cat"] == "runtime.region"]
        assert regions, "compute must be split per region"
        # regions nest inside the compute block on the worker's lane
        assert all(e["tid"] == compute["tid"] for e in regions)
        assert all(e["ts"] >= compute["ts"] - 1 for e in regions)
        region_total = sum(e["dur"] for e in regions)
        assert region_total <= compute["dur"] * 1.5 + 1

        # Prometheus exposition of the merged registries
        text = pool.metrics_text()
        assert "# TYPE repro_serve_jobs_total counter" in text
        assert "repro_runtime_forward_seconds_bucket" in text


def test_trace_id_survives_worker_crash_and_respawn(served):
    path, reference, x = served
    big = np.concatenate([x] * 30)  # enough forward work to kill mid-job
    expected = reference.predict(big, batch_size=BATCH, pad_batches=True)
    pool = ServingPool(path, n_workers=1, batch_size=BATCH).start()
    try:
        pool.predict(x[:8])  # healthy first
        victim = pool._workers[0]
        future = pool.submit(big)
        deadline = __import__("time").monotonic() + 60
        while not pool._inflight[0] and __import__("time").monotonic() < deadline:
            __import__("time").sleep(0.01)
        os.kill(victim.pid, signal.SIGKILL)
        assert np.array_equal(future.result(timeout=300), expected)
        assert pool.stats()["respawns"] >= 1
        assert pool.metrics()["serve.requeues_total"] >= 1
        assert pool.metrics()["serve.respawns_total"] >= 1
        requeues = [e for e in pool.trace_events() if e["name"] == "requeue"]
        assert requeues
        trace_id = requeues[0]["args"]["trace_id"]
        assert trace_id is not None
        # the SAME trace ID dispatched again and completed its compute
        names = [e["name"] for e in pool.trace_events(trace_id)]
        assert names.count("queue-wait") >= 2  # original + re-dispatch
        assert "compute" in names
    finally:
        pool.close()


def test_worker_metrics_survive_retirement(served):
    path, reference, x = served
    with ServingPool(path, n_workers=2, batch_size=BATCH) as pool:
        pool.map_predict(x)
        before = pool.metrics()["runtime.forward_seconds"]["count"]
        assert before > 0
        pool.retire_worker()
        # the retired incarnation's snapshot folded into the base: its
        # counts must not vanish from the merged view
        assert pool.metrics()["runtime.forward_seconds"]["count"] >= before
        out = pool.map_predict(x)
        assert np.array_equal(
            out, reference.predict(x, batch_size=BATCH, pad_batches=True)
        )


# ----------------------------------------------------------------------
# Autoscaler: percentile-aware scale-up + decision events
# ----------------------------------------------------------------------
def _stats(workers, backlog, inflight=0, ewma=0.2, p99=None):
    return {
        "workers": workers,
        "backlog": backlog,
        "inflight": inflight,
        "ewma_service_s": ewma,
        "latency_p99_s": p99,
    }


def test_autoscaler_p99_trigger_scales_up():
    scaler = PoolAutoscaler(None, min_workers=1, max_workers=4,
                            latency_budget_s=1.0)
    # sparse traffic: backlog tiny so predicted latency is fine, but the
    # observed tail blows the budget
    assert scaler.decide(_stats(2, backlog=1, ewma=0.01, p99=5.0), now=0.0) == +1
    event = scaler.events[-1]
    assert event["reason"] == "p99-latency"
    assert event["inputs"]["latency_p99_s"] == 5.0
    # same shape without the tail: no action
    scaler2 = PoolAutoscaler(None, min_workers=1, max_workers=4,
                             latency_budget_s=1.0)
    assert scaler2.decide(_stats(2, backlog=1, ewma=0.01, p99=0.5), now=0.0) == 0


def test_autoscaler_records_decision_inputs():
    scaler = PoolAutoscaler(None, min_workers=1, max_workers=4,
                            latency_budget_s=0.1, cooldown_s=0.0)
    assert scaler.decide(_stats(1, backlog=50), now=0.0) == +1
    event = scaler.events[-1]
    assert event["reason"] == "predicted-latency"
    assert event["delta"] == +1 and event["workers"] == 1
    assert event["inputs"]["backlog"] == 50
    # stats snapshots missing the percentile key (older callers) work
    assert scaler.decide({"workers": 1, "backlog": 50, "inflight": 0,
                          "ewma_service_s": 0.2}, now=10.0) == +1
