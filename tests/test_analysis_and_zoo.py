"""Tests for tensor statistics, reporting helpers and the model zoo."""

import numpy as np
import pytest

from repro.analysis import classify_distribution, format_table, normalize_series, tensor_stats
from repro.analysis.reporting import geomean
from repro.data import sample_distribution


class TestStats:
    def test_uniform_classified(self):
        x = sample_distribution("uniform", 8192, seed=0)
        assert classify_distribution(x) == "uniform-like"

    def test_gaussian_classified(self):
        x = sample_distribution("gaussian", 8192, seed=0)
        assert classify_distribution(x) == "gaussian-like"

    def test_laplace_classified(self):
        x = sample_distribution("laplace", 8192, seed=0)
        assert classify_distribution(x) == "laplace-like"

    def test_outliers_classified_heavy(self):
        x = sample_distribution("gaussian_outliers", 8192, seed=0)
        assert classify_distribution(x) == "laplace-like"

    def test_stats_fields(self):
        stats = tensor_stats(sample_distribution("gaussian", 4096, seed=1))
        assert abs(stats.mean) < 0.1
        assert 0.9 < stats.std < 1.1
        assert stats.min < stats.max
        assert stats.tail_ratio > 1.0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            tensor_stats(np.ones(3))


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_normalize_series(self):
        out = normalize_series({"x": 10.0, "y": 5.0}, baseline="x")
        assert out == {"x": 1.0, "y": 0.5}

    def test_normalize_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize_series({"x": 1.0}, baseline="z")

    def test_geomean(self):
        assert np.isclose(geomean([1.0, 4.0]), 2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])


class TestZoo:
    def test_train_and_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        monkeypatch.setitem(
            __import__("repro.zoo", fromlist=["_SCHEDULES"])._SCHEDULES,
            "vgg",
            (5, 2e-3, 16),
        )
        from repro.zoo import trained_model

        first = trained_model("vgg16", n_train=32, n_test=16)
        assert 0.0 <= first.fp32_accuracy <= 1.0
        assert any(p.suffix == ".npz" for p in tmp_path.iterdir())

        # Second call loads from cache and reproduces parameters exactly.
        second = trained_model("vgg16", n_train=32, n_test=16)
        for (_, p1), (_, p2) in zip(
            first.model.named_parameters(), second.model.named_parameters()
        ):
            assert np.allclose(p1.data, p2.data)
        assert second.fp32_accuracy == first.fp32_accuracy

    def test_calibration_batch_size(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        from repro.data import dataset_for_workload
        from repro.zoo import calibration_batch

        ds = dataset_for_workload("vgg16", n_train=64, n_test=8)
        batch = calibration_batch(ds, n=100)
        assert batch.shape[0] == 64  # capped at the training-set size
