"""Parallel serving engine: micro-batching, worker pool, bit-identity.

The load-bearing guarantee: results served through the pool are
**bit-identical** to single-process
``FrozenModel.predict(x, batch_size, pad_batches=True)`` for the same
checkpoint -- no matter how requests were coalesced by the
micro-batching queue, sharded by ``map_predict``, or interleaved
across workers.  The pool earns this by running every worker forward
at a fixed zero-padded batch shape, which makes each sample's logits a
pure function of that sample alone (BLAS kernels are selected by GEMM
row count, so *variable* shapes would reassociate).
"""

import subprocess
import sys
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.quant.framework import ModelQuantizer
from repro.runtime import FrozenModel
from repro.serve import MicroBatchQueue, ServingClient, ServingPool
from repro.zoo import calibration_batch, trained_model

BATCH = 16


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """Calibrated vgg16 checkpoint + float32 single-process reference."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(model_name="vgg16")
    finally:
        quantizer.remove()
    path = tmp_path_factory.mktemp("serve") / "vgg16.npz"
    frozen.save(path)
    reference = FrozenModel.load(path).astype(np.float32)
    x = entry.dataset.x_test[:70]
    return path, reference, x


# ----------------------------------------------------------------------
# MicroBatchQueue
# ----------------------------------------------------------------------
def test_queue_coalesces_up_to_max_batch():
    queue = MicroBatchQueue(max_batch=4, max_wait_ms=50.0)
    for i in range(10):
        queue.submit(np.array([i]))
    sizes = [len(queue.next_batch()) for _ in range(3)]
    assert sizes == [4, 4, 2]
    stats = queue.stats
    assert stats["requests"] == 10
    assert stats["batches"] == 3
    assert stats["mean_fill"] == pytest.approx(10 / 3)


def test_queue_preserves_request_order():
    queue = MicroBatchQueue(max_batch=8, max_wait_ms=0.0)
    for i in range(5):
        queue.submit(np.array([i]))
    batch = queue.next_batch()
    assert [int(r.payload[0]) for r in batch] == [0, 1, 2, 3, 4]


def test_queue_max_wait_bounds_latency():
    queue = MicroBatchQueue(max_batch=64, max_wait_ms=30.0)
    queue.submit(np.array([1.0]))
    start = time.monotonic()
    batch = queue.next_batch()
    waited = time.monotonic() - start
    assert len(batch) == 1
    assert waited < 5.0  # window closes on its own, far below any hang


def test_queue_timeout_and_close_semantics():
    queue = MicroBatchQueue(max_batch=4, max_wait_ms=0.0)
    assert queue.next_batch(timeout=0.01) == []  # empty poll
    queue.submit(np.array([1.0]))
    queue.close()
    assert len(queue.next_batch()) == 1  # buffered requests drain
    assert queue.next_batch() is None  # closed and drained
    with pytest.raises(RuntimeError):
        queue.submit(np.array([2.0]))


def test_queue_cancel_pending_fails_futures():
    queue = MicroBatchQueue(max_batch=4, max_wait_ms=0.0)
    future = queue.submit(np.array([1.0]))
    assert queue.cancel_pending() == 1
    with pytest.raises(RuntimeError, match="shut down"):
        future.result(timeout=1)


def test_queue_rejects_bad_parameters():
    with pytest.raises(ValueError):
        MicroBatchQueue(max_batch=0)
    with pytest.raises(ValueError):
        MicroBatchQueue(max_wait_ms=-1.0)


def test_queue_zero_wait_is_immediate_dispatch():
    """``max_wait_ms=0`` must never hold a request for co-travellers:
    whatever is buffered dispatches at once, in one batch."""
    queue = MicroBatchQueue(max_batch=64, max_wait_ms=0.0)
    for i in range(5):
        queue.submit(np.array([i]))
    start = time.monotonic()
    batch = queue.next_batch()
    elapsed = time.monotonic() - start
    assert [int(r.payload[0]) for r in batch] == [0, 1, 2, 3, 4]
    assert elapsed < 0.25  # no coalescing window was held open
    # a lone request also leaves instantly -- no waiting on an empty tail
    queue.submit(np.array([9]))
    start = time.monotonic()
    assert len(queue.next_batch()) == 1
    assert time.monotonic() - start < 0.25


def test_queue_max_batch_one_never_merges():
    """``max_batch=1`` must hand out exactly one request per batch, in
    arrival order, without waiting out ``max_wait_ms`` -- a full batch
    dispatches immediately, and a full batch is one request."""
    queue = MicroBatchQueue(max_batch=1, max_wait_ms=10_000.0)
    for i in range(4):
        queue.submit(np.array([i]))
    start = time.monotonic()
    batches = [queue.next_batch() for _ in range(4)]
    elapsed = time.monotonic() - start
    assert [len(b) for b in batches] == [1, 1, 1, 1]
    assert [int(b[0].payload[0]) for b in batches] == [0, 1, 2, 3]
    assert elapsed < 1.0  # nowhere near the 10 s window: never waited
    stats = queue.stats
    assert stats["batches"] == 4 and stats["mean_fill"] == 1.0


# ----------------------------------------------------------------------
# ServingPool: bulk path
# ----------------------------------------------------------------------
def test_map_predict_bit_identical_across_workers(served):
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=BATCH) as pool:
        out = pool.map_predict(x)
        assert out.dtype == expected.dtype
        assert np.array_equal(out, expected)
        # ragged shard sizes still align to whole serving batches
        out = pool.map_predict(x, shard_size=19)
        assert np.array_equal(out, expected)


def test_map_predict_short_input(served):
    path, reference, x = served
    expected = reference.predict(x[:3], batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=BATCH) as pool:
        assert np.array_equal(pool.map_predict(x[:3]), expected)
        with pytest.raises(ValueError):
            pool.map_predict(x[:0])


def test_submit_is_asynchronous(served):
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=BATCH) as pool:
        futures = [pool.submit(x[i: i + 10]) for i in range(0, 40, 10)]
        assert all(isinstance(f, Future) for f in futures)
        for i, future in enumerate(futures):
            assert np.array_equal(
                future.result(timeout=120), expected[i * 10: (i + 1) * 10]
            )


def test_concurrent_jobs_use_distinct_result_buffers(served):
    """Two workers serving different jobs must never cross-talk.

    The engine's pooled scratch buffers are per-process; this drives
    both workers concurrently with distinct payloads and checks every
    job's result against its own single-process reference.
    """
    path, reference, x = served
    jobs = [x[:32], x[32:64], x[16:48], x[8:40]]
    expected = [
        reference.predict(j, batch_size=BATCH, pad_batches=True) for j in jobs
    ]
    with ServingPool(path, n_workers=2, batch_size=BATCH) as pool:
        for _ in range(3):  # repeat to vary worker/job interleaving
            futures = [pool.submit(j) for j in jobs]
            for want, future in zip(expected, futures):
                assert np.array_equal(future.result(timeout=120), want)


def test_dispatcher_survives_heterogeneous_request_shapes(served):
    """A malformed request coalesced with healthy ones must fail that
    micro-batch's futures without killing the dispatcher thread."""
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=1, batch_size=BATCH, max_wait_ms=20.0) as pool:
        good = pool.micro_queue.submit(x[0])
        bad = pool.micro_queue.submit(np.zeros(7))  # np.stack cannot mix these
        with pytest.raises(RuntimeError, match="dispatch failed"):
            bad.result(timeout=120)
        with pytest.raises(RuntimeError, match="dispatch failed"):
            good.result(timeout=120)
        # the dispatcher survived: later well-formed requests serve fine
        again = pool.micro_queue.submit(x[1])
        assert np.array_equal(again.result(timeout=120), expected[1])


def test_worker_error_propagates_and_pool_survives(served):
    path, reference, x = served
    expected = reference.predict(x[:8], batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=1, batch_size=BATCH) as pool:
        bad = pool.submit(np.zeros((4, 999)))  # wrong input shape
        with pytest.raises(RuntimeError, match="serving worker failed"):
            bad.result(timeout=120)
        # the worker reported the failure and kept serving
        assert np.array_equal(pool.map_predict(x[:8]), expected)


def test_worker_death_fails_outstanding_futures(served):
    """With respawn disabled, a worker killed below Python (OOM/segfault)
    must fail in-flight futures fast and mark the pool broken -- never
    hang callers."""
    import os
    import signal

    path, _, x = served
    pool = ServingPool(
        path, n_workers=1, batch_size=BATCH, respawn_workers=False
    ).start()
    try:
        pool.predict(x[:8])  # healthy first
        os.kill(pool._workers[0].pid, signal.SIGKILL)
        stranded = pool.submit(x[:8])
        with pytest.raises(RuntimeError, match="died"):
            stranded.result(timeout=120)
        with pytest.raises(RuntimeError, match="broken"):
            pool.submit(x[:8])
    finally:
        pool.close()


# ----------------------------------------------------------------------
# Worker auto-respawn (elastic pools, first step)
# ----------------------------------------------------------------------
def _wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_worker_respawn_recovers_queued_job(served):
    """Kill the only worker with a job outstanding: the watchdog must
    fork a replacement from the same checkpoint, requeue the job, and
    the caller's future must still resolve to the right logits."""
    import os
    import signal

    path, reference, x = served
    expected = reference.predict(x[:8], batch_size=BATCH, pad_batches=True)
    pool = ServingPool(path, n_workers=1, batch_size=BATCH).start()
    try:
        pool.predict(x[:8])  # healthy first
        os.kill(pool._workers[0].pid, signal.SIGKILL)
        stranded = pool.submit(x[:8])
        assert np.array_equal(stranded.result(timeout=180), expected)
        stats = pool.stats()
        assert stats["respawns"] >= 1
        # the pool is fully healthy, not merely limping: later traffic
        # serves bit-identically through the respawned worker
        assert np.array_equal(pool.map_predict(x[:24]), reference.predict(
            x[:24], batch_size=BATCH, pad_batches=True
        ))
    finally:
        pool.close()


def test_worker_respawn_recovers_in_flight_job(served):
    """Kill the worker *after* it claimed the task (queue drained), so
    the job payload only survives via the pool's requeue-once path.
    The payload is large enough that the kill lands mid-forward."""
    import os
    import signal

    path, reference, x = served
    big = np.concatenate([x] * 30)  # ~1 s of forward work, many batches
    expected = reference.predict(big, batch_size=BATCH, pad_batches=True)
    pool = ServingPool(path, n_workers=1, batch_size=BATCH).start()
    try:
        victim = pool._workers[0]
        future = pool.submit(big)
        # in flight == assigned to the worker and drained from its queue
        assert _wait_for(
            lambda: pool._inflight[0] and pool._task_queues[0].empty()
        )
        os.kill(victim.pid, signal.SIGKILL)
        assert np.array_equal(future.result(timeout=300), expected)
        assert pool.stats()["respawns"] >= 1
    finally:
        pool.close()


def test_worker_death_twice_fails_job_not_pool(served):
    """A job has exactly one retry: two deaths while it is outstanding
    must fail *that* future, and within the respawn budget the pool
    itself keeps serving."""
    import os
    import signal

    path, reference, x = served
    big = np.concatenate([x] * 30)
    pool = ServingPool(
        path, n_workers=1, batch_size=BATCH, max_respawns=4
    ).start()
    try:
        pool.predict(x[:8])
        victim = pool._workers[0]
        future = pool.submit(big)
        assert _wait_for(
            lambda: pool._inflight[0] and pool._task_queues[0].empty()
        )
        os.kill(victim.pid, signal.SIGKILL)
        # wait for the watchdog's respawn and for the replacement to
        # finish loading and *claim the requeued job* (the pool never
        # dispatches to a still-loading worker), then kill it -- the
        # payload is big enough that the kill lands mid-forward
        assert _wait_for(lambda: pool._workers[0] is not victim)
        replacement = pool._workers[0]
        assert _wait_for(
            lambda: pool._inflight[0] and pool._task_queues[0].empty()
        )
        os.kill(replacement.pid, signal.SIGKILL)
        with pytest.raises(RuntimeError, match="retry exhausted"):
            future.result(timeout=300)
        expected = reference.predict(x[:8], batch_size=BATCH, pad_batches=True)
        assert np.array_equal(pool.predict(x[:8], timeout=300), expected)
    finally:
        pool.close()


def test_pool_rejects_bad_parameters(served):
    path, _, _ = served
    with pytest.raises(ValueError):
        ServingPool(path, n_workers=0)
    with pytest.raises(ValueError):
        ServingPool(path, batch_size=0)
    pool = ServingPool(path, n_workers=1)
    with pytest.raises(RuntimeError, match="not started"):
        pool.predict(np.zeros((1, 3, 16, 16)))
    # the client facade must raise too, not buffer into a queue that
    # no dispatcher will ever drain
    with pytest.raises(RuntimeError, match="not started"):
        ServingClient(pool).predict_one(np.zeros((3, 16, 16)))


# ----------------------------------------------------------------------
# Micro-batch coalescing path: the bit-identity property
# ----------------------------------------------------------------------
@pytest.mark.parametrize("max_wait_ms", [0.0, 10.0])
def test_client_results_bit_identical_under_coalescing(served, max_wait_ms):
    """Per-request results equal the single-process reference rows
    regardless of how the queue happened to group them."""
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(
        path, n_workers=2, batch_size=BATCH, max_wait_ms=max_wait_ms
    ) as pool:
        client = ServingClient(pool)
        out = client.predict(x[:37], timeout=120)
        assert np.array_equal(out, expected[:37])
        one = client.predict_one(x[50], timeout=120)
        assert np.array_equal(one, expected[50])
        assert pool.stats()["queue_requests"] == 38


def test_concurrent_clients_coalesce_without_crosstalk(served):
    """Many threads submitting interleaved single-sample requests get
    exactly their own rows back (property test over random order)."""
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    rng = np.random.default_rng(7)
    order = rng.permutation(len(x))
    results = {}
    errors = []
    with ServingPool(
        path, n_workers=2, batch_size=BATCH, max_wait_ms=20.0
    ) as pool:
        client = ServingClient(pool)

        def serve_slice(indices):
            try:
                for i in indices:
                    results[int(i)] = client.predict_one(x[i], timeout=120)
            except BaseException as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=serve_slice, args=(order[k::4],))
            for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = pool.stats()
    assert not errors
    assert len(results) == len(x)
    for i in range(len(x)):
        assert np.array_equal(results[i], expected[i]), i
    # coalescing actually happened: fewer dispatches than requests
    assert stats["queue_batches"] < stats["queue_requests"]


# ----------------------------------------------------------------------
# Cross-process checkpoint loading
# ----------------------------------------------------------------------
_CHILD_LOADER = """
import sys
import numpy as np
from repro.runtime import FrozenModel

ckpt, x_path, out_path = sys.argv[1:4]
model = FrozenModel.load(ckpt).astype(np.float32)  # no in-memory skeleton
x = np.load(x_path)
np.save(out_path, model.predict(x, batch_size=16, pad_batches=True))
"""


def test_load_in_fresh_process_matches(served, tmp_path):
    """A process that never held the model object rebuilds the frozen
    engine from the packed checkpoint alone and serves identically."""
    path, reference, x = served
    x_path = tmp_path / "x.npy"
    out_path = tmp_path / "out.npy"
    np.save(x_path, x[:24])
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_LOADER, str(path), str(x_path), str(out_path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    child = np.load(out_path)
    expected = reference.predict(x[:24], batch_size=BATCH, pad_batches=True)
    assert np.array_equal(child, expected)


# ----------------------------------------------------------------------
# Weight-only serving mode
# ----------------------------------------------------------------------
def test_weight_only_pool_matches_weight_only_engine(served):
    path, _, x = served
    reference = FrozenModel.load(path, weight_only=True).astype(np.float32)
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=BATCH, weight_only=True) as pool:
        assert np.array_equal(pool.map_predict(x), expected)


# ----------------------------------------------------------------------
# Code-domain backend through the pool
# ----------------------------------------------------------------------
def test_qgemm_pool_matches_qgemm_engine(served):
    """``backend="qgemm"`` flows through worker load unchanged: pooled
    results are bit-identical to a single-process qgemm engine (and the
    backend actually differs from the float path at float32)."""
    path, reference, x = served
    qgemm_ref = (
        FrozenModel.load(path).astype(np.float32).set_backend("qgemm")
    )
    expected = qgemm_ref.predict(x[:32], batch_size=BATCH, pad_batches=True)
    with ServingPool(
        path, n_workers=2, batch_size=BATCH, backend="qgemm"
    ) as pool:
        assert pool.stats()["backend"] == "qgemm"
        out = pool.map_predict(x[:32])
        assert np.array_equal(out, expected)
        client = ServingClient(pool)
        assert np.array_equal(client.predict_one(x[3]), expected[3])
    # same argmax as the float backend, but not the same floats --
    # proving the workers really executed in the code domain
    float_out = reference.predict(x[:32], batch_size=BATCH, pad_batches=True)
    assert np.array_equal(np.argmax(out, axis=1), np.argmax(float_out, axis=1))
    assert not np.array_equal(out, float_out)
