"""Numerical gradient checks for the autograd engine."""

import numpy as np
import pytest

from repro.nn.autograd import (
    Tensor,
    concatenate,
    cross_entropy,
    dropout,
    embedding_lookup,
    no_grad,
    softmax,
)

RNG = np.random.default_rng(0)
EPS = 1e-6


def numerical_grad(fn, x: np.ndarray) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        up = fn(x)
        flat[i] = orig - EPS
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * EPS)
    return grad


def check_unary(op, shape=(3, 4), positive=False, atol=1e-6):
    data = RNG.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    t = Tensor(data.copy(), requires_grad=True)
    out = op(t)
    loss = out.sum() if not np.isscalar(out.data) and out.data.size > 1 else out
    loss = loss if loss.data.size == 1 else loss.sum()
    loss.backward()
    expected = numerical_grad(lambda x: op(Tensor(x)).data.sum(), data.copy())
    assert np.allclose(t.grad, expected, atol=atol), (t.grad, expected)


class TestElementwise:
    def test_add(self):
        check_unary(lambda t: t + 2.0)

    def test_mul(self):
        check_unary(lambda t: t * 3.0)

    def test_neg_sub(self):
        check_unary(lambda t: 5.0 - t)

    def test_div(self):
        check_unary(lambda t: t / 2.5)

    def test_rdiv(self):
        check_unary(lambda t: 1.0 / t, positive=True, atol=1e-4)

    def test_pow(self):
        check_unary(lambda t: t ** 3)

    def test_relu(self):
        check_unary(lambda t: t.relu())

    def test_gelu(self):
        check_unary(lambda t: t.gelu(), atol=1e-5)

    def test_tanh(self):
        check_unary(lambda t: t.tanh())

    def test_exp(self):
        check_unary(lambda t: t.exp(), atol=1e-5)

    def test_log(self):
        check_unary(lambda t: t.log(), positive=True, atol=1e-5)

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), positive=True)


class TestBroadcasting:
    def test_broadcast_add_grad_shapes(self):
        a = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 4.0)

    def test_broadcast_mul(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(1, 3, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (1, 3, 1)
        assert np.allclose(b.grad, a.data.sum(axis=(0, 2), keepdims=True))


class TestMatmul:
    def test_2d(self):
        a_data = RNG.normal(size=(3, 4))
        b_data = RNG.normal(size=(4, 5))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        expected_a = numerical_grad(lambda x: (x @ b_data).sum(), a_data.copy())
        expected_b = numerical_grad(lambda x: (a_data @ x).sum(), b_data.copy())
        assert np.allclose(a.grad, expected_a, atol=1e-6)
        assert np.allclose(b.grad, expected_b, atol=1e-6)

    def test_batched(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_broadcast_batched(self):
        """A 2-D right operand broadcasts over batch dims; grads unbroadcast."""
        a = Tensor(RNG.normal(size=(2, 6, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        out = a @ b
        assert out.data.shape == (2, 6, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 6, 3, 4)
        assert b.grad.shape == (4, 5)
        expected_b = np.einsum("bcij,bcik->jk", a.data, np.ones((2, 6, 3, 5)))
        assert np.allclose(b.grad, expected_b)


class TestShapeOps:
    def test_reshape(self):
        a = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)
        assert np.allclose(a.grad, 1.0)

    def test_transpose(self):
        data = RNG.normal(size=(2, 3, 4))
        a = Tensor(data.copy(), requires_grad=True)
        (a.transpose(2, 0, 1) * Tensor(np.arange(24).reshape(4, 2, 3))).sum().backward()
        expected = np.arange(24).reshape(4, 2, 3).transpose(1, 2, 0)
        assert np.allclose(a.grad, expected)

    def test_getitem(self):
        a = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        a[1:3, :2].sum().backward()
        mask = np.zeros((4, 5))
        mask[1:3, :2] = 1.0
        assert np.allclose(a.grad, mask)

    def test_concatenate(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        (out * Tensor(np.arange(10).reshape(2, 5))).sum().backward()
        assert np.allclose(a.grad, np.arange(10).reshape(2, 5)[:, :3])
        assert np.allclose(b.grad, np.arange(10).reshape(2, 5)[:, 3:])


class TestReductions:
    def test_sum_axis(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        (a.sum(axis=0) ** 2).sum().backward()
        expected = 2 * np.broadcast_to(a.data.sum(axis=0), (3, 4))
        assert np.allclose(a.grad, expected)

    def test_mean(self):
        a = Tensor(RNG.normal(size=(4, 6)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 1.0 / 24)

    def test_mean_axis_tuple(self):
        a = Tensor(RNG.normal(size=(2, 3, 4, 4)), requires_grad=True)
        a.mean(axis=(2, 3)).sum().backward()
        assert np.allclose(a.grad, 1.0 / 16)

    def test_max(self):
        data = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 7.0]])
        a = Tensor(data, requires_grad=True)
        a.max(axis=1).sum().backward()
        expected = np.array([[0, 1, 0], [0.5, 0, 0.5]])
        assert np.allclose(a.grad, expected)


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(5, 7)))
        probs = softmax(x, axis=-1)
        assert np.allclose(probs.data.sum(axis=-1), 1.0)

    def test_softmax_grad(self):
        data = RNG.normal(size=(3, 4))
        weights = RNG.normal(size=(3, 4))
        x = Tensor(data.copy(), requires_grad=True)
        (softmax(x, axis=-1) * Tensor(weights)).sum().backward()

        def fn(arr):
            shifted = arr - arr.max(axis=-1, keepdims=True)
            e = np.exp(shifted)
            return ((e / e.sum(axis=-1, keepdims=True)) * weights).sum()

        assert np.allclose(x.grad, numerical_grad(fn, data.copy()), atol=1e-6)

    def test_cross_entropy_matches_manual(self):
        logits = RNG.normal(size=(6, 4))
        targets = RNG.integers(0, 4, size=6)
        t = Tensor(logits.copy(), requires_grad=True)
        loss = cross_entropy(t, targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        assert np.isclose(loss.item(), -logp[np.arange(6), targets].mean())

    def test_cross_entropy_grad(self):
        logits = RNG.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        t = Tensor(logits.copy(), requires_grad=True)
        cross_entropy(t, targets).backward()

        def fn(arr):
            shifted = arr - arr.max(axis=1, keepdims=True)
            logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            return -logp[np.arange(4), targets].mean()

        assert np.allclose(t.grad, numerical_grad(fn, logits.copy()), atol=1e-6)


class TestEmbeddingDropout:
    def test_embedding_scatter_add(self):
        table = Tensor(RNG.normal(size=(10, 4)), requires_grad=True)
        idx = np.array([[1, 1, 3], [0, 3, 3]])
        embedding_lookup(table, idx).sum().backward()
        expected = np.zeros((10, 4))
        for i in idx.ravel():
            expected[i] += 1.0
        assert np.allclose(table.grad, expected)

    def test_dropout_eval_identity(self):
        x = Tensor(RNG.normal(size=(5, 5)))
        out = dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_scales(self):
        x = Tensor(np.ones((1000,)), requires_grad=True)
        out = dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.35 < kept.size / 1000 < 0.65

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0, training=True)


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        with no_grad():
            a = Tensor(np.ones(3), requires_grad=True)
            out = a * 2
        assert not out.requires_grad

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_grad_accumulates_on_reuse(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a).backward()  # d(a^2)/da = 2a = 4
        assert np.allclose(a.grad, 4.0)

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2
        c = a * 5
        (b + c).backward()
        assert np.allclose(a.grad, 7.0)

    def test_deep_chain(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        x = a
        for _ in range(200):
            x = x + 1.0
        x.backward()
        assert np.allclose(a.grad, 1.0)
