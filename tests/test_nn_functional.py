"""Gradient and correctness checks for fused ops (conv, pool, norms)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.autograd import Tensor

RNG = np.random.default_rng(1)
EPS = 1e-6


def numerical_grad(fn, x):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        up = fn(x)
        flat[i] = orig - EPS
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * EPS)
    return grad


def naive_conv2d(x, w, b, stride, padding):
    n, c_in, h, wdt = x.shape
    c_out, _, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (wdt + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for ni in range(n):
        for co in range(c_out):
            for oh in range(out_h):
                for ow in range(out_w):
                    patch = padded[ni, :, oh * sh: oh * sh + kh, ow * sw: ow * sw + kw]
                    out[ni, co, oh, ow] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_forward_matches_naive(self, stride, padding):
        x = RNG.normal(size=(2, 3, 6, 6))
        w = RNG.normal(size=(4, 3, 3, 3))
        b = RNG.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = naive_conv2d(x, w, b, (stride, stride), (padding, padding))
        assert np.allclose(out.data, expected, atol=1e-10)

    def test_gradients(self):
        x_data = RNG.normal(size=(2, 2, 5, 5))
        w_data = RNG.normal(size=(3, 2, 3, 3))
        b_data = RNG.normal(size=3)
        x = Tensor(x_data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        F.conv2d(x, w, b, stride=2, padding=1).sum().backward()

        def loss_x(arr):
            return naive_conv2d(arr, w_data, b_data, (2, 2), (1, 1)).sum()

        def loss_w(arr):
            return naive_conv2d(x_data, arr, b_data, (2, 2), (1, 1)).sum()

        assert np.allclose(x.grad, numerical_grad(loss_x, x_data.copy()), atol=1e-5)
        assert np.allclose(w.grad, numerical_grad(loss_w, w_data.copy()), atol=1e-5)
        assert np.allclose(b.grad, 2 * 3 * 3)  # N * out_h * out_w

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))), None)

    def test_collapsed_output_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 5, 5))), None)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        assert out.data.reshape(-1).tolist() == [5, 7, 13, 15]

    def test_max_pool_grad_routes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, kernel=2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, [1, 1, 3, 3], [1, 3, 1, 3]] = 1.0
        assert np.allclose(x.grad, expected)

    def test_avg_pool_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel=2)
        assert np.allclose(out.data.reshape(-1), [2.5, 4.5, 10.5, 12.5])

    def test_avg_pool_grad(self):
        data = RNG.normal(size=(2, 3, 6, 6))
        x = Tensor(data.copy(), requires_grad=True)
        F.avg_pool2d(x, kernel=3, stride=3).sum().backward()
        assert np.allclose(x.grad, 1.0 / 9)

    def test_overlapping_avg_pool_grad(self):
        data = RNG.normal(size=(1, 1, 5, 5))
        x = Tensor(data.copy(), requires_grad=True)
        F.avg_pool2d(x, kernel=3, stride=1).sum().backward()

        def fn(arr):
            t = F.avg_pool2d(Tensor(arr), kernel=3, stride=1)
            return t.data.sum()

        assert np.allclose(x.grad, numerical_grad(fn, data.copy()), atol=1e-6)


class TestNorms:
    def test_layer_norm_forward_stats(self):
        x = Tensor(RNG.normal(size=(4, 10)) * 5 + 3)
        w = Tensor(np.ones(10))
        b = Tensor(np.zeros(10))
        out = F.layer_norm(x, w, b).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_grad(self):
        data = RNG.normal(size=(3, 6))
        w_data = RNG.normal(size=6)
        b_data = RNG.normal(size=6)
        weights = RNG.normal(size=(3, 6))
        x = Tensor(data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (F.layer_norm(x, w, b) * Tensor(weights)).sum().backward()

        def fn(arr):
            mean = arr.mean(axis=-1, keepdims=True)
            var = arr.var(axis=-1, keepdims=True)
            xh = (arr - mean) / np.sqrt(var + 1e-5)
            return ((xh * w_data + b_data) * weights).sum()

        assert np.allclose(x.grad, numerical_grad(fn, data.copy()), atol=1e-5)

    def test_batch_norm_training_stats(self):
        x = Tensor(RNG.normal(size=(8, 3, 4, 4)) * 2 + 1)
        w = Tensor(np.ones(3))
        b = Tensor(np.zeros(3))
        rm = np.zeros(3)
        rv = np.ones(3)
        out = F.batch_norm2d(x, w, b, rm, rv, training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        assert not np.allclose(rm, 0.0)  # running stats updated

    def test_batch_norm_eval_uses_running_stats(self):
        x = Tensor(np.full((2, 1, 2, 2), 10.0))
        w = Tensor(np.ones(1))
        b = Tensor(np.zeros(1))
        rm = np.array([10.0])
        rv = np.array([4.0])
        out = F.batch_norm2d(x, w, b, rm, rv, training=False)
        assert np.allclose(out.data, 0.0, atol=1e-3)
        assert np.allclose(rm, 10.0)  # unchanged in eval

    def test_batch_norm_grad_training(self):
        data = RNG.normal(size=(4, 2, 3, 3))
        w_data = RNG.normal(size=2)
        b_data = RNG.normal(size=2)
        weights = RNG.normal(size=(4, 2, 3, 3))
        x = Tensor(data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        out = F.batch_norm2d(x, w, b, np.zeros(2), np.ones(2), training=True)
        (out * Tensor(weights)).sum().backward()

        def fn(arr):
            mean = arr.mean(axis=(0, 2, 3), keepdims=True)
            var = arr.var(axis=(0, 2, 3), keepdims=True)
            xh = (arr - mean) / np.sqrt(var + 1e-5)
            def shaped(v):
                return v.reshape(1, -1, 1, 1)

            return ((xh * shaped(w_data) + shaped(b_data)) * weights).sum()

        assert np.allclose(x.grad, numerical_grad(fn, data.copy()), atol=1e-5)


class TestLinear:
    def test_linear_matches_manual(self):
        x = Tensor(RNG.normal(size=(5, 3)))
        w = Tensor(RNG.normal(size=(4, 3)))
        b = Tensor(RNG.normal(size=4))
        out = F.linear(x, w, b)
        assert np.allclose(out.data, x.data @ w.data.T + b.data)

    def test_pair_helper(self):
        assert F._pair(3) == (3, 3)
        assert F._pair((1, 2)) == (1, 2)
        with pytest.raises(ValueError):
            F._pair((1, 2, 3))
