"""Property tests: vectorized codec kernels vs scalar reference paths.

Every registered type at bits 3..8, signed and unsigned, must satisfy:

* LUT ``encode``/``decode`` round-trips are bit-exact against the
  closed-form ``_reference_encode``/``_reference_decode`` routines;
* the midpoint-searchsorted ``quantize`` matches the pre-codec
  two-gather reference, including at exact grid points and midpoints
  (tie-up rule);
* ``quantize_to_codes`` agrees with the reference
  quantize-then-encode round trip.

Plus regression tests for the NaN/inf hardening of ``quantize``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import get_type
from repro.quant.scale_search import (
    search_scale,
    search_scale_per_channel,
    search_scale_reference,
)

ALL_NAMES = [
    f"{kind}{bits}{suffix}"
    for kind in ("int", "pot", "flint", "float")
    for bits in range(3, 9)
    for suffix in ("", "u")
]


def dtype_params():
    return pytest.mark.parametrize("name", ALL_NAMES)


@dtype_params()
def test_encode_matches_reference_on_grid(name):
    dtype = get_type(name)
    grid = dtype.grid
    assert np.array_equal(dtype.encode(grid), dtype._reference_encode(grid))


@dtype_params()
def test_decode_matches_reference_on_all_codes(name):
    dtype = get_type(name)
    codes = np.arange(1 << dtype.bits)
    assert np.array_equal(dtype.decode(codes), dtype._reference_decode(codes))


@dtype_params()
def test_roundtrip_through_lut(name):
    dtype = get_type(name)
    grid = dtype.grid
    assert np.array_equal(dtype.decode(dtype.encode(grid)), grid)


@dtype_params()
def test_quantize_matches_reference_random(name):
    dtype = get_type(name)
    rng = np.random.default_rng(42)
    x = rng.normal(size=4096) * 7.0
    if not dtype.signed:
        x = np.abs(x)
    for scale in (1.0, 0.25, 3.0):
        assert np.array_equal(
            dtype.quantize(x, scale), dtype._quantize_reference(x, scale)
        ), (name, scale)


@dtype_params()
def test_quantize_matches_reference_at_grid_and_midpoints(name):
    """Exact grid points and exact midpoints (the tie-up rule)."""
    dtype = get_type(name)
    codec = dtype.codec
    for pts in (codec.grid, codec.midpoints):
        assert np.array_equal(
            dtype.quantize(pts), dtype._quantize_reference(pts)
        ), name


@dtype_params()
def test_quantize_to_codes_matches_reference(name):
    dtype = get_type(name)
    rng = np.random.default_rng(7)
    x = rng.normal(size=2048) * 3.0
    if not dtype.signed:
        x = np.abs(x)
    scale = 0.5
    reference = dtype._reference_encode(dtype._quantize_reference(x, scale) / scale)
    assert np.array_equal(dtype.quantize_to_codes(x, scale), reference)


@given(
    name=st.sampled_from(ALL_NAMES),
    data=st.lists(
        st.floats(min_value=-200, max_value=200, allow_nan=False),
        min_size=1,
        max_size=50,
    ),
    scale=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_quantize_matches_reference_hypothesis(name, data, scale):
    dtype = get_type(name)
    x = np.asarray(data)
    if not dtype.signed:
        x = np.abs(x)
    fast = dtype.quantize(x, scale)
    ref = dtype._quantize_reference(x, scale)
    assert np.allclose(fast, ref, rtol=1e-12, atol=0.0)


@given(seed=st.integers(0, 2**31 - 1), name=st.sampled_from(["flint4", "int4", "pot4"]))
@settings(max_examples=20, deadline=None)
def test_batched_scale_search_matches_reference(seed, name):
    """The broadcasted sweep finds the same clip ratio as the seed loop."""
    dtype = get_type(name)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=1024)
    fast = search_scale(x, dtype)
    ref = search_scale_reference(x, dtype)
    assert fast.clip_ratio == ref.clip_ratio
    assert np.isclose(fast.mse, ref.mse, rtol=1e-12)
    assert np.isclose(fast.scale, ref.scale, rtol=1e-12)


def test_per_channel_search_matches_sequential():
    dtype = get_type("flint4")
    rng = np.random.default_rng(3)
    x = rng.normal(size=(6, 17, 5))
    scales, mses = search_scale_per_channel(x, dtype, axis=0)
    for channel in range(x.shape[0]):
        single = search_scale(x[channel], dtype)
        assert np.isclose(scales[channel], single.scale, rtol=1e-12), channel
        assert np.isclose(mses[channel], single.mse, rtol=1e-12), channel


# ----------------------------------------------------------------------
# NaN / inf hardening regressions
# ----------------------------------------------------------------------
class TestNonFiniteInputs:
    def test_nan_propagates_through_quantize(self):
        dtype = get_type("flint4")
        q = dtype.quantize(np.array([np.nan, 1.0, np.nan]))
        assert np.isnan(q[0]) and np.isnan(q[2])
        assert q[1] == 1.0

    def test_nan_not_mapped_to_grid_endpoint(self):
        """Seed bug: searchsorted silently sent NaN to the top grid value."""
        for name in ("int4", "pot4", "flint4", "float4"):
            dtype = get_type(name)
            q = dtype.quantize(np.array([np.nan]))
            assert np.isnan(q[0]), name

    def test_infinities_saturate(self):
        dtype = get_type("flint4")
        q = dtype.quantize(np.array([np.inf, -np.inf]), scale=2.0)
        assert q[0] == dtype.max_value * 2.0
        assert q[1] == -dtype.max_value * 2.0

    def test_quantize_to_codes_rejects_nan(self):
        with pytest.raises(ValueError):
            get_type("flint4").quantize_to_codes(np.array([np.nan]))

    def test_encode_rejects_nan(self):
        with pytest.raises(ValueError):
            get_type("int4").encode(np.array([np.nan]))

    def test_scale_search_rejects_non_finite(self):
        dtype = get_type("flint4")
        with pytest.raises(ValueError):
            search_scale(np.array([1.0, np.nan]), dtype)
        with pytest.raises(ValueError):
            search_scale(np.array([1.0, np.inf]), dtype)
        with pytest.raises(ValueError):
            search_scale_per_channel(np.array([[1.0], [np.nan]]), dtype)
