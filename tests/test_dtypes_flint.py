"""Tests for the flint data type (paper Sec. IV-A, Tables II/III)."""

import numpy as np
import pytest

from repro.dtypes import FlintType

#: Table II of the paper: 4-bit unsigned flint value grid.
TABLE_II_VALUES = [0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 24, 32, 64]

#: Table II rows: (pattern, exponent, values)
TABLE_II_ROWS = [
    ("0000", None, [0.0]),
    ("0001", 0, [1.0]),
    ("001x", 1, [2.0, 3.0]),
    ("01xx", 2, [4.0, 5.0, 6.0, 7.0]),
    ("11xx", 3, [8.0, 10.0, 12.0, 14.0]),
    ("101x", 4, [16.0, 24.0]),
    ("1001", 5, [32.0]),
    ("1000", 6, [64.0]),
]


class TestTableII:
    def test_grid_matches_table_ii(self):
        flint = FlintType(4, signed=False)
        assert flint.grid.tolist() == TABLE_II_VALUES

    def test_value_table_rows(self):
        flint = FlintType(4, signed=False)
        rows = flint.value_table()
        assert len(rows) == len(TABLE_II_ROWS)
        for row, (pattern, exponent, values) in zip(rows, TABLE_II_ROWS):
            assert row["pattern"] == pattern
            assert row["exponent"] == exponent
            assert row["values"] == values

    def test_code_1110_decodes_to_12(self):
        """The worked decoding example of Sec. IV-A."""
        flint = FlintType(4, signed=False)
        assert flint.decode(np.array([0b1110]))[0] == 12.0

    def test_paper_encoding_example_11_rounds_to_12(self):
        """Algorithm 1's worked example: 11 encodes as 1110 (= 12)."""
        flint = FlintType(4, signed=False)
        quantized = flint.quantize(np.array([11.0]))
        assert quantized[0] == 12.0
        assert flint.encode(quantized)[0] == 0b1110

    def test_max_value_is_two_pow_2b_minus_2(self):
        for bits in range(3, 9):
            flint = FlintType(bits, signed=False)
            assert flint.max_value == 2 ** (2 * bits - 2)

    def test_all_codes_distinct_values(self):
        """Every code word maps to a unique value (no wasted encodings)."""
        for bits in range(3, 8):
            flint = FlintType(bits, signed=False)
            values = flint.decode(np.arange(1 << bits))
            assert len(set(values.tolist())) == 1 << bits


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [3, 4, 5, 6, 7, 8])
    @pytest.mark.parametrize("signed", [False, True])
    def test_encode_decode_roundtrip(self, bits, signed):
        flint = FlintType(bits, signed=signed)
        grid = flint.grid
        assert np.allclose(flint.decode(flint.encode(grid)), grid)

    def test_encode_rejects_off_grid(self):
        flint = FlintType(4, signed=False)
        with pytest.raises(ValueError):
            flint.encode(np.array([11.0]))

    def test_encode_rejects_negative_for_unsigned(self):
        flint = FlintType(4, signed=False)
        with pytest.raises(ValueError):
            flint.encode(np.array([-2.0]))

    def test_decode_rejects_out_of_range_codes(self):
        flint = FlintType(4, signed=False)
        with pytest.raises(ValueError):
            flint.decode(np.array([16]))
        with pytest.raises(ValueError):
            flint.decode(np.array([-1]))


class TestSigned:
    def test_signed_is_sign_plus_narrower_magnitude(self):
        """Sec. V-C: signed b-bit flint = sign + (b-1)-bit unsigned flint."""
        signed = FlintType(4, signed=True)
        unsigned3 = FlintType(3, signed=False)
        positives = signed.grid[signed.grid > 0]
        assert positives.tolist() == unsigned3.grid[unsigned3.grid > 0].tolist()

    def test_signed_grid_symmetric(self):
        flint = FlintType(5, signed=True)
        grid = flint.grid
        assert np.allclose(grid, -grid[::-1])

    def test_signed_needs_three_bits(self):
        with pytest.raises(ValueError):
            FlintType(2, signed=True)


class TestRegions:
    def test_region_classification(self):
        """flint degenerates to int, float, PoT across intervals (Fig. 3)."""
        flint = FlintType(4, signed=False)
        assert flint.region_of(0) == "int"
        assert flint.region_of(1) == "int"
        assert flint.region_of(2) == "int"
        assert flint.region_of(3) == "float"
        assert flint.region_of(4) == "float"
        assert flint.region_of(5) == "pot"
        assert flint.region_of(6) == "pot"

    def test_region_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            FlintType(4, signed=False).region_of(7)

    def test_mantissa_allocation_peaks_mid_range(self):
        """More mantissa bits in the middle: the Gaussian-matching shape."""
        flint = FlintType(6, signed=False)
        widths = [
            flint._mantissa_bits_for_exponent(e)
            for e in range(0, 2 * 6 - 1)
        ]
        peak = max(widths)
        peak_idx = widths.index(peak)
        assert widths[:peak_idx + 1] == sorted(widths[:peak_idx + 1])
        assert widths[peak_idx:] == sorted(widths[peak_idx:], reverse=True)


class TestQuantize:
    def test_quantize_is_nearest(self):
        flint = FlintType(4, signed=False)
        x = np.array([0.4, 1.4, 2.6, 9.1, 13.0, 20.0, 28.1, 47.9, 100.0])
        # 13 ties between 12 and 14 and rounds up; 28.1 is nearer 32
        # than 24; 47.9 is nearer 32 than 64 (midpoint 48).
        expected = np.array([0, 1, 3, 10, 14, 24, 32, 32, 64], dtype=np.float64)
        assert np.allclose(flint.quantize(x), expected)

    def test_quantize_saturates(self):
        flint = FlintType(4, signed=False)
        assert flint.quantize(np.array([1e9]))[0] == 64.0

    def test_quantize_scale(self):
        flint = FlintType(4, signed=False)
        x = np.array([6.0])
        assert flint.quantize(x, scale=0.5)[0] == 6.0  # 12 * 0.5
        assert flint.quantize(x, scale=2.0)[0] == 6.0  # 3 * 2

    def test_quantize_rejects_nonpositive_scale(self):
        flint = FlintType(4, signed=False)
        with pytest.raises(ValueError):
            flint.quantize(np.array([1.0]), scale=0.0)
