"""Smoke tests: the lightweight example scripts run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize(
    "script,needle",
    [
        ("quickstart.py", "Table II"),
        ("typefusion_pe.py", "Table III"),
        ("distribution_study.py", "normalized to flint"),
        ("accelerator_sim.py", "speedup"),
        ("qgemm_backend.py", "ant-os estimate"),
    ],
)
def test_example_runs(script, needle):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout
