"""Systolic array, memory, area and accelerator model tests."""

import numpy as np
import pytest

from repro.hardware import (
    ACCELERATOR_CONFIGS,
    AreaModel,
    Dataflow,
    EnergyTable,
    MemoryModel,
    SystolicArray,
    build_accelerator,
    workload_layers,
    WORKLOAD_NAMES,
)
from repro.hardware.accelerator import (
    LayerAssignment,
    mixed_assignment,
    uniform_assignment,
)
from repro.hardware.area import TABLE_VII


class TestSystolicArray:
    def test_os_cycle_count_small_gemm(self):
        array = SystolicArray(8, 8, Dataflow.OUTPUT_STATIONARY)
        cycles = array.gemm_cycles(8, 32, 8)
        assert cycles.tiles == 1
        assert cycles.compute_cycles == 32 + 16

    def test_tiling(self):
        array = SystolicArray(8, 8)
        cycles = array.gemm_cycles(16, 10, 24)
        assert cycles.tiles == 2 * 3

    def test_ws_dataflow(self):
        array = SystolicArray(8, 8, Dataflow.WEIGHT_STATIONARY)
        cycles = array.gemm_cycles(100, 8, 8)
        assert cycles.tiles == 1
        assert cycles.compute_cycles == 100 + 16

    def test_precision_fusion_quarters_array(self):
        array = SystolicArray(64, 64, native_bits=4, supports_fusion=True)
        four = array.gemm_cycles(64, 64, 64, operand_bits=4)
        eight = array.gemm_cycles(64, 64, 64, operand_bits=8)
        assert eight.effective_rows == 32
        assert eight.compute_cycles > four.compute_cycles

    def test_no_fusion_rejects_wide_operands(self):
        array = SystolicArray(32, 32, native_bits=8, supports_fusion=False)
        with pytest.raises(ValueError):
            array.gemm_cycles(8, 8, 8, operand_bits=16)

    def test_boundary_decoder_counts(self):
        """Sec. VI-A: OS needs 2n decoders, WS needs n."""
        os_array = SystolicArray(64, 64, Dataflow.OUTPUT_STATIONARY)
        ws_array = SystolicArray(64, 64, Dataflow.WEIGHT_STATIONARY)
        assert os_array.boundary_decoders() == 128
        assert ws_array.boundary_decoders() == 64

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 8)
        with pytest.raises(ValueError):
            SystolicArray(8, 8).gemm_cycles(0, 1, 1)


class TestMemoryModel:
    def test_dram_cycles_ceil(self):
        mem = MemoryModel(dram_bandwidth_bits=512)
        assert mem.dram_cycles(512) == 1
        assert mem.dram_cycles(513) == 2
        assert mem.dram_cycles(0) == 0

    def test_energy_hierarchy(self):
        table = EnergyTable()
        assert table.dram_per_bit > table.buffer_per_bit > table.mac_4bit

    def test_mac_energy_quadratic(self):
        table = EnergyTable()
        assert np.isclose(table.mac_energy(8), 4 * table.mac_energy(4))

    def test_static_energy_scales_with_cycles(self):
        table = EnergyTable()
        assert table.static_energy(1.0, 2000) == 2 * table.static_energy(1.0, 1000)

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel().dram_cycles(-1)


class TestAreaModel:
    def test_decoder_overhead_is_tiny(self):
        """The paper's headline: ~0.2% decoder overhead for ANT."""
        breakdown = AreaModel().breakdown("ant")
        assert 0.001 < breakdown.decoder_overhead < 0.003

    def test_core_areas_match_table_vii(self):
        model = AreaModel()
        for design, spec in TABLE_VII.items():
            breakdown = model.breakdown(design)
            assert np.isclose(breakdown.core_mm2, spec["core_mm2"], rtol=1e-6)

    def test_float_pe_three_times_int(self):
        assert np.isclose(AreaModel().float_pe_ratio(), 3.0)

    def test_iso_area_pe_counts(self):
        """Fewer, bigger PEs for wider datapaths at the same area."""
        model = AreaModel()
        assert model.pe_area_um2("adafloat") > model.pe_area_um2("bitfusion")
        assert TABLE_VII["adafloat"]["pes"] < TABLE_VII["bitfusion"]["pes"]

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            AreaModel().breakdown("tpu")


class TestWorkloads:
    def test_all_workloads_generate(self):
        for name in WORKLOAD_NAMES:
            layers = workload_layers(name)
            assert len(layers) > 5
            assert all(layer.macs > 0 for layer in layers)

    def test_vgg16_structure(self):
        layers = workload_layers("vgg16", batch=1)
        assert len(layers) == 16  # 13 conv + 3 fc
        # first conv: 64 x (3*3*3) x 224*224
        assert layers[0].m == 64
        assert layers[0].k == 27
        assert layers[0].n == 224 * 224

    def test_bert_attention_is_weightless(self):
        layers = workload_layers("bert-mnli")
        scores = [l for l in layers if "scores" in l.name]
        assert len(scores) == 12
        assert all(l.weight_elems == 0 for l in scores)

    def test_batch_scales_tokens(self):
        small = workload_layers("bert-mnli", batch=1)
        large = workload_layers("bert-mnli", batch=64)
        assert large[0].n == 64 * small[0].n

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload_layers("lenet")

    @pytest.mark.parametrize(
        "name,lo,hi",
        [
            ("vgg16", 14e9, 16.5e9),      # known ~15.5 GMACs
            ("resnet18", 1.6e9, 2.1e9),   # known ~1.8 GMACs
            ("resnet50", 3.5e9, 4.5e9),   # known ~4.1 GMACs
            ("bert-mnli", 9e9, 13e9),     # BERT-Base @ seq 128 ~11 GMACs
        ],
    )
    def test_mac_counts_match_published_architectures(self, name, lo, hi):
        macs = sum(layer.macs for layer in workload_layers(name, batch=1))
        assert lo <= macs <= hi


class TestAccelerator:
    def test_all_configs_build(self):
        for name in ACCELERATOR_CONFIGS:
            acc = build_accelerator(name)
            assert acc.array.n_pes > 0

    def test_unknown_config(self):
        with pytest.raises(KeyError):
            build_accelerator("eyeriss")

    def test_simulation_result_structure(self):
        acc = build_accelerator("ant-os")
        layers = workload_layers("resnet18")
        result = acc.simulate(layers, uniform_assignment(layers, 4, 4))
        assert result.cycles > 0
        assert set(result.energy_pj) == {"static", "dram", "buffer", "core"}
        assert len(result.per_layer) == len(layers)

    def test_assignment_length_checked(self):
        acc = build_accelerator("ant-os")
        layers = workload_layers("resnet18")
        with pytest.raises(ValueError):
            acc.simulate(layers, [LayerAssignment(4, 4)])

    def test_8bit_slower_than_4bit(self):
        acc = build_accelerator("ant-os")
        layers = workload_layers("vgg16")
        four = acc.simulate(layers, uniform_assignment(layers, 4, 4))
        eight = acc.simulate(layers, uniform_assignment(layers, 8, 8))
        assert eight.cycles > four.cycles
        assert eight.total_energy_pj > four.total_energy_pj

    def test_outlier_overhead_slows_olaccel(self):
        layers = workload_layers("vgg16")
        ol = build_accelerator("olaccel")
        assign = uniform_assignment(layers, 4, 4, outlier_fraction=0.03)
        with_overhead = ol.simulate(layers, assign)
        ol.outlier_overhead = 0.0
        without = ol.simulate(layers, assign)
        assert with_overhead.cycles >= without.cycles

    def test_mixed_assignment_helper(self):
        layers = workload_layers("resnet18")
        assignments = mixed_assignment(layers, [0, 2])
        assert assignments[0].weight_bits == 8
        assert assignments[1].weight_bits == 4

    def test_ant_beats_int8_reference(self):
        """The headline direction: 4-bit ANT beats an iso-area int8 design."""
        layers = workload_layers("bert-mnli")
        ant = build_accelerator("ant-os").simulate(layers, uniform_assignment(layers, 4, 4))
        ref = build_accelerator("int8").simulate(layers, uniform_assignment(layers, 8, 8))
        assert ant.cycles < ref.cycles
        assert ant.total_energy_pj < ref.total_energy_pj
