"""End-to-end integration: train -> quantize -> fine-tune -> simulate.

These tests exercise the full pipeline the benchmarks rely on, at a
scale small enough for CI (tiny models, few steps).
"""

import pytest

from repro.baselines import BaselineModelQuantizer, IntQuantizer, OLAccelQuantizer
from repro.data import make_image_classification
from repro.hardware import build_accelerator, workload_layers
from repro.hardware.accelerator import uniform_assignment
from repro.nn.models import build_model
from repro.quant import MixedPrecisionSearch, ModelQuantizer
from repro.quant.framework import evaluate
from repro.quant.qat import finetune
from repro.zoo import _train


@pytest.fixture(scope="module")
def trained_vgg():
    ds = make_image_classification(n_train=160, n_test=96, seed=11)
    model = build_model("vgg16")
    _train(model, ds, steps=120, lr=2e-3, batch=32, seed=0)
    fp32 = evaluate(model, ds.x_test, ds.y_test)
    return model, ds, fp32


class TestQuantizePipeline:
    def test_fp32_model_learned_something(self, trained_vgg):
        _, _, fp32 = trained_vgg
        assert fp32 > 0.5

    def test_ant_ptq_within_reason(self, trained_vgg):
        model, ds, fp32 = trained_vgg
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(ds.x_train[:64])
        mq.apply()
        acc = evaluate(model, ds.x_test, ds.y_test)
        mq.remove()
        # 4-bit PTQ degrades but stays far above chance (10 classes)
        assert acc > 0.25
        assert acc <= fp32 + 0.05

    def test_ant_beats_int_only_at_4bit(self, trained_vgg):
        """The core inter-tensor adaptivity claim on a real pipeline."""
        model, ds, _ = trained_vgg
        accs = {}
        for combo in ("int", "ip-f"):
            mq = ModelQuantizer(model, combo, 4).calibrate(ds.x_train[:64])
            mq.apply()
            accs[combo] = evaluate(model, ds.x_test, ds.y_test)
            mq.remove()
        assert accs["ip-f"] >= accs["int"] - 0.02

    def test_finetune_recovers_accuracy(self, trained_vgg):
        model, ds, fp32 = trained_vgg
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(ds.x_train[:64])
        mq.apply()
        before = evaluate(model, ds.x_test, ds.y_test)
        # full state: fine-tuning also shifts BatchNorm running stats
        state = model.state_dict()
        finetune(model, ds.x_train, ds.y_train, steps=40, lr=5e-4)
        after = evaluate(model, ds.x_test, ds.y_test)
        mq.remove()
        # restore so other tests see the original model
        model.load_state_dict(state)
        assert after >= before - 0.02

    def test_mixed_precision_closes_gap(self, trained_vgg):
        model, ds, fp32 = trained_vgg
        state = model.state_dict()
        mq = ModelQuantizer(model, "ip-f", 4).calibrate(ds.x_train[:64])
        mq.apply()
        search = MixedPrecisionSearch(
            mq,
            evaluate_fn=lambda: evaluate(model, ds.x_test, ds.y_test),
            baseline_accuracy=fp32,
            threshold=0.02,
            finetune_fn=lambda: finetune(model, ds.x_train, ds.y_train, steps=25, lr=5e-4),
            max_rounds=3,
        )
        result = search.run()
        first_round = result.decisions[0].accuracy
        # keep-best guarantees the search never ends below its own baseline
        assert result.accuracy >= first_round
        mq.remove()
        model.load_state_dict(state)

    def test_baseline_driver_on_trained_model(self, trained_vgg):
        model, ds, fp32 = trained_vgg
        driver = BaselineModelQuantizer(model, OLAccelQuantizer())
        driver.calibrate(ds.x_train[:64]).apply()
        acc = evaluate(model, ds.x_test, ds.y_test)
        driver.remove()
        assert acc > 0.25
        assert 4.0 < driver.average_bits() < 6.0

    def test_int8_nearly_lossless(self, trained_vgg):
        model, ds, fp32 = trained_vgg
        driver = BaselineModelQuantizer(model, IntQuantizer(8))
        driver.calibrate(ds.x_train[:64]).apply()
        acc = evaluate(model, ds.x_test, ds.y_test)
        driver.remove()
        assert abs(fp32 - acc) < 0.05


class TestHardwareIntegration:
    def test_type_ratio_drives_latency(self):
        """More 8-bit layers -> more cycles on the same accelerator."""
        layers = workload_layers("resnet18")
        acc = build_accelerator("ant-os")
        all4 = acc.simulate(layers, uniform_assignment(layers, 4, 4)).cycles
        all8 = acc.simulate(layers, uniform_assignment(layers, 8, 8)).cycles
        from repro.hardware.accelerator import mixed_assignment

        half = acc.simulate(
            layers, mixed_assignment(layers, range(0, len(layers), 2))
        ).cycles
        assert all4 < half < all8

    def test_energy_split_shapes(self):
        """DRAM + buffer dominate, matching the Fig. 13 bottom shape."""
        layers = workload_layers("bert-mnli")
        result = build_accelerator("ant-os").simulate(
            layers, uniform_assignment(layers, 4, 4)
        )
        split = result.energy_pj
        total = result.total_energy_pj
        assert (split["dram"] + split["buffer"]) / total > 0.4
        assert split["static"] / total < 0.4
