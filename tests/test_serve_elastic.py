"""Elastic serving: scaling primitives, autoscaler policy, asyncio
facade, and streaming ``map_predict``.

The load-bearing guarantees layered on top of ``tests/test_serve.py``:

* **No job is lost or duplicated by a scaling event** -- results stay
  bit-identical to single-process
  ``FrozenModel.predict(x, batch_size, pad_batches=True)`` under
  arbitrary add/retire/kill schedules (property test).
* **Retirement drains** -- a retiring worker finishes its in-flight
  jobs before its queues close; a retiring worker that *dies* requeues
  them to the survivors without spending respawn budget.
* **The autoscaler does not thrash** -- a square-wave load grows the
  pool to its steady count once and never oscillates (pure ``decide``
  policy, driven by a synthetic clock).
* **Streaming bounds parent memory** -- a dataset much larger than the
  resident-shard cap serves in order while the shard-residency
  accounting stays within ``workers x prefetch``.
* **asyncio cancellation is exact-once** -- a cancelled ``await``
  neither orphans its job in the pool's tables nor double-delivers.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.quant.framework import ModelQuantizer
from repro.runtime import FrozenModel
from repro.runtime.engine import iter_chunks
from repro.serve import AsyncServingClient, PoolAutoscaler, ServingPool
from repro.zoo import calibration_batch, trained_model

BATCH = 16


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """Calibrated vgg16 checkpoint + float32 single-process reference."""
    entry = trained_model("vgg16")
    quantizer = ModelQuantizer(entry.model, "ip-f", 4)
    quantizer.calibrate(calibration_batch(entry.dataset)).apply()
    try:
        frozen = quantizer.freeze(model_name="vgg16")
    finally:
        quantizer.remove()
    path = tmp_path_factory.mktemp("serve_elastic") / "vgg16.npz"
    frozen.save(path)
    reference = FrozenModel.load(path).astype(np.float32)
    x = entry.dataset.x_test[:70]
    return path, reference, x


def _wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# iterator plumbing (runtime/engine.py)
# ----------------------------------------------------------------------
def test_iter_chunks_rechunks_any_input_chunking():
    data = np.arange(37 * 3).reshape(37, 3)
    # ragged input chunks, including empties, spanning chunk boundaries
    pieces = [data[0:5], data[5:5], data[5:18], data[18:19], data[19:37]]
    chunks = list(iter_chunks(iter(pieces), 8))
    assert [c.shape[0] for c in chunks] == [8, 8, 8, 8, 5]
    assert np.array_equal(np.concatenate(chunks), data)
    # exact multiple: no trailing short chunk
    chunks = list(iter_chunks([data[:32]], 8))
    assert [c.shape[0] for c in chunks] == [8, 8, 8, 8]
    # empty stream yields nothing
    assert list(iter_chunks([], 8)) == []
    with pytest.raises(ValueError):
        list(iter_chunks([np.float64(1.0)], 8))
    with pytest.raises(ValueError):
        list(iter_chunks([data], 0))


def test_predict_stream_matches_predict_rows(served):
    _path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    stream = (x[i: i + 7] for i in range(0, len(x), 7))
    rows = list(reference.predict_stream(stream, BATCH, pad_batches=True))
    assert len(rows) == len(x)
    assert np.array_equal(np.stack(rows), expected)


# ----------------------------------------------------------------------
# scaling primitives: add_worker / retire_worker
# ----------------------------------------------------------------------
def test_add_worker_grows_pool_and_serves_identically(served):
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=1, batch_size=BATCH) as pool:
        assert pool.active_workers() == 1
        slot = pool.add_worker()
        assert slot == 1
        assert pool.active_workers() == 2
        # traffic is correct even while the new worker is still loading
        assert np.array_equal(pool.map_predict(x), expected)
        assert _wait_for(
            lambda: all(
                w["state"] == "active" for w in pool.stats()["per_worker"]
            )
        )
        assert np.array_equal(pool.map_predict(x), expected)


def test_retire_worker_drains_last_inflight_job(served):
    """Retire the worker holding the only in-flight job: the job must
    drain (bit-identically) before the slot closes, and the pool must
    keep serving on the survivor."""
    path, reference, x = served
    big = np.concatenate([x] * 20)
    expected_big = reference.predict(big, batch_size=BATCH, pad_batches=True)
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=BATCH) as pool:
        future = pool.submit(big)
        assert _wait_for(lambda: any(pool._inflight))
        victim = next(i for i, d in enumerate(pool._inflight) if d)
        assert pool.retire_worker(victim) == victim
        # the in-flight job drains; nothing is lost or duplicated
        assert np.array_equal(future.result(timeout=300), expected_big)
        assert _wait_for(lambda: pool.stats()["retired"] == 1)
        stats = pool.stats()
        assert stats["workers"] == 1
        assert stats["respawns"] == 0
        assert np.array_equal(pool.map_predict(x), expected)


def test_retire_refuses_last_worker_and_bad_slots(served):
    path, _, _ = served
    with ServingPool(path, n_workers=1, batch_size=BATCH) as pool:
        with pytest.raises(RuntimeError, match="last worker"):
            pool.retire_worker()
        pool.add_worker()
        with pytest.raises(ValueError, match="not an active worker"):
            pool.retire_worker(99)
        retired = pool.retire_worker()
        # back to one worker: retirement refused again, even by slot id
        with pytest.raises(RuntimeError, match="last worker"):
            pool.retire_worker(retired)


def test_retiring_worker_death_requeues_without_respawn(served):
    """A retiring worker killed mid-drain must hand its in-flight job
    back to the survivors (once) -- and must NOT be respawned or spend
    respawn budget: it was leaving anyway."""
    path, reference, x = served
    big = np.concatenate([x] * 20)
    expected_big = reference.predict(big, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=BATCH) as pool:
        future = pool.submit(big)
        assert _wait_for(lambda: any(pool._inflight))
        victim = next(i for i, d in enumerate(pool._inflight) if d)
        pool.retire_worker(victim)
        os.kill(pool._workers[victim].pid, signal.SIGKILL)
        assert np.array_equal(future.result(timeout=300), expected_big)
        assert _wait_for(lambda: pool.stats()["retired"] == 1)
        stats = pool.stats()
        assert stats["respawns"] == 0
        assert stats["workers"] == 1


def test_scale_up_while_respawn_pending(served):
    """add_worker while the watchdog is mid-respawn: independent slots,
    both come up, no job is stranded."""
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    pool = ServingPool(path, n_workers=1, batch_size=BATCH).start()
    try:
        pool.predict(x[:8])  # healthy first
        os.kill(pool._workers[0].pid, signal.SIGKILL)
        new_slot = pool.add_worker()  # respawn of slot 0 still pending
        assert new_slot == 1
        assert np.array_equal(pool.map_predict(x), expected)
        assert _wait_for(lambda: pool.stats()["respawns"] >= 1)
        stats = pool.stats()
        assert stats["workers"] == 2
        assert np.array_equal(pool.map_predict(x), expected)
    finally:
        pool.close()


def test_pool_bit_identical_under_arbitrary_scaling_schedule(served):
    """The elasticity property: submit waves of jobs while the pool is
    grown, shrunk, and crash-respawned; every future must resolve to
    exactly its single-process reference rows."""
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    rng = np.random.default_rng(11)
    pool = ServingPool(
        path, n_workers=2, batch_size=BATCH, prefetch=2, max_respawns=8
    ).start()
    try:
        futures = []
        schedule = ["add", "kill", "retire", "add", "retire"]
        for event in schedule:
            for _ in range(4):
                lo = int(rng.integers(0, len(x) - 9))
                hi = lo + int(rng.integers(1, 9))
                futures.append((pool.submit(x[lo:hi]), lo, hi))
            if event == "add":
                pool.add_worker()
            elif event == "retire":
                try:
                    pool.retire_worker()
                except RuntimeError:
                    pass  # down to the last worker: retirement refused
            elif event == "kill":
                live = [
                    w
                    for i, w in enumerate(pool._workers)
                    if pool._slot_state[i] in ("starting", "active")
                    and w.is_alive()
                ]
                os.kill(live[-1].pid, signal.SIGKILL)
            time.sleep(0.05)
        for future, lo, hi in futures:
            assert np.array_equal(future.result(timeout=300), expected[lo:hi])
        # the pool is healthy after the churn, not merely limping
        assert np.array_equal(pool.map_predict(x), expected)
        stats = pool.stats()
        assert stats["backlog"] == 0 and stats["inflight"] == 0
    finally:
        pool.close()


# ----------------------------------------------------------------------
# stats snapshot
# ----------------------------------------------------------------------
def test_stats_snapshot_backlog_inflight_and_ewma(served):
    path, reference, x = served
    big = np.concatenate([x] * 10)
    with ServingPool(path, n_workers=1, batch_size=BATCH) as pool:
        stats = pool.stats()
        assert stats["ewma_service_s"] is None  # no completions yet
        assert stats["backlog"] == 0 and stats["inflight"] == 0
        assert stats["workers"] == 1 and stats["slots"] == 1
        # one worker, prefetch 1: of 4 queued jobs exactly 1 is in
        # flight and 3 sit in the backlog (dispatch happens in submit)
        futures = [pool.submit(big) for _ in range(4)]
        stats = pool.stats()
        assert stats["inflight"] == 1
        assert stats["backlog"] == 3
        for future in futures:
            future.result(timeout=300)
        stats = pool.stats()
        assert stats["backlog"] == 0 and stats["inflight"] == 0
        assert stats["ewma_service_s"] > 0.0
        assert stats["jobs"] == 4
        (worker,) = stats["per_worker"]
        assert worker["state"] == "active"
        assert worker["ewma_service_s"] > 0.0
        assert stats["queue_depth"] == 0


# ----------------------------------------------------------------------
# autoscaler policy (pure decide(), synthetic clock -- no processes)
# ----------------------------------------------------------------------
def _stats(workers, backlog, inflight=0, ewma=0.2):
    return {
        "workers": workers,
        "backlog": backlog,
        "inflight": inflight,
        "ewma_service_s": ewma,
    }


def test_autoscaler_scales_up_on_backlog_latency():
    scaler = PoolAutoscaler(
        None, min_workers=1, max_workers=4, latency_budget_s=1.0,
        idle_window_s=10.0, cooldown_s=3.0,
    )
    # 8 jobs x 0.5s / 1 worker = 4s predicted > 1s budget
    assert scaler.decide(_stats(1, 8, ewma=0.5), 0.0) == 1
    # inside the cooldown: no action even though still over budget
    assert scaler.decide(_stats(2, 8, ewma=0.5), 1.0) == 0
    # after the cooldown, still over budget: grow again
    assert scaler.decide(_stats(2, 8, ewma=0.5), 3.5) == 1
    # under budget: no growth (and no shrink -- that needs idleness)
    assert scaler.decide(_stats(3, 1, ewma=0.1), 7.0) == 0
    # no EWMA yet (no completions): never scale on a guess
    assert scaler.decide(_stats(1, 50, ewma=None), 20.0) == 0


def test_autoscaler_square_wave_does_not_thrash():
    """Square-wave load (5s bursts, 5s gaps): the pool must grow to its
    steady count once and never oscillate -- the idle gaps are shorter
    than the idle window, so no scale-down ever fires."""
    scaler = PoolAutoscaler(
        None, min_workers=1, max_workers=3, latency_budget_s=0.5,
        idle_window_s=6.0, cooldown_s=3.0,
    )
    workers = 1
    events = []
    for tick in range(200):  # 20 periods
        busy = (tick % 10) < 5
        stats = _stats(workers, 8 if busy else 0, 1 if busy else 0)
        delta = scaler.decide(stats, float(tick))
        workers += delta
        if delta:
            events.append((tick, delta))
    assert workers == 3  # reached steady state
    assert all(delta > 0 for _, delta in events)  # never shrank
    assert len(events) == 2  # exactly the two scale-ups needed


def test_autoscaler_sustained_idle_scales_down_to_min():
    scaler = PoolAutoscaler(
        None, min_workers=1, max_workers=4, latency_budget_s=0.5,
        idle_window_s=4.0, cooldown_s=2.0,
    )
    workers = 3
    deltas = []
    for tick in range(20):
        delta = scaler.decide(_stats(workers, 0), float(tick))
        workers += delta
        deltas.append(delta)
    assert workers == 1  # shrank to the floor, never below
    assert all(delta <= 0 for delta in deltas)
    # each retirement required a fresh full idle window
    downs = [t for t, d in enumerate(deltas) if d < 0]
    assert len(downs) == 2 and downs[1] - downs[0] >= 4
    # bounds enforcement beats the cooldown (e.g. crash below the floor)
    assert scaler.decide(_stats(0, 0), float(downs[-1]) + 0.5) == 1


def test_autoscaler_rejects_bad_parameters():
    with pytest.raises(ValueError):
        PoolAutoscaler(None, min_workers=0)
    with pytest.raises(ValueError):
        PoolAutoscaler(None, min_workers=3, max_workers=2)
    with pytest.raises(ValueError):
        PoolAutoscaler(None, latency_budget_s=0.0)


def test_autoscaler_drives_live_pool(served):
    """End to end: a burst grows the pool, sustained idleness shrinks
    it back -- and serving stays bit-identical throughout."""
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=1, batch_size=BATCH) as pool:
        scaler = PoolAutoscaler(
            pool, min_workers=1, max_workers=3, latency_budget_s=0.01,
            idle_window_s=0.4, cooldown_s=0.05, interval_s=0.02,
        )
        with scaler:
            for _ in range(4):  # sustained burst: backlog builds
                assert np.array_equal(
                    pool.map_predict(np.concatenate([x] * 4)),
                    np.concatenate([expected] * 4),
                )
            assert _wait_for(lambda: scaler.n_scale_ups >= 1, timeout=30)
            # sustained idle: back down to the floor
            assert _wait_for(
                lambda: pool.stats()["workers"] == 1, timeout=30
            )
        assert scaler.n_scale_downs >= 1
        assert np.array_equal(pool.map_predict(x), expected)


# ----------------------------------------------------------------------
# streaming map_predict: bounded parent memory
# ----------------------------------------------------------------------
def test_map_predict_stream_bit_identical_and_memory_bounded(served):
    """Serve a dataset much larger than the resident-shard cap through
    a lazy input iterator: rows must arrive in order, bit-identical to
    the single-process reference, with at most ``workers x prefetch``
    shards ever resident (shard-residency accounting)."""
    path, reference, x = served
    n_tiles = 12
    dataset = np.concatenate([x] * n_tiles)  # test-side oracle only
    expected = reference.predict(dataset, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=BATCH, prefetch=2) as pool:
        residency = {}
        stream = (dataset[i: i + 11] for i in range(0, len(dataset), 11))
        n_rows = 0
        for i, row in enumerate(
            pool.map_predict_stream(stream, residency=residency)
        ):
            assert np.array_equal(row, expected[i]), i
            n_rows += 1
        assert n_rows == len(dataset)
    cap_samples = residency["cap_shards"] * residency["shard_size"]
    # the dataset really exceeded the configured parent-memory cap ...
    assert residency["samples"] == len(dataset)
    assert residency["samples"] > 4 * cap_samples
    # ... and the bound held: never more than workers x prefetch shards
    assert residency["cap_shards"] == 2 * 2
    assert 0 < residency["peak_shards"] <= residency["cap_shards"]
    assert residency["shards"] == -(-len(dataset) // residency["shard_size"])


def test_map_predict_stream_custom_shard_and_window(served):
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)
    with ServingPool(path, n_workers=2, batch_size=BATCH) as pool:
        residency = {}
        rows = list(
            pool.map_predict_stream(
                [x], shard_size=19, window=1, residency=residency
            )
        )
        assert np.array_equal(np.stack(rows), expected)
        # shard_size rounds up to whole serving batches; window=1 means
        # strictly serial shard turnaround
        assert residency["shard_size"] == 2 * BATCH
        assert residency["peak_shards"] == 1


# ----------------------------------------------------------------------
# asyncio facade
# ----------------------------------------------------------------------
def test_async_client_predict_and_stream(served):
    path, reference, x = served
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)

    async def scenario(pool):
        client = AsyncServingClient(pool)
        out = await client.predict(x[:8])
        assert np.array_equal(out, expected[:8])
        one = await client.predict_one(x[3])
        assert np.array_equal(one, expected[3])
        # concurrent awaits overlap on the pool, results stay exact
        outs = await asyncio.gather(
            client.predict(x[:16]), client.predict(x[16:32])
        )
        assert np.array_equal(outs[0], expected[:16])
        assert np.array_equal(outs[1], expected[16:32])
        rows = []
        residency = {}
        stream = (x[i: i + 5] for i in range(0, len(x), 5))
        async for row in client.stream_predict(stream, residency=residency):
            rows.append(row)
        assert np.array_equal(np.stack(rows), expected)
        assert residency["peak_shards"] <= residency["cap_shards"]

    with ServingPool(path, n_workers=2, batch_size=BATCH, prefetch=2) as pool:
        asyncio.run(scenario(pool))


def test_async_cancellation_neither_orphans_nor_double_delivers(served):
    """Cancel an awaited prediction while it is still backlogged: the
    pool must drop the job (a worker never computes it), later traffic
    must be unaffected, and the pool's job tables must drain empty --
    no orphaned entries, no double delivery."""
    path, reference, x = served
    big = np.concatenate([x] * 20)
    expected = reference.predict(x, batch_size=BATCH, pad_batches=True)

    async def scenario(pool):
        client = AsyncServingClient(pool)
        first = asyncio.ensure_future(client.predict(big))  # occupies the worker
        victim = asyncio.ensure_future(client.predict(x[:8]))  # backlogged
        await asyncio.sleep(0.05)
        victim.cancel()
        with pytest.raises(asyncio.CancelledError):
            await victim
        # the big job and later traffic are unaffected
        out = await client.predict(x[16:24])
        assert np.array_equal(out, expected[16:24])
        await first

    with ServingPool(path, n_workers=1, batch_size=BATCH) as pool:
        asyncio.run(scenario(pool))
        # exact-once accounting: nothing orphaned in the pool's tables
        assert _wait_for(
            lambda: not pool._jobs and not pool._backlog, timeout=30
        )
        stats = pool.stats()
        assert stats["backlog"] == 0 and stats["inflight"] == 0
        # the cancelled job was dropped before dispatch: 3 submissions
        # entered, at most 2 forwards ran (big + the follow-up)
        assert stats["jobs"] == 3
